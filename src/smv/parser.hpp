// Parser for the NuSMV subset this project emits (smv::emit):
//
//   MODULE <name>
//   IVAR   event : { e_1, ..., e_n, e__end };
//   VAR    state : { s_0, ..., s_m, s_end, s_dead };
//   DEFINE is_end := (state = s_end);
//          accepting := (state = sA | ...);
//   ASSIGN init(state) := s_i;
//          next(state) := case ... esac;
//   JUSTICE ...;
//   LTLSPEC ...;
//
// This is the "other half" of the simulated NuSMV: the emitted text can be
// loaded back and checked by smv::check_ltlspec / model_accepts, so the
// whole delegation path of §5 round-trips through real .smv source.
// Throws ParseError on text outside the subset.
#pragma once

#include <string_view>

#include "smv/smv.hpp"
#include "support/diagnostics.hpp"

namespace shelley::smv {

/// Parses emitted NuSMV text back into an SmvModel.  The reserved padding
/// machinery (e__end, s_end, s_dead, the framing case rules) is recognized
/// and stripped; LTLSPEC lines are preserved verbatim (without the
/// `(F is_end) ->` guard).
[[nodiscard]] SmvModel parse_model(std::string_view text);

}  // namespace shelley::smv
