#include "smv/parser.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "support/guard.hpp"
#include "support/strings.hpp"

namespace shelley::smv {
namespace {

/// Splits `{a, b, c}` into its trimmed items.
std::vector<std::string> parse_enum_body(std::string_view text,
                                         SourceLoc loc) {
  const std::size_t open = text.find('{');
  const std::size_t close = text.find('}');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    throw ParseError(loc, "expected '{...}' enumeration");
  }
  std::vector<std::string> out;
  for (const std::string& item :
       split(text.substr(open + 1, close - open - 1), ',')) {
    const std::string_view trimmed = trim(item);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

struct Line {
  std::string text;
  SourceLoc loc;
};

}  // namespace

SmvModel parse_model(std::string_view text) {
  support::guard::check_input_size(text.size());
  SmvModel model;
  std::map<std::string, std::string> label_of;  // mangled -> original

  // Split into comment-stripped lines, keeping label annotations.
  std::vector<Line> lines;
  std::uint32_t line_number = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_number;
    std::string stripped = raw;
    if (const std::size_t comment = stripped.find("--");
        comment != std::string::npos) {
      // `--@ label <mangled> <original>` annotations carry event labels.
      const std::string_view comment_text =
          trim(std::string_view(stripped).substr(comment + 2));
      if (starts_with(comment_text, "@ label ")) {
        const auto fields = split(comment_text.substr(8), ' ');
        if (fields.size() == 2) label_of[fields[0]] = fields[1];
      }
      stripped.resize(comment);
    }
    const std::string_view trimmed = trim(stripped);
    if (!trimmed.empty()) {
      lines.push_back(Line{std::string(trimmed), {line_number, 1}});
    }
  }

  std::map<std::string, std::uint32_t> state_index;
  std::map<std::string, std::uint32_t> event_index;
  bool saw_module = false;
  bool saw_states = false;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Line& line = lines[i];
    const std::string& t = line.text;

    if (starts_with(t, "MODULE")) {
      model.module_name = std::string(trim(std::string_view(t).substr(6)));
      saw_module = true;
    } else if (starts_with(t, "event :")) {
      for (const std::string& name : parse_enum_body(t, line.loc)) {
        if (name == "e__end") continue;
        event_index[name] =
            static_cast<std::uint32_t>(model.event_names.size());
        model.event_names.push_back(name);
        const auto label = label_of.find(name);
        model.event_labels.push_back(
            label != label_of.end() ? label->second : name);
      }
    } else if (starts_with(t, "state :")) {
      for (const std::string& name : parse_enum_body(t, line.loc)) {
        if (name == "s_end" || name == "s_dead") continue;
        state_index[name] =
            static_cast<std::uint32_t>(model.state_names.size());
        model.state_names.push_back(name);
      }
      saw_states = true;
      model.accepting.assign(model.state_names.size(), false);
    } else if (starts_with(t, "accepting :=")) {
      if (!saw_states) throw ParseError(line.loc, "accepting before VAR");
      // accepting := (state = s0 | state = s3);  or  (FALSE);
      for (std::size_t pos = t.find("state ="); pos != std::string::npos;
           pos = t.find("state =", pos + 1)) {
        std::size_t begin = pos + 7;
        while (begin < t.size() && t[begin] == ' ') ++begin;
        std::size_t end = begin;
        while (end < t.size() && (std::isalnum(static_cast<unsigned char>(
                                      t[end])) != 0 ||
                                  t[end] == '_')) {
          ++end;
        }
        const std::string name = t.substr(begin, end - begin);
        const auto it = state_index.find(name);
        if (it == state_index.end()) {
          throw ParseError(line.loc, "unknown accepting state " + name);
        }
        model.accepting[it->second] = true;
      }
    } else if (starts_with(t, "init(state) :=")) {
      std::string name(trim(std::string_view(t).substr(14)));
      if (!name.empty() && name.back() == ';') name.pop_back();
      name = std::string(trim(name));
      const auto it = state_index.find(name);
      if (it == state_index.end()) {
        throw ParseError(line.loc, "unknown initial state " + name);
      }
      model.initial_state = it->second;
    } else if (t.find("state =") != std::string::npos &&
               t.find("& event =") != std::string::npos &&
               t.find(':') != std::string::npos) {
      // state = sX & event = eY : sZ;
      // Size the grid to the declarations seen so far.  Enum lines may
      // appear *between* transition rules in malformed input; growing the
      // grid (instead of sizing it once) keeps every index in bounds.
      if (model.transitions.size() < model.state_names.size()) {
        model.transitions.resize(model.state_names.size());
      }
      for (std::vector<std::uint32_t>& row : model.transitions) {
        if (row.size() < model.event_names.size()) {
          row.resize(model.event_names.size(), 0);
        }
      }
      const auto grab = [&](std::string_view marker,
                            std::size_t from) -> std::string {
        const std::size_t pos = t.find(marker, from);
        if (pos == std::string::npos) return {};
        std::size_t begin = pos + marker.size();
        while (begin < t.size() && t[begin] == ' ') ++begin;
        std::size_t end = begin;
        while (end < t.size() &&
               (std::isalnum(static_cast<unsigned char>(t[end])) != 0 ||
                t[end] == '_')) {
          ++end;
        }
        return t.substr(begin, end - begin);
      };
      const std::string from_state = grab("state =", 0);
      const std::string event = grab("event =", 0);
      const std::size_t colon = t.rfind(':');
      std::string to_state(trim(std::string_view(t).substr(colon + 1)));
      if (!to_state.empty() && to_state.back() == ';') to_state.pop_back();
      to_state = std::string(trim(to_state));

      // Skip the reserved framing rules.
      if (from_state == "s_end" || from_state == "s_dead" ||
          event == "e__end" || to_state == "s_end" ||
          to_state == "s_dead") {
        continue;
      }
      const auto from_it = state_index.find(from_state);
      const auto event_it = event_index.find(event);
      const auto to_it = state_index.find(to_state);
      if (from_it == state_index.end() || event_it == event_index.end() ||
          to_it == state_index.end()) {
        throw ParseError(line.loc, "malformed transition rule: " + t);
      }
      model.transitions[from_it->second][event_it->second] = to_it->second;
    } else if (starts_with(t, "LTLSPEC")) {
      // LTLSPEC (F is_end) -> (<spec>);
      std::string spec(trim(std::string_view(t).substr(7)));
      constexpr std::string_view kGuard = "(F is_end) -> (";
      if (starts_with(spec, kGuard)) {
        spec = spec.substr(kGuard.size());
        // Strip the matching `);` tail.
        if (spec.size() >= 2 && spec.substr(spec.size() - 2) == ");") {
          spec.resize(spec.size() - 2);
        }
      } else if (!spec.empty() && spec.back() == ';') {
        spec.pop_back();
      }
      model.ltlspecs.push_back(std::move(spec));
    }
    // IVAR/VAR/DEFINE/ASSIGN/JUSTICE headers, `is_end :=`, `next(state)`,
    // `case`/`esac`, and the framing rules fall through intentionally.
  }

  if (!saw_module) throw ParseError({1, 1}, "missing MODULE header");
  if (model.state_names.empty()) {
    throw ParseError({1, 1}, "missing state enumeration");
  }
  if (model.transitions.empty()) {
    model.transitions.assign(
        model.state_names.size(),
        std::vector<std::uint32_t>(model.event_names.size(), 0));
  }
  return model;
}

}  // namespace shelley::smv
