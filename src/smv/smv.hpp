// NuSMV backend (§5 "Future work"): Shelley delegates model checking to
// NuSMV by translating the behavioral NFA into a NuSMV model -- encoding the
// regular language as an ω-regular one by padding finite words with a
// designated `_end` event.
//
// A NuSMV binary is not available offline, so this module additionally
// implements an *explicit-state evaluator* of the emitted model:
// `to_dfa` reconstructs the automaton the model denotes, and
// `check_ltlspec` decides the emitted LTLSPEC the way NuSMV would, returning
// a counterexample trace.  Tests cross-validate the round trip
// (dfa -> SmvModel -> dfa) and the checker against the direct pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "ltlf/formula.hpp"
#include "support/symbol.hpp"

namespace shelley::smv {

/// An in-memory NuSMV model of a finite automaton over events.
struct SmvModel {
  std::string module_name = "main";
  std::vector<std::string> state_names;            // s0, s1, ...
  std::vector<std::string> event_names;            // mangled event ids
  std::vector<std::string> event_labels;           // original labels
  std::uint32_t initial_state = 0;
  std::vector<bool> accepting;
  /// transitions[state][event] = next state.
  std::vector<std::vector<std::uint32_t>> transitions;
  /// LTLSPEC lines (already translated to ω-LTL text).
  std::vector<std::string> ltlspecs;
};

/// Builds a model from a complete DFA.
[[nodiscard]] SmvModel from_dfa(const fsm::Dfa& dfa, const SymbolTable& table,
                                std::string module_name = "main");

/// Adds `LTLSPEC` for an LTLf claim using the standard finite-to-infinite
/// translation over `_end`-padded traces, and returns the translated text:
///   t(a)      = (event = a)
///   t(X φ)    = X (!is_end & t(φ))
///   t(N φ)    = X (is_end | t(φ))
///   t(φ U ψ)  = (!is_end & t(φ)) U (!is_end & t(ψ))
///   t(φ R ψ)  = (is_end | t(φ)) R (is_end | t(ψ))
///   t(end)    = is_end
std::string add_ltlspec(SmvModel& model, const ltlf::Formula& claim,
                        const SymbolTable& table);

/// Renders the model as NuSMV source text.
[[nodiscard]] std::string emit(const SmvModel& model);

/// Reconstructs the DFA denoted by the model (interning the original event
/// labels into `table`).  Inverse of from_dfa up to state renaming.
[[nodiscard]] fsm::Dfa to_dfa(const SmvModel& model, SymbolTable& table);

/// Runs the finite word through the model.
[[nodiscard]] bool model_accepts(const SmvModel& model,
                                 const std::vector<std::string>& events);

/// Decides a claim against the model's language, exactly as NuSMV would
/// decide the corresponding LTLSPEC: returns a violating finite trace
/// (event labels) or nullopt when the claim holds.
[[nodiscard]] std::optional<std::vector<std::string>> check_ltlspec(
    const SmvModel& model, const ltlf::Formula& claim, SymbolTable& table);

/// Mangles an event label into a NuSMV-safe identifier (dots -> '_').
[[nodiscard]] std::string mangle(std::string_view label);

}  // namespace shelley::smv
