#include "upy/ast.hpp"

namespace shelley::upy {
namespace {

void render(const ExprPtr& expr, std::string& out);

void render_list(const std::vector<ExprPtr>& items, std::string& out) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    render(items[i], out);
  }
}

void render(const ExprPtr& expr, std::string& out) {
  if (!expr) {
    out += "<null>";
    return;
  }
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NameExpr>) {
          out += node.id;
        } else if constexpr (std::is_same_v<T, AttributeExpr>) {
          render(node.value, out);
          out += '.';
          out += node.attr;
        } else if constexpr (std::is_same_v<T, CallExpr>) {
          render(node.callee, out);
          out += '(';
          render_list(node.args, out);
          out += ')';
        } else if constexpr (std::is_same_v<T, NumberExpr>) {
          out += node.literal;
        } else if constexpr (std::is_same_v<T, StringExpr>) {
          out += '"';
          out += node.value;
          out += '"';
        } else if constexpr (std::is_same_v<T, BoolExpr>) {
          out += node.value ? "True" : "False";
        } else if constexpr (std::is_same_v<T, NoneExpr>) {
          out += "None";
        } else if constexpr (std::is_same_v<T, ListExpr>) {
          out += '[';
          render_list(node.elements, out);
          out += ']';
        } else if constexpr (std::is_same_v<T, TupleExpr>) {
          out += '(';
          render_list(node.elements, out);
          out += ')';
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          out += node.op;
          out += node.op == "not" ? " " : "";
          render(node.operand, out);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          out += '(';
          render(node.left, out);
          out += ' ';
          out += node.op;
          out += ' ';
          render(node.right, out);
          out += ')';
        } else if constexpr (std::is_same_v<T, SubscriptExpr>) {
          render(node.value, out);
          out += '[';
          render(node.index, out);
          out += ']';
        }
      },
      expr->node);
}

void render_block(const Block& block, int level, std::string& out);

void render_stmt(const StmtPtr& stmt, int level, std::string& out) {
  const std::string pad(static_cast<std::size_t>(level) * 2, ' ');
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ExprStmt>) {
          out += pad + to_string(node.value) + "\n";
        } else if constexpr (std::is_same_v<T, AssignStmt>) {
          out += pad + to_string(node.target) + " = " + to_string(node.value) +
                 "\n";
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          out += pad + "return";
          if (node.value) out += " " + to_string(node.value);
          out += "\n";
        } else if constexpr (std::is_same_v<T, PassStmt>) {
          out += pad + "pass\n";
        } else if constexpr (std::is_same_v<T, BreakStmt>) {
          out += pad + "break\n";
        } else if constexpr (std::is_same_v<T, ContinueStmt>) {
          out += pad + "continue\n";
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          out += pad + "if " + to_string(node.condition) + ":\n";
          render_block(node.then_body, level + 1, out);
          if (!node.else_body.empty()) {
            out += pad + "else:\n";
            render_block(node.else_body, level + 1, out);
          }
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          out += pad + "while " + to_string(node.condition) + ":\n";
          render_block(node.body, level + 1, out);
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          out += pad + "for " + node.target + " in " +
                 to_string(node.iterable) + ":\n";
          render_block(node.body, level + 1, out);
        } else if constexpr (std::is_same_v<T, TryStmt>) {
          out += pad + "try:\n";
          render_block(node.body, level + 1, out);
          for (const Block& handler : node.handlers) {
            out += pad + "except:\n";
            render_block(handler, level + 1, out);
          }
          if (!node.final_body.empty()) {
            out += pad + "finally:\n";
            render_block(node.final_body, level + 1, out);
          }
        } else if constexpr (std::is_same_v<T, RaiseStmt>) {
          out += pad + "raise";
          if (node.value) out += " " + to_string(node.value);
          out += "\n";
        } else if constexpr (std::is_same_v<T, MatchStmt>) {
          out += pad + "match " + to_string(node.subject) + ":\n";
          for (const MatchCase& c : node.cases) {
            out += pad + "  case " +
                   (c.pattern ? to_string(c.pattern) : std::string("_")) +
                   ":\n";
            render_block(c.body, level + 2, out);
          }
        }
      },
      stmt->node);
}

void render_block(const Block& block, int level, std::string& out) {
  if (block.empty()) {
    out += std::string(static_cast<std::size_t>(level) * 2, ' ') + "pass\n";
    return;
  }
  for (const StmtPtr& stmt : block) render_stmt(stmt, level, out);
}

}  // namespace

std::string to_string(const ExprPtr& expr) {
  std::string out;
  render(expr, out);
  return out;
}

std::string to_string(const Block& block, int indent_level) {
  std::string out;
  render_block(block, indent_level, out);
  return out;
}

}  // namespace shelley::upy
