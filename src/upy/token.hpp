// Token model for the MicroPython subset Shelley analyzes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace shelley::upy {

enum class TokenKind : std::uint8_t {
  // Layout
  kNewline,
  kIndent,
  kDedent,
  kEndOfFile,
  // Literals & names
  kName,
  kNumber,
  kString,
  // Keywords
  kKwClass,
  kKwDef,
  kKwReturn,
  kKwIf,
  kKwElif,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwIn,
  kKwMatch,
  kKwCase,
  kKwPass,
  kKwTrue,
  kKwFalse,
  kKwNone,
  kKwAnd,
  kKwOr,
  kKwNot,
  kKwBreak,
  kKwContinue,
  kKwTry,
  kKwExcept,
  kKwFinally,
  kKwRaise,
  // Punctuation / operators
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kColon,
  kComma,
  kDot,
  kAt,
  kAssign,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kPlus,
  kMinus,
  kStarOp,
  kSlash,
  kPercent,
  kSemicolon,
  kAugAssign,  // += -= *= /= %= ; spelling in Token::text
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;  // raw spelling; for kString, the *unquoted* contents
  SourceLoc loc;
};

}  // namespace shelley::upy
