// Abstract syntax for the MicroPython subset (classes, methods, decorators,
// the statement forms Shelley understands, and a small expression language).
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/source_location.hpp"

namespace shelley::upy {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct NameExpr {
  std::string id;
};
struct AttributeExpr {
  ExprPtr value;
  std::string attr;
};
struct CallExpr {
  ExprPtr callee;
  std::vector<ExprPtr> args;
};
struct NumberExpr {
  std::string literal;
};
struct StringExpr {
  std::string value;
};
struct BoolExpr {
  bool value = false;
};
struct NoneExpr {};
struct ListExpr {
  std::vector<ExprPtr> elements;
};
struct TupleExpr {
  std::vector<ExprPtr> elements;
};
struct UnaryExpr {
  std::string op;  // "-", "+", "not"
  ExprPtr operand;
};
struct BinaryExpr {
  std::string op;  // arithmetic, comparison, "and", "or"
  ExprPtr left;
  ExprPtr right;
};
struct SubscriptExpr {
  ExprPtr value;
  ExprPtr index;
};

struct Expr {
  SourceLoc loc;
  std::variant<NameExpr, AttributeExpr, CallExpr, NumberExpr, StringExpr,
               BoolExpr, NoneExpr, ListExpr, TupleExpr, UnaryExpr, BinaryExpr,
               SubscriptExpr>
      node;
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;
using Block = std::vector<StmtPtr>;

struct ExprStmt {
  ExprPtr value;
};
struct AssignStmt {
  ExprPtr target;
  ExprPtr value;
};
struct ReturnStmt {
  ExprPtr value;  // null for a bare `return`
};
struct PassStmt {};
struct BreakStmt {};
struct ContinueStmt {};
struct IfStmt {
  ExprPtr condition;
  Block then_body;
  Block else_body;  // elif chains desugar to a nested IfStmt here
};
struct WhileStmt {
  ExprPtr condition;
  Block body;
};
struct ForStmt {
  std::string target;
  ExprPtr iterable;
  Block body;
};
struct MatchCase {
  SourceLoc loc;
  ExprPtr pattern;         // null for the wildcard `case _:`
  Block body;
};
struct MatchStmt {
  ExprPtr subject;
  std::vector<MatchCase> cases;
};
/// `try: ... except ...: ... finally: ...` -- parsed so real firmware
/// sources load, but rejected by the analysis (§3.2: "our analysis does not
/// model Python exceptions").
struct TryStmt {
  Block body;
  std::vector<Block> handlers;  // one per except clause
  Block final_body;
};
struct RaiseStmt {
  ExprPtr value;  // may be null (bare raise)
};

struct Stmt {
  SourceLoc loc;
  std::variant<ExprStmt, AssignStmt, ReturnStmt, PassStmt, BreakStmt,
               ContinueStmt, IfStmt, WhileStmt, ForStmt, MatchStmt, TryStmt,
               RaiseStmt>
      node;
};

/// `@name` or `@name(arg, ...)`.
struct Decorator {
  SourceLoc loc;
  std::string name;
  bool has_call = false;
  std::vector<ExprPtr> args;
};

struct FunctionDef {
  SourceLoc loc;
  std::string name;
  std::vector<std::string> params;  // includes `self`
  std::vector<Decorator> decorators;
  Block body;
};

struct ClassDef {
  SourceLoc loc;
  std::string name;
  std::vector<Decorator> decorators;
  std::vector<FunctionDef> methods;
};

struct Module {
  std::vector<ClassDef> classes;
};

// -- Helpers -----------------------------------------------------------------

template <typename T>
[[nodiscard]] const T* as(const ExprPtr& expr) {
  return expr ? std::get_if<T>(&expr->node) : nullptr;
}
template <typename T>
[[nodiscard]] const T* as(const StmtPtr& stmt) {
  return stmt ? std::get_if<T>(&stmt->node) : nullptr;
}

/// Compact single-line rendering of an expression (for tests/diagnostics).
[[nodiscard]] std::string to_string(const ExprPtr& expr);

/// Multi-line, indented rendering of a block (for tests/diagnostics).
[[nodiscard]] std::string to_string(const Block& block, int indent_level = 0);

}  // namespace shelley::upy
