#include "upy/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "support/guard.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::upy {
namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> map = {
      {"class", TokenKind::kKwClass},   {"def", TokenKind::kKwDef},
      {"return", TokenKind::kKwReturn}, {"if", TokenKind::kKwIf},
      {"elif", TokenKind::kKwElif},     {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},   {"for", TokenKind::kKwFor},
      {"in", TokenKind::kKwIn},         {"match", TokenKind::kKwMatch},
      {"case", TokenKind::kKwCase},     {"pass", TokenKind::kKwPass},
      {"True", TokenKind::kKwTrue},     {"False", TokenKind::kKwFalse},
      {"None", TokenKind::kKwNone},     {"and", TokenKind::kKwAnd},
      {"or", TokenKind::kKwOr},         {"not", TokenKind::kKwNot},
      {"break", TokenKind::kKwBreak},   {"continue", TokenKind::kKwContinue},
      {"try", TokenKind::kKwTry},       {"except", TokenKind::kKwExcept},
      {"finally", TokenKind::kKwFinally}, {"raise", TokenKind::kKwRaise},
  };
  return map;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view source,
                 DiagnosticEngine* diagnostics = nullptr)
      : source_(source), diagnostics_(diagnostics) {}

  std::vector<Token> run() {
    indents_.push_back(0);
    while (pos_ < source_.size()) {
      if (at_line_start_ && bracket_depth_ == 0) {
        handle_indentation();
        if (pos_ >= source_.size()) break;
      }
      lex_one();
    }
    finish();
    return tokens_;
  }

 private:
  [[nodiscard]] SourceLoc here() const { return {line_, column_}; }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void emit(TokenKind kind, std::string text, SourceLoc loc) {
    tokens_.push_back(Token{kind, std::move(text), loc});
  }

  // Reports a lexical error.  Without a diagnostics sink this throws (the
  // historical contract); with one it records the error so the caller's
  // recovery action can resynchronize and keep producing tokens.
  void fail(SourceLoc loc, std::string message) {
    if (diagnostics_ == nullptr) throw ParseError(loc, message);
    diagnostics_->error(loc, std::move(message));
  }

  // True at a line terminator: '\n' or the '\r' of a "\r\n" pair.
  [[nodiscard]] bool at_eol() const {
    return peek() == '\n' || (peek() == '\r' && peek(1) == '\n');
  }

  // Measures the indentation of the line starting at pos_, skipping blank
  // and comment-only lines entirely.  Emits INDENT/DEDENT as required.
  void handle_indentation() {
    while (pos_ < source_.size()) {
      const std::size_t line_begin = pos_;
      std::uint32_t width = 0;
      while (pos_ < source_.size() && (peek() == ' ' || peek() == '\t')) {
        width = peek() == '\t' ? (width / 8 + 1) * 8 : width + 1;
        advance();
      }
      if (pos_ >= source_.size()) return;
      if (at_eol()) {
        if (peek() == '\r') advance();
        advance();  // blank line (LF or CRLF)
        continue;
      }
      if (peek() == '#') {
        while (pos_ < source_.size() && peek() != '\n') advance();
        continue;  // comment-only line; the \n is consumed next iteration
      }
      (void)line_begin;
      apply_indent(width);
      at_line_start_ = false;
      return;
    }
  }

  void apply_indent(std::uint32_t width) {
    if (width > indents_.back()) {
      indents_.push_back(width);
      emit(TokenKind::kIndent, "", here());
      return;
    }
    while (width < indents_.back()) {
      indents_.pop_back();
      emit(TokenKind::kDedent, "", here());
    }
    if (width != indents_.back()) {
      // Recovery: treat the line as if it matched the enclosing level, so
      // one bad indent yields one diagnostic instead of a cascade.
      fail(here(), "inconsistent indentation");
    }
  }

  void lex_one() {
    const char c = peek();
    const SourceLoc loc = here();

    if (c == '\n') {
      advance();
      if (bracket_depth_ == 0) {
        emit(TokenKind::kNewline, "", loc);
        at_line_start_ = true;
      }
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      return;
    }
    if (c == '#') {
      while (pos_ < source_.size() && peek() != '\n') advance();
      return;
    }
    if (c == '\\' &&
        (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
      advance();  // explicit line joining, LF or CRLF
      if (peek() == '\r') advance();
      advance();
      return;
    }
    if (c == '"' || c == '\'') {
      lex_string(loc);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      lex_number(loc);
      return;
    }
    if (is_ident_start(c)) {
      lex_name(loc);
      return;
    }
    lex_operator(loc);
  }

  void lex_string(SourceLoc loc) {
    const char quote = advance();
    std::string value;
    while (true) {
      if (pos_ >= source_.size() || at_eol()) {
        // Recovery: emit what was scanned so the parser can keep going.
        fail(loc, "unterminated string literal");
        break;
      }
      const char c = advance();
      if (c == quote) break;
      if (c == '\\' && pos_ < source_.size()) {
        const char escaped = advance();
        switch (escaped) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case '\\': value += '\\'; break;
          case '\'': value += '\''; break;
          case '"': value += '"'; break;
          default: value += escaped; break;
        }
        continue;
      }
      value += c;
    }
    emit(TokenKind::kString, std::move(value), loc);
  }

  void lex_number(SourceLoc loc) {
    std::string text;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
           peek() == '.' || peek() == 'x' || peek() == 'X' ||
           (std::isxdigit(static_cast<unsigned char>(peek())) != 0 &&
            text.size() >= 2 && (text[1] == 'x' || text[1] == 'X'))) {
      // Avoid swallowing attribute access after an integer: `1.foo` cannot
      // occur in our subset, so a dot inside a number is always a float dot.
      if (peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1))) == 0) {
        break;
      }
      text += advance();
    }
    emit(TokenKind::kNumber, std::move(text), loc);
  }

  void lex_name(SourceLoc loc) {
    std::string text;
    while (is_ident_char(peek())) text += advance();
    // String prefixes (f-strings, raw/byte strings): the analysis treats
    // them as plain strings -- interpolation is a value-level feature.
    if ((text == "f" || text == "r" || text == "b" || text == "rb" ||
         text == "fr") &&
        (peek() == '"' || peek() == '\'')) {
      lex_string(loc);
      return;
    }
    const auto it = keywords().find(text);
    emit(it != keywords().end() ? it->second : TokenKind::kName,
         std::move(text), loc);
  }

  void lex_operator(SourceLoc loc) {
    const char c = advance();
    switch (c) {
      case '(':
        ++bracket_depth_;
        emit(TokenKind::kLParen, "(", loc);
        return;
      case ')':
        if (bracket_depth_ > 0) --bracket_depth_;
        emit(TokenKind::kRParen, ")", loc);
        return;
      case '[':
        ++bracket_depth_;
        emit(TokenKind::kLBracket, "[", loc);
        return;
      case ']':
        if (bracket_depth_ > 0) --bracket_depth_;
        emit(TokenKind::kRBracket, "]", loc);
        return;
      case ':':
        emit(TokenKind::kColon, ":", loc);
        return;
      case ',':
        emit(TokenKind::kComma, ",", loc);
        return;
      case '.':
        emit(TokenKind::kDot, ".", loc);
        return;
      case '@':
        emit(TokenKind::kAt, "@", loc);
        return;
      case ';':
        emit(TokenKind::kSemicolon, ";", loc);
        return;
      case '=':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kEq, "==", loc);
        } else {
          emit(TokenKind::kAssign, "=", loc);
        }
        return;
      case '!':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kNe, "!=", loc);
          return;
        }
        fail(loc, "unexpected '!'");  // recovery: drop the character
        return;
      case '<':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kLe, "<=", loc);
        } else {
          emit(TokenKind::kLt, "<", loc);
        }
        return;
      case '>':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kGe, ">=", loc);
        } else {
          emit(TokenKind::kGt, ">", loc);
        }
        return;
      case '+':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kAugAssign, "+=", loc);
          return;
        }
        emit(TokenKind::kPlus, "+", loc);
        return;
      case '-':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kAugAssign, "-=", loc);
          return;
        }
        emit(TokenKind::kMinus, "-", loc);
        return;
      case '*':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kAugAssign, "*=", loc);
          return;
        }
        emit(TokenKind::kStarOp, "*", loc);
        return;
      case '/':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kAugAssign, "/=", loc);
          return;
        }
        emit(TokenKind::kSlash, "/", loc);
        return;
      case '%':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kAugAssign, "%=", loc);
          return;
        }
        emit(TokenKind::kPercent, "%", loc);
        return;
      default:
        fail(loc, std::string("unexpected character '") + c + "'");
        return;  // recovery: drop the character
    }
  }

  void finish() {
    // Terminate a trailing logical line that lacks '\n'.
    if (!tokens_.empty() && tokens_.back().kind != TokenKind::kNewline &&
        tokens_.back().kind != TokenKind::kDedent) {
      emit(TokenKind::kNewline, "", here());
    }
    while (indents_.size() > 1) {
      indents_.pop_back();
      emit(TokenKind::kDedent, "", here());
    }
    emit(TokenKind::kEndOfFile, "", here());
  }

  std::string_view source_;
  DiagnosticEngine* diagnostics_;  // non-null = recovery mode
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
  bool at_line_start_ = true;
  int bracket_depth_ = 0;
  std::vector<std::uint32_t> indents_;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  support::trace::Span span("upy.lex");
  support::guard::check_input_size(source.size());
  std::vector<Token> tokens = Lexer(source).run();
  support::metrics::record_tokens(tokens.size());
  span.arg("tokens", static_cast<std::uint64_t>(tokens.size()));
  return tokens;
}

std::vector<Token> lex(std::string_view source,
                       DiagnosticEngine& diagnostics) {
  support::trace::Span span("upy.lex");
  support::guard::check_input_size(source.size());
  std::vector<Token> tokens = Lexer(source, &diagnostics).run();
  support::metrics::record_tokens(tokens.size());
  span.arg("tokens", static_cast<std::uint64_t>(tokens.size()));
  return tokens;
}

}  // namespace shelley::upy
