// Indentation-aware lexer for the MicroPython subset.
//
// Python layout rules implemented: INDENT/DEDENT from an indentation stack,
// logical-line NEWLINE suppression inside (…) and […] (implicit joining),
// blank-line and comment skipping, and tabs expanded to 8-column stops.
// Throws ParseError on bad indentation or unterminated strings.
#pragma once

#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"
#include "upy/token.hpp"

namespace shelley::upy {

[[nodiscard]] std::vector<Token> lex(std::string_view source);

/// Recovery mode: lexical errors (bad characters, unterminated strings,
/// inconsistent indentation) are reported into `diagnostics` and the lexer
/// resynchronizes, so one malformed construct yields one diagnostic and the
/// rest of the file still produces tokens.  Resource limits (input size)
/// still throw support::guard::ResourceError.
[[nodiscard]] std::vector<Token> lex(std::string_view source,
                                     DiagnosticEngine& diagnostics);

}  // namespace shelley::upy
