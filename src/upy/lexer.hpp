// Indentation-aware lexer for the MicroPython subset.
//
// Python layout rules implemented: INDENT/DEDENT from an indentation stack,
// logical-line NEWLINE suppression inside (…) and […] (implicit joining),
// blank-line and comment skipping, and tabs expanded to 8-column stops.
// Throws ParseError on bad indentation or unterminated strings.
#pragma once

#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"
#include "upy/token.hpp"

namespace shelley::upy {

[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace shelley::upy
