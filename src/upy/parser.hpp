// Recursive-descent parser for the MicroPython subset.
//
// Accepted shape: a module is a sequence of (possibly decorated) class
// definitions; each class contains decorated method definitions; method
// bodies use the statements of §2 (expression statements, assignments,
// return, pass, if/elif/else, while, for, match/case) in both block and
// one-line-suite form.  `import`/`from` lines are skipped.  Throws
// ParseError with a source location on malformed input.
#pragma once

#include <string_view>

#include "support/diagnostics.hpp"
#include "upy/ast.hpp"

namespace shelley::upy {

[[nodiscard]] Module parse_module(std::string_view source);

/// Parses a single expression (used by tests and the claim parser).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace shelley::upy
