// Recursive-descent parser for the MicroPython subset.
//
// Accepted shape: a module is a sequence of (possibly decorated) class
// definitions; each class contains decorated method definitions; method
// bodies use the statements of §2 (expression statements, assignments,
// return, pass, if/elif/else, while, for, match/case) in both block and
// one-line-suite form.  `import`/`from` lines are skipped.  Throws
// ParseError with a source location on malformed input.
#pragma once

#include <string_view>

#include "support/diagnostics.hpp"
#include "upy/ast.hpp"

namespace shelley::upy {

[[nodiscard]] Module parse_module(std::string_view source);

/// Recovery mode: instead of throwing on the first syntax error, reports
/// every error into `diagnostics` (in source order, one per malformed
/// construct, synchronizing on NEWLINE/DEDENT) and returns whatever parsed
/// cleanly -- a class with one broken method keeps its other methods.
/// Resource limits (support::guard) still throw ResourceError.
[[nodiscard]] Module parse_module(std::string_view source,
                                  DiagnosticEngine& diagnostics);

/// Parses a single expression (used by tests and the claim parser).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace shelley::upy
