#include "upy/token.hpp"

namespace shelley::upy {

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNewline: return "NEWLINE";
    case TokenKind::kIndent: return "INDENT";
    case TokenKind::kDedent: return "DEDENT";
    case TokenKind::kEndOfFile: return "EOF";
    case TokenKind::kName: return "NAME";
    case TokenKind::kNumber: return "NUMBER";
    case TokenKind::kString: return "STRING";
    case TokenKind::kKwClass: return "'class'";
    case TokenKind::kKwDef: return "'def'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElif: return "'elif'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwIn: return "'in'";
    case TokenKind::kKwMatch: return "'match'";
    case TokenKind::kKwCase: return "'case'";
    case TokenKind::kKwPass: return "'pass'";
    case TokenKind::kKwTrue: return "'True'";
    case TokenKind::kKwFalse: return "'False'";
    case TokenKind::kKwNone: return "'None'";
    case TokenKind::kKwAnd: return "'and'";
    case TokenKind::kKwOr: return "'or'";
    case TokenKind::kKwNot: return "'not'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwTry: return "'try'";
    case TokenKind::kKwExcept: return "'except'";
    case TokenKind::kKwFinally: return "'finally'";
    case TokenKind::kKwRaise: return "'raise'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStarOp: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAugAssign: return "augmented assignment";
  }
  return "?";
}

}  // namespace shelley::upy
