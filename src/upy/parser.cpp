#include "upy/parser.hpp"

#include <utility>

#include "support/guard.hpp"
#include "support/trace.hpp"
#include "upy/lexer.hpp"

namespace shelley::upy {
namespace {

template <typename Node>
ExprPtr make_expr(SourceLoc loc, Node node) {
  return std::make_shared<const Expr>(Expr{loc, std::move(node)});
}

template <typename Node>
StmtPtr make_stmt(SourceLoc loc, Node node) {
  return std::make_shared<const Stmt>(Stmt{loc, std::move(node)});
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens,
                  DiagnosticEngine* diagnostics = nullptr)
      : tokens_(std::move(tokens)), diagnostics_(diagnostics) {}

  Module parse_module() {
    Module module;
    while (!at(TokenKind::kEndOfFile)) {
      if (accept(TokenKind::kNewline)) continue;
      if (at(TokenKind::kName) &&
          (peek().text == "import" || peek().text == "from")) {
        skip_line();
        continue;
      }
      if (!recovering()) {
        module.classes.push_back(parse_classdef());
        continue;
      }
      try {
        module.classes.push_back(parse_classdef());
      } catch (const ParseError& error) {
        recover(error);
        // A class that broke mid-body leaves its closing DEDENTs behind;
        // they mean nothing at module level.
        while (accept(TokenKind::kDedent)) {
        }
      }
    }
    return module;
  }

  ExprPtr parse_single_expression() {
    ExprPtr expr = parse_testlist();
    if (!at(TokenKind::kNewline) && !at(TokenKind::kEndOfFile)) {
      throw ParseError(peek().loc, "trailing input after expression");
    }
    return expr;
  }

 private:
  // -- Token plumbing --------------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = std::min(index_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  // Sticks at the trailing EOF token: advancing past the end must not walk
  // off the vector, whatever a skip loop above gets wrong.
  const Token& advance() {
    const Token& token = tokens_[index_];
    if (index_ + 1 < tokens_.size()) ++index_;
    return token;
  }

  bool accept(TokenKind kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  const Token& expect(TokenKind kind) {
    if (!at(kind)) {
      throw ParseError(peek().loc, "expected " + std::string(to_string(kind)) +
                                       ", found " +
                                       std::string(to_string(peek().kind)));
    }
    return advance();
  }

  void skip_line() {
    while (!at(TokenKind::kNewline) && !at(TokenKind::kEndOfFile)) advance();
    accept(TokenKind::kNewline);
  }

  // -- Error recovery --------------------------------------------------------
  //
  // With a diagnostics sink installed, syntax errors are caught at the
  // nearest enclosing statement/member/class loop, recorded, and the token
  // stream is resynchronized to the next logical line at the same nesting
  // level, so one malformed construct yields one diagnostic and parsing
  // continues.  Resource errors always propagate: a file that hits a hard
  // limit is not worth enumerating further.

  [[nodiscard]] bool recovering() const { return diagnostics_ != nullptr; }

  void recover(const ParseError& error) {
    if (dynamic_cast<const support::guard::ResourceError*>(&error) !=
        nullptr) {
      throw;
    }
    // After many errors the rest of the file is noise (fuzzed inputs);
    // cap the cascade and skip to the end.
    if (++reported_errors_ <= kMaxParseErrors) {
      diagnostics_->error(error.loc(), error.message());
    }
    if (reported_errors_ == kMaxParseErrors) {
      diagnostics_->note(error.loc(),
                         "too many syntax errors; giving up on this file");
    }
    if (reported_errors_ >= kMaxParseErrors) {
      while (!at(TokenKind::kEndOfFile)) advance();
      return;
    }
    synchronize();
  }

  // Skips to the start of the next logical line at the nesting level of the
  // enclosing statement loop: consumes tokens through the next NEWLINE
  // (plus a whole INDENT...DEDENT suite the broken statement may have
  // opened), and stops *before* a DEDENT that closes the current block so
  // the enclosing loop sees it.
  void synchronize() {
    int depth = 0;
    while (!at(TokenKind::kEndOfFile)) {
      switch (peek().kind) {
        case TokenKind::kIndent:
          ++depth;
          advance();
          break;
        case TokenKind::kDedent:
          if (depth == 0) return;  // the caller's loop handles this one
          --depth;
          advance();
          if (depth == 0) return;
          break;
        case TokenKind::kNewline:
          advance();
          if (depth == 0) {
            // The erroring construct may have opened a suite (`if x ==:`
            // followed by an indented body); swallow it whole.
            if (!at(TokenKind::kIndent)) return;
          }
          break;
        default:
          advance();
          break;
      }
    }
  }

  // -- Declarations ----------------------------------------------------------

  std::vector<Decorator> parse_decorators() {
    std::vector<Decorator> out;
    while (at(TokenKind::kAt)) {
      const SourceLoc loc = advance().loc;
      Decorator decorator;
      decorator.loc = loc;
      decorator.name = expect(TokenKind::kName).text;
      while (accept(TokenKind::kDot)) {
        decorator.name += '.';
        decorator.name += expect(TokenKind::kName).text;
      }
      if (accept(TokenKind::kLParen)) {
        decorator.has_call = true;
        if (!at(TokenKind::kRParen)) {
          decorator.args.push_back(parse_test());
          while (accept(TokenKind::kComma)) {
            if (at(TokenKind::kRParen)) break;  // trailing comma
            decorator.args.push_back(parse_test());
          }
        }
        expect(TokenKind::kRParen);
      }
      expect(TokenKind::kNewline);
      out.push_back(std::move(decorator));
    }
    return out;
  }

  ClassDef parse_classdef() {
    ClassDef cls;
    cls.decorators = parse_decorators();
    cls.loc = expect(TokenKind::kKwClass).loc;
    cls.name = expect(TokenKind::kName).text;
    if (accept(TokenKind::kLParen)) {  // base-class list; names ignored
      while (!at(TokenKind::kRParen) && !at(TokenKind::kEndOfFile)) advance();
      expect(TokenKind::kRParen);
    }
    expect(TokenKind::kColon);
    expect(TokenKind::kNewline);
    expect(TokenKind::kIndent);
    while (!accept(TokenKind::kDedent)) {
      if (recovering() && at(TokenKind::kEndOfFile)) break;
      if (accept(TokenKind::kNewline)) continue;
      if (accept(TokenKind::kKwPass)) {
        expect(TokenKind::kNewline);
        continue;
      }
      if (!recovering()) {
        cls.methods.push_back(parse_funcdef());
        continue;
      }
      try {
        cls.methods.push_back(parse_funcdef());
      } catch (const ParseError& error) {
        recover(error);
      }
    }
    return cls;
  }

  FunctionDef parse_funcdef() {
    FunctionDef fn;
    fn.decorators = parse_decorators();
    fn.loc = expect(TokenKind::kKwDef).loc;
    fn.name = expect(TokenKind::kName).text;
    expect(TokenKind::kLParen);
    if (!at(TokenKind::kRParen)) {
      fn.params.push_back(expect(TokenKind::kName).text);
      while (accept(TokenKind::kComma)) {
        if (at(TokenKind::kRParen)) break;
        fn.params.push_back(expect(TokenKind::kName).text);
        // Default values: `x=1`.
        if (accept(TokenKind::kAssign)) (void)parse_test();
      }
    }
    expect(TokenKind::kRParen);
    expect(TokenKind::kColon);
    fn.body = parse_suite();
    return fn;
  }

  // -- Statements ------------------------------------------------------------

  Block parse_suite() {
    if (accept(TokenKind::kNewline)) {
      expect(TokenKind::kIndent);
      Block block;
      while (!accept(TokenKind::kDedent)) {
        if (recovering() && at(TokenKind::kEndOfFile)) break;
        if (accept(TokenKind::kNewline)) continue;
        if (!recovering()) {
          parse_statement(block);
          continue;
        }
        try {
          parse_statement(block);
        } catch (const ParseError& error) {
          recover(error);
        }
      }
      return block;
    }
    // One-line suite: `if x: a(); b()`
    Block block;
    parse_simple_statement_line(block);
    return block;
  }

  void parse_statement(Block& block) {
    support::guard::DepthGuard depth(peek().loc);
    switch (peek().kind) {
      case TokenKind::kKwIf:
        block.push_back(parse_if());
        return;
      case TokenKind::kKwWhile:
        block.push_back(parse_while());
        return;
      case TokenKind::kKwFor:
        block.push_back(parse_for());
        return;
      case TokenKind::kKwMatch:
        block.push_back(parse_match());
        return;
      case TokenKind::kKwTry:
        block.push_back(parse_try());
        return;
      default:
        parse_simple_statement_line(block);
        return;
    }
  }

  StmtPtr parse_try() {
    const SourceLoc loc = expect(TokenKind::kKwTry).loc;
    expect(TokenKind::kColon);
    TryStmt try_stmt;
    try_stmt.body = parse_suite();
    while (accept(TokenKind::kKwExcept)) {
      // Optional exception spec: `except ValueError as e:`.
      while (!at(TokenKind::kColon) && !at(TokenKind::kNewline) &&
             !at(TokenKind::kEndOfFile)) {
        advance();
      }
      expect(TokenKind::kColon);
      try_stmt.handlers.push_back(parse_suite());
    }
    if (accept(TokenKind::kKwFinally)) {
      expect(TokenKind::kColon);
      try_stmt.final_body = parse_suite();
    }
    if (try_stmt.handlers.empty() && try_stmt.final_body.empty()) {
      throw ParseError(loc, "try statement needs an except or finally block");
    }
    return make_stmt(loc, std::move(try_stmt));
  }

  void parse_simple_statement_line(Block& block) {
    block.push_back(parse_simple_statement());
    while (accept(TokenKind::kSemicolon)) {
      if (at(TokenKind::kNewline)) break;
      block.push_back(parse_simple_statement());
    }
    if (!accept(TokenKind::kNewline)) {
      if (!at(TokenKind::kEndOfFile)) {
        throw ParseError(peek().loc, "expected end of statement");
      }
    }
  }

  StmtPtr parse_simple_statement() {
    const SourceLoc loc = peek().loc;
    if (accept(TokenKind::kKwPass)) return make_stmt(loc, PassStmt{});
    if (accept(TokenKind::kKwBreak)) return make_stmt(loc, BreakStmt{});
    if (accept(TokenKind::kKwContinue)) return make_stmt(loc, ContinueStmt{});
    if (accept(TokenKind::kKwReturn)) {
      ExprPtr value;
      if (!at(TokenKind::kNewline) && !at(TokenKind::kSemicolon) &&
          !at(TokenKind::kEndOfFile)) {
        value = parse_testlist();
      }
      return make_stmt(loc, ReturnStmt{std::move(value)});
    }
    if (accept(TokenKind::kKwRaise)) {
      ExprPtr value;
      if (!at(TokenKind::kNewline) && !at(TokenKind::kSemicolon) &&
          !at(TokenKind::kEndOfFile)) {
        value = parse_testlist();
      }
      return make_stmt(loc, RaiseStmt{std::move(value)});
    }
    ExprPtr first = parse_testlist();
    if (accept(TokenKind::kAssign)) {
      ExprPtr value = parse_testlist();
      return make_stmt(loc, AssignStmt{std::move(first), std::move(value)});
    }
    if (at(TokenKind::kAugAssign)) {
      // Desugar `x += e` into `x = x + e`.
      const Token& op_token = advance();
      const std::string op(1, op_token.text.front());
      ExprPtr value = parse_testlist();
      ExprPtr combined = make_expr(
          op_token.loc, BinaryExpr{op, first, std::move(value)});
      return make_stmt(loc, AssignStmt{std::move(first),
                                       std::move(combined)});
    }
    return make_stmt(loc, ExprStmt{std::move(first)});
  }

  StmtPtr parse_if() {
    const SourceLoc loc = expect(TokenKind::kKwIf).loc;
    ExprPtr condition = parse_test();
    expect(TokenKind::kColon);
    Block then_body = parse_suite();
    Block else_body;
    if (at(TokenKind::kKwElif)) {
      // Desugar `elif` into `else: if ...` by rewriting the token in place.
      tokens_[index_].kind = TokenKind::kKwIf;
      else_body.push_back(parse_if());
    } else if (accept(TokenKind::kKwElse)) {
      expect(TokenKind::kColon);
      else_body = parse_suite();
    }
    return make_stmt(loc, IfStmt{std::move(condition), std::move(then_body),
                                 std::move(else_body)});
  }

  StmtPtr parse_while() {
    const SourceLoc loc = expect(TokenKind::kKwWhile).loc;
    ExprPtr condition = parse_test();
    expect(TokenKind::kColon);
    Block body = parse_suite();
    return make_stmt(loc, WhileStmt{std::move(condition), std::move(body)});
  }

  StmtPtr parse_for() {
    const SourceLoc loc = expect(TokenKind::kKwFor).loc;
    const std::string target = expect(TokenKind::kName).text;
    expect(TokenKind::kKwIn);
    ExprPtr iterable = parse_testlist();
    expect(TokenKind::kColon);
    Block body = parse_suite();
    return make_stmt(loc,
                     ForStmt{target, std::move(iterable), std::move(body)});
  }

  StmtPtr parse_match() {
    const SourceLoc loc = expect(TokenKind::kKwMatch).loc;
    ExprPtr subject = parse_testlist();
    expect(TokenKind::kColon);
    expect(TokenKind::kNewline);
    expect(TokenKind::kIndent);
    std::vector<MatchCase> cases;
    while (!accept(TokenKind::kDedent)) {
      if (accept(TokenKind::kNewline)) continue;
      MatchCase match_case;
      match_case.loc = expect(TokenKind::kKwCase).loc;
      if (at(TokenKind::kName) && peek().text == "_") {
        advance();  // wildcard; pattern stays null
      } else {
        match_case.pattern = parse_test();
      }
      expect(TokenKind::kColon);
      match_case.body = parse_suite();
      cases.push_back(std::move(match_case));
    }
    if (cases.empty()) {
      throw ParseError(loc, "match statement requires at least one case");
    }
    return make_stmt(loc, MatchStmt{std::move(subject), std::move(cases)});
  }

  // -- Expressions -----------------------------------------------------------

  // testlist := test (',' test)*  -- two or more become a tuple
  ExprPtr parse_testlist() {
    const SourceLoc loc = peek().loc;
    ExprPtr first = parse_test();
    if (!at(TokenKind::kComma)) return first;
    TupleExpr tuple;
    tuple.elements.push_back(std::move(first));
    while (accept(TokenKind::kComma)) {
      if (at(TokenKind::kNewline) || at(TokenKind::kRParen) ||
          at(TokenKind::kRBracket) || at(TokenKind::kColon) ||
          at(TokenKind::kEndOfFile)) {
        break;  // trailing comma
      }
      tuple.elements.push_back(parse_test());
    }
    return make_expr(loc, std::move(tuple));
  }

  ExprPtr parse_test() {
    support::guard::DepthGuard depth(peek().loc);
    return parse_or();
  }

  ExprPtr parse_or() {
    ExprPtr left = parse_and();
    while (at(TokenKind::kKwOr)) {
      const SourceLoc loc = advance().loc;
      left = make_expr(loc, BinaryExpr{"or", std::move(left), parse_and()});
    }
    return left;
  }

  ExprPtr parse_and() {
    ExprPtr left = parse_not();
    while (at(TokenKind::kKwAnd)) {
      const SourceLoc loc = advance().loc;
      left = make_expr(loc, BinaryExpr{"and", std::move(left), parse_not()});
    }
    return left;
  }

  ExprPtr parse_not() {
    support::guard::DepthGuard depth(peek().loc);
    if (at(TokenKind::kKwNot)) {
      const SourceLoc loc = advance().loc;
      return make_expr(loc, UnaryExpr{"not", parse_not()});
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr left = parse_arith();
    while (true) {
      std::string op;
      switch (peek().kind) {
        case TokenKind::kEq: op = "=="; break;
        case TokenKind::kNe: op = "!="; break;
        case TokenKind::kLt: op = "<"; break;
        case TokenKind::kGt: op = ">"; break;
        case TokenKind::kLe: op = "<="; break;
        case TokenKind::kGe: op = ">="; break;
        case TokenKind::kKwIn: op = "in"; break;
        default: return left;
      }
      const SourceLoc loc = advance().loc;
      left = make_expr(loc, BinaryExpr{op, std::move(left), parse_arith()});
    }
  }

  ExprPtr parse_arith() {
    ExprPtr left = parse_term();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const std::string op = peek().kind == TokenKind::kPlus ? "+" : "-";
      const SourceLoc loc = advance().loc;
      left = make_expr(loc, BinaryExpr{op, std::move(left), parse_term()});
    }
    return left;
  }

  ExprPtr parse_term() {
    ExprPtr left = parse_factor();
    while (at(TokenKind::kStarOp) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      std::string op = "*";
      if (peek().kind == TokenKind::kSlash) op = "/";
      if (peek().kind == TokenKind::kPercent) op = "%";
      const SourceLoc loc = advance().loc;
      left = make_expr(loc, BinaryExpr{op, std::move(left), parse_factor()});
    }
    return left;
  }

  ExprPtr parse_factor() {
    support::guard::DepthGuard depth(peek().loc);
    if (at(TokenKind::kMinus) || at(TokenKind::kPlus)) {
      const std::string op = peek().kind == TokenKind::kMinus ? "-" : "+";
      const SourceLoc loc = advance().loc;
      return make_expr(loc, UnaryExpr{op, parse_factor()});
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_atom();
    while (true) {
      if (at(TokenKind::kDot)) {
        const SourceLoc loc = advance().loc;
        const std::string attr = expect(TokenKind::kName).text;
        expr = make_expr(loc, AttributeExpr{std::move(expr), attr});
      } else if (at(TokenKind::kLParen)) {
        const SourceLoc loc = advance().loc;
        std::vector<ExprPtr> args;
        if (!at(TokenKind::kRParen)) {
          args.push_back(parse_test());
          while (accept(TokenKind::kComma)) {
            if (at(TokenKind::kRParen)) break;
            args.push_back(parse_test());
          }
        }
        expect(TokenKind::kRParen);
        expr = make_expr(loc, CallExpr{std::move(expr), std::move(args)});
      } else if (at(TokenKind::kLBracket)) {
        const SourceLoc loc = advance().loc;
        ExprPtr index = parse_test();
        expect(TokenKind::kRBracket);
        expr =
            make_expr(loc, SubscriptExpr{std::move(expr), std::move(index)});
      } else {
        return expr;
      }
    }
  }

  ExprPtr parse_atom() {
    const Token& token = peek();
    switch (token.kind) {
      case TokenKind::kName: {
        advance();
        return make_expr(token.loc, NameExpr{token.text});
      }
      case TokenKind::kNumber: {
        advance();
        return make_expr(token.loc, NumberExpr{token.text});
      }
      case TokenKind::kString: {
        advance();
        return make_expr(token.loc, StringExpr{token.text});
      }
      case TokenKind::kKwTrue:
        advance();
        return make_expr(token.loc, BoolExpr{true});
      case TokenKind::kKwFalse:
        advance();
        return make_expr(token.loc, BoolExpr{false});
      case TokenKind::kKwNone:
        advance();
        return make_expr(token.loc, NoneExpr{});
      case TokenKind::kLParen: {
        advance();
        if (accept(TokenKind::kRParen)) {
          return make_expr(token.loc, TupleExpr{});
        }
        ExprPtr inner = parse_testlist();
        expect(TokenKind::kRParen);
        return inner;
      }
      case TokenKind::kLBracket: {
        advance();
        ListExpr list;
        if (!at(TokenKind::kRBracket)) {
          list.elements.push_back(parse_test());
          while (accept(TokenKind::kComma)) {
            if (at(TokenKind::kRBracket)) break;
            list.elements.push_back(parse_test());
          }
        }
        expect(TokenKind::kRBracket);
        return make_expr(token.loc, std::move(list));
      }
      default:
        throw ParseError(token.loc,
                         "expected an expression, found " +
                             std::string(to_string(token.kind)));
    }
  }

  static constexpr std::size_t kMaxParseErrors = 100;

  std::vector<Token> tokens_;
  DiagnosticEngine* diagnostics_;  // non-null = recovery mode
  std::size_t index_ = 0;
  std::size_t reported_errors_ = 0;
};

}  // namespace

Module parse_module(std::string_view source) {
  support::trace::Span span("upy.parse");
  Module module = Parser(lex(source)).parse_module();
  span.arg("classes", static_cast<std::uint64_t>(module.classes.size()));
  return module;
}

Module parse_module(std::string_view source,
                    DiagnosticEngine& diagnostics) {
  support::trace::Span span("upy.parse");
  Module module =
      Parser(lex(source, diagnostics), &diagnostics).parse_module();
  span.arg("classes", static_cast<std::uint64_t>(module.classes.size()));
  return module;
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(lex(source)).parse_single_expression();
}

}  // namespace shelley::upy
