// The shelleyc command-line semantics as a library: option parsing, the
// load/artifact/verify flow, exit codes.  tools/shelleyc.cpp is a thin
// main() over run_cli(); the daemon reuses the same load and render steps
// request by request, so both front ends stay byte-identical by
// construction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "shelley/checker.hpp"
#include "support/thread_pool.hpp"

namespace shelley::engine {

class QueryEngine;
class Workspace;

struct CliOptions {
  std::vector<std::string> files;
  std::optional<std::string> verify_class;
  std::optional<std::string> dot_class;
  std::optional<std::string> dot_model;
  std::optional<std::string> dot_system;
  std::optional<std::string> dot_usage;
  std::optional<std::string> usage_regex;
  std::optional<std::string> smv;
  std::optional<std::string> monitor;
  std::optional<std::string> sample;
  int sample_count = 5;
  std::size_t jobs = support::ThreadPool::hardware_default();
  bool json = false;
  bool quiet = false;
  bool stats = false;
  bool version = false;
  bool help = false;
  std::optional<std::string> cache_dir;
  bool cache_stats = false;
  std::optional<std::string> trace_out;
  std::size_t dfa_budget = 0;
  // Claim checking: which LTLf engine answers (--ltlf-engine; `both`
  // cross-checks the tableau against the DFA oracle and aborts on any
  // disagreement) and whether to lint claim quality (--lint-claims).
  core::LtlfEngine ltlf_engine = core::LtlfEngine::kDfa;
  bool lint_claims = false;
  // Daemon slow-query threshold: requests taking longer than this many ms
  // get a "request.slow" structured-log line (0 = off).
  std::uint64_t slow_ms = 0;
  // Daemon transports (shelleyd only).  --socket PATH serves N concurrent
  // sessions over a Unix-domain socket; --connect PATH bridges stdio to a
  // running server; neither set = the classic stdio daemon.
  std::optional<std::string> socket_path;
  std::optional<std::string> connect_path;
  // Server scheduling: executor threads = max concurrently running
  // requests (0 = hardware default), and the per-session pending-request
  // bound past which admission control rejects.
  std::size_t max_inflight = 0;
  std::size_t session_queue_depth = 16;
  // Resource guards (support::guard); zeros keep the built-in defaults /
  // leave the check disabled.
  std::size_t max_states = 0;
  std::uint64_t timeout_ms = 0;
  std::size_t max_input_bytes = 0;
  std::size_t max_depth = 0;
};

void print_usage(std::ostream& out, const std::string& tool);

/// Parses shelleyc-style arguments.  `tool` names the binary in error
/// messages.  nullopt means a usage error (the caller prints usage and
/// exits 2); a returned options with `help` set means --help was asked
/// (print usage, exit 0).  --version permits an empty file list, as does
/// `require_files = false` (the daemon starts empty and loads over the
/// wire).
[[nodiscard]] std::optional<CliOptions> parse_cli_args(
    int argc, char** argv, const std::string& tool, std::ostream& err,
    bool require_files = true);

/// Loads every file of `options` into `workspace` with shelleyc's
/// per-file fault isolation and stderr protocol (the "cannot open"
/// notice, path-prefixed diagnostics, the failure line).  Returns
/// workspace.load_failed().
bool load_inputs(Workspace& workspace,
                 const std::vector<std::string>& files, std::ostream& err);

/// The whole shelleyc run over a caller-provided engine: artifact modes,
/// monitoring, verification, reports, stats.  Resource guards must
/// already be installed (main owns ScopedLimits so the daemon can arm
/// them once per process).  Returns the process exit status.
[[nodiscard]] int run_cli(const CliOptions& options, QueryEngine& engine,
                          std::istream& in, std::ostream& out,
                          std::ostream& err);

/// Convenience for the shelleyc tool: builds the workspace, cache, and
/// query engine, arms the guards, and runs run_cli.
[[nodiscard]] int run_tool(const CliOptions& options, std::istream& in,
                           std::ostream& out, std::ostream& err);

}  // namespace shelley::engine
