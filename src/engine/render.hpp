// The text surface of the CLI, factored out of tools/shelleyc.cpp so the
// thin client and the shelleyd daemon render through one code path --
// which is what makes "daemon output is byte-identical to a cold shelleyc
// run" a property of the code rather than a test-time coincidence.  Every
// function here is a byte-exact port of the shelleyc original, message
// prefixes included (the daemon answers "what would shelleyc print").
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "shelley/cache.hpp"
#include "shelley/report_json.hpp"
#include "shelley/verifier.hpp"

namespace shelley::engine {

/// One formatted diagnostic line; `path` (when non-empty) prefixes the
/// location so batch-mode output says which file each error lives in.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& diag,
                                            const std::string& path);

/// Batch-mode epilogue: one line per input file.
void print_file_summaries(const std::vector<core::FileSummary>& files,
                          std::ostream& out);

/// The loader's stderr protocol for files[first_file..]: the "cannot
/// open" notice before a file's (empty) diagnostic range, the
/// path-prefixed diagnostics, then any other failure line after them.
/// `ranges` holds each file's half-open slice of `diags`
/// (Workspace::file_diag_ranges).  The daemon replays this for `load` and
/// `update` responses so they carry the exact bytes a cold shelleyc load
/// writes.
[[nodiscard]] std::string render_load_errors(
    const std::vector<core::FileSummary>& files,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    const std::vector<Diagnostic>& diags, std::size_t first_file = 0);

/// The --stats summary: one row of automata sizes per verified class, then
/// the global pipeline counters and distributions.
void print_stats(const core::Report& report, std::ostream& out);

/// The --cache-stats block.
void print_cache_stats(const core::CacheStats& stats, std::ostream& out);

/// The default (non-JSON, non-quiet) verification report: per-class
/// ok/FAILED lines, the paper-format error blocks, the diagnostics
/// verification added past `load_diag_end` (loading already printed its
/// own, path-prefixed), and -- when there are two or more inputs or any
/// load failed -- the per-file summaries.
void render_text_report(const core::Report& report,
                        const core::Verifier& verifier,
                        std::size_t load_diag_end,
                        const std::vector<core::FileSummary>& summaries,
                        bool load_failed, std::ostream& out);

}  // namespace shelley::engine
