// One daemon session as a first-class object: the long-lived
// workspace/engine pair, the session-wide defaults every request starts
// from, and the full per-request observability wrapper (trace context,
// daemon.request_us, request.start/finish/error/slow log lines, error
// accounting).
//
// Both transports are thin loops over Session::handle_line: run_daemon
// (stdio, the degenerate single-session case) feeds it stdin lines, and
// the socket server's scheduler runs it once per queued request.  A
// session is not internally synchronized -- the wire protocol is
// sequential per client, and the scheduler guarantees at most one task of
// a session runs at a time -- but the shared tiers it may attach to
// (MemoTier, BehaviorCache, the thread pool) are.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "engine/driver.hpp"
#include "engine/memo.hpp"
#include "engine/query.hpp"
#include "engine/workspace.hpp"

namespace shelley::core {
class BehaviorCache;
}

namespace shelley::engine {

/// Process-wide resources a server session plugs into.  All-null (the
/// default) reproduces the stdio daemon exactly: a private memo tier and
/// session-local request ids.
struct SessionShared {
  /// On-disk cache attached to the session's workspace (may be null).
  core::BehaviorCache* cache = nullptr;
  /// Memo tier shared across sessions; null = the session owns a private
  /// tier.
  MemoTier* memo = nullptr;
  /// Process-wide request-id serial so log/trace request ids stay unique
  /// across concurrent sessions; null = ids are the session-local 1-based
  /// arrival order (the stdio daemon's numbering, pinned by the obs
  /// tests).
  std::atomic<std::uint64_t>* request_serial = nullptr;
};

class Session {
 public:
  /// What one request line produced.  `response` is exactly one JSON
  /// object, no trailing newline.
  struct Outcome {
    std::string response;
    bool shutdown = false;         ///< this session asked to end
    bool shutdown_server = false;  ///< {"cmd":"shutdown","scope":"server"}
  };

  /// `defaults` is copied; lint options and the shared cache (when given)
  /// are attached to the freshly built workspace.
  Session(const CliOptions& defaults, const SessionShared& shared = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Loads `defaults.files` with the batch loader's stderr protocol going
  /// to `err` (command-line files load before the first request).
  void load_initial_files(std::ostream& err);

  /// Handles one request line end to end -- dispatch, trace context +
  /// span, daemon.request_us, request.start/finish/error/slow log lines,
  /// error accounting -- and never throws: a malformed or failing request
  /// becomes an {"ok":false,...} response (the never-crash frontend
  /// contract extends to the wire).
  [[nodiscard]] Outcome handle_line(const std::string& line);

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t request_errors() const {
    return request_errors_;
  }
  [[nodiscard]] Workspace& workspace() { return workspace_; }
  [[nodiscard]] QueryEngine& engine() { return engine_; }

 private:
  friend struct SessionAccess;  // handler implementation (session.cpp)

  CliOptions defaults_;
  std::atomic<std::uint64_t>* request_serial_;
  Workspace workspace_;
  QueryEngine engine_;
  std::uint64_t requests_ = 0;
  std::uint64_t request_errors_ = 0;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

namespace testing {
/// Makes the next verify/report request fail as if run_cli threw -- the
/// regression hook for the error-accounting path (stats.request_errors,
/// the request.error log line, the {"ok":false} reply).  Test-only.
void fail_next_run(bool fail);
}  // namespace testing

}  // namespace shelley::engine
