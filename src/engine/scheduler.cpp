#include "engine/scheduler.hpp"

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace shelley::engine {

namespace metrics = support::metrics;

Scheduler::Scheduler(const Options& options)
    : queue_depth_(options.session_queue_depth > 0
                       ? options.session_queue_depth
                       : 1) {
  const std::size_t executors =
      options.executors > 0 ? options.executors
                            : support::ThreadPool::hardware_default();
  executors_.reserve(executors);
  for (std::size_t i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& executor : executors_) executor.join();
}

std::uint64_t Scheduler::add_session() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = ++next_session_;
  sessions_.emplace(id, SessionQueue{});
  return id;
}

void Scheduler::remove_session(std::uint64_t session) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  idle_.wait(lock, [&] {
    return it->second.tasks.empty() && !it->second.running;
  });
  // Not in ready_ either: a session enters the ready list only with
  // pending tasks, and leaves it before its task runs.
  sessions_.erase(it);
}

Scheduler::Admission Scheduler::submit(std::uint64_t session, Task task) {
  std::size_t backlog = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return Admission::kRejectedUnknownSession;
    SessionQueue& queue = it->second;
    if (queue.tasks.size() >= queue_depth_) {
      ++stats_.rejected;
      if (metrics::enabled()) metrics::counter("sched.rejected").add();
      return Admission::kRejectedQueueFull;
    }
    queue.tasks.emplace_back(std::move(task),
                             std::chrono::steady_clock::now());
    ++stats_.submitted;
    if (!queue.running && queue.tasks.size() == 1) {
      ready_.push_back(session);
    }
    backlog = pending_locked();
  }
  if (metrics::enabled()) {
    metrics::counter("sched.submitted").add();
    metrics::histogram("daemon.queue_depth").record(backlog);
  }
  work_available_.notify_one();
  return Admission::kAccepted;
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return pending_locked() == 0 && inflight_ == 0; });
}

Scheduler::Stats Scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.sessions = sessions_.size();
  return out;
}

std::size_t Scheduler::pending_locked() const {
  std::size_t pending = 0;
  for (const auto& [id, queue] : sessions_) pending += queue.tasks.size();
  return pending;
}

void Scheduler::executor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;
    const std::uint64_t session = ready_.front();
    ready_.pop_front();
    const auto it = sessions_.find(session);
    if (it == sessions_.end() || it->second.tasks.empty()) continue;
    SessionQueue& queue = it->second;
    auto [task, enqueued] = std::move(queue.tasks.front());
    queue.tasks.pop_front();
    queue.running = true;
    ++inflight_;
    lock.unlock();

    if (metrics::enabled()) {
      const auto waited =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - enqueued);
      metrics::histogram("daemon.sched_wait_us")
          .record(static_cast<std::uint64_t>(waited.count()));
    }
    try {
      task();
    } catch (...) {
      // Tasks own their error reporting (the server task wraps
      // Session::handle_line, which never throws); a throw here must not
      // take the executor down.
    }

    lock.lock();
    ++stats_.executed;
    --inflight_;
    // The session may have been erased while its task ran only if
    // remove_session returned early -- it cannot, because it waits on
    // running; re-find to stay safe against future changes.
    const auto again = sessions_.find(session);
    if (again != sessions_.end()) {
      again->second.running = false;
      // Round-robin fairness: a session re-enters the ready list at the
      // back, behind every other session that accumulated work meanwhile.
      if (!again->second.tasks.empty()) ready_.push_back(session);
    }
    idle_.notify_all();
  }
}

}  // namespace shelley::engine
