#include "engine/query.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "fsm/ops.hpp"
#include "fsm/serialize.hpp"
#include "ltlf/parser.hpp"
#include "shelley/automata.hpp"
#include "shelley/monitor.hpp"
#include "shelley/replay.hpp"
#include "smv/smv.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace shelley::engine {

namespace {

/// Charges the enclosing scope's wall time to a named latency histogram
/// (one per query kind).  Armed only while metrics collection is on, so
/// the disabled cost is one relaxed load and a branch -- no clock read.
class LatencyProbe {
 public:
  explicit LatencyProbe(std::string_view name) {
    if (!support::metrics::enabled()) return;
    armed_ = true;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
  }
  ~LatencyProbe() {
    if (!armed_) return;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_);
    support::metrics::histogram(name_).record(
        static_cast<std::uint64_t>(elapsed.count()));
  }

  LatencyProbe(const LatencyProbe&) = delete;
  LatencyProbe& operator=(const LatencyProbe&) = delete;

 private:
  bool armed_ = false;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

core::ClassReport QueryEngine::report(const core::ClassSpec& spec,
                                      DiagnosticEngine& sink) {
  const LatencyProbe probe("query.report_us");
  core::Verifier& verifier = workspace_.verifier();
  const support::Digest128 key = verifier.cache_key(spec);
  if (auto verdict = memo_.load_verdict(key, spec.name)) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.report_hits;
    }
    if (support::trace::enabled()) {
      support::trace::instant("memo.hit/" + spec.name);
    }
    return verifier.replay_verdict(spec, *std::move(verdict), sink);
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.report_misses;
  }
  // Fall through to the disk tier (or, without one, the live pipeline);
  // either way the class's diagnostics land in `sink` starting at
  // diags_begin, which is exactly the slice capture_verdict stores.
  const std::size_t diags_begin = sink.diagnostics().size();
  core::ClassReport result = verifier.verify_or_replay(spec, sink);
  if (result.resource_errors == 0) {
    memo_.store_verdict(
        key, core::capture_verdict(result, sink, diags_begin,
                                   verifier.symbols()));
  }
  return result;
}

core::ClassReport QueryEngine::verify_class(std::string_view name) {
  core::Verifier& verifier = workspace_.verifier();
  const core::ClassSpec* spec = verifier.find_class(name);
  if (spec == nullptr) {
    verifier.diagnostics().error(
        {}, "cannot verify unknown class '" + std::string(name) + "'");
    core::ClassReport result;
    result.class_name = std::string(name);
    result.invocation_errors = 1;
    return result;
  }
  return report(*spec, verifier.diagnostics());
}

core::Report QueryEngine::verify_all(std::size_t jobs) {
  const LatencyProbe probe("query.verify_all_us");
  // One root span per top-level call; the per-class report() spans opened
  // on pool workers parent here via the context ThreadPool::submit carries.
  support::trace::Span span("engine.verify_all");
  span.arg("jobs", static_cast<std::uint64_t>(jobs));
  core::Verifier& verifier = workspace_.verifier();
  std::vector<const core::ClassSpec*> work;
  for (const core::ClassSpec& spec : verifier.classes()) {
    if (spec.is_system) work.push_back(&spec);
  }

  core::Report full_report;
  if (jobs <= 1 || work.size() <= 1) {
    for (const core::ClassSpec* spec : work) {
      full_report.classes.push_back(report(*spec, verifier.diagnostics()));
    }
    return full_report;
  }

  // The deterministic-merge protocol of Verifier::verify_all(jobs):
  // pre-intern every symbol in serial order (ids leak into the output),
  // verify each class into its own sink, merge in registration order.
  for (const core::ClassSpec* spec : work) verifier.warm_symbols(*spec);

  std::vector<core::ClassReport> reports(work.size());
  std::vector<DiagnosticEngine> sinks(work.size());
  std::vector<std::exception_ptr> errors(work.size());
  support::parallel_for(work.size(), jobs, [&](std::size_t i) {
    try {
      reports[i] = report(*work[i], sinks[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });

  for (std::size_t i = 0; i < work.size(); ++i) {
    verifier.diagnostics().append(sinks[i]);
    if (errors[i]) std::rethrow_exception(errors[i]);
    full_report.classes.push_back(std::move(reports[i]));
  }
  return full_report;
}

fsm::Dfa QueryEngine::usage_dfa(const core::ClassSpec& spec) {
  const LatencyProbe probe("query.usage_dfa_us");
  core::Verifier& verifier = workspace_.verifier();
  const support::Digest128 key = verifier.cache_key(spec);
  if (const auto bytes = memo_.load_dfa_bytes(key)) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.dfa_hits;
    }
    return fsm::dfa_from_bytes(*bytes, verifier.symbols());
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.dfa_misses;
  }
  core::BehaviorCache* cache = workspace_.cache();
  if (cache != nullptr) {
    if (auto dfa = cache->load_dfa(key, verifier.symbols())) {
      memo_.store_dfa_bytes(key,
                            fsm::dfa_to_bytes(*dfa, verifier.symbols()));
      return *std::move(dfa);
    }
  }
  // Build through the Monitor constructor -- the same
  // usage_nfa/determinize/minimize pipeline --monitor runs cold.
  const core::Monitor monitor(spec, verifier.symbols());
  fsm::Dfa dfa = monitor.dfa();
  if (cache != nullptr) cache->store_dfa(key, dfa, verifier.symbols());
  memo_.store_dfa_bytes(key, fsm::dfa_to_bytes(dfa, verifier.symbols()));
  return dfa;
}

fsm::CompiledDfa QueryEngine::compiled_table(const core::ClassSpec& spec) {
  const LatencyProbe probe("query.compiled_table_us");
  core::Verifier& verifier = workspace_.verifier();
  const support::Digest128 key = verifier.cache_key(spec);
  if (const auto bytes = memo_.load_table_bytes(key)) {
    try {
      fsm::CompiledDfa compiled =
          fsm::CompiledDfa::from_bytes(*bytes, verifier.symbols());
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.table_hits;
      return compiled;
    } catch (const support::BinaryFormatError&) {
      // The memo holds exactly what we encoded, so this cannot happen short
      // of a format-version bump mid-process; degrade to a miss.
    }
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.table_misses;
  }
  core::BehaviorCache* cache = workspace_.cache();
  if (cache != nullptr) {
    if (auto compiled = cache->load_table(key, verifier.symbols())) {
      memo_.store_table_bytes(key, compiled->to_bytes());
      return *std::move(compiled);
    }
  }
  // Cold: compile from the usage DFA, which runs its own memo/disk tiering.
  const fsm::CompiledDfa compiled =
      fsm::CompiledDfa::compile(usage_dfa(spec), verifier.symbols());
  if (cache != nullptr) cache->store_table(key, compiled);
  memo_.store_table_bytes(key, compiled.to_bytes());
  return compiled;
}

SmvArtifact QueryEngine::smv_model(const core::ClassSpec& spec) {
  const LatencyProbe probe("query.smv_model_us");
  core::Verifier& verifier = workspace_.verifier();
  const support::Digest128 key = verifier.cache_key(spec);
  if (const auto artifact = memo_.load_artifact(key)) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.artifact_hits;
    }
    return SmvArtifact{*artifact, {}};
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.artifact_misses;
  }
  core::BehaviorCache* cache = workspace_.cache();
  if (cache != nullptr) {
    if (const auto artifact = cache->load_artifact(key)) {
      memo_.store_artifact(key, *artifact);
      return SmvArtifact{*artifact, {}};
    }
  }

  const auto behaviors = core::extract_behaviors(spec, verifier.symbols(),
                                                 verifier.diagnostics());
  const core::SystemModel model = core::build_system_model(
      spec, behaviors, verifier.symbols(), verifier.diagnostics());
  const fsm::Dfa dfa =
      fsm::minimize(fsm::determinize(model.nfa, model.full_alphabet()));
  smv::SmvModel smv_model =
      smv::from_dfa(dfa, verifier.symbols(), spec.name);
  SmvArtifact artifact;
  for (const core::Claim& claim : spec.claims) {
    try {
      smv::add_ltlspec(
          smv_model,
          ltlf::parse(claim.text, verifier.symbols(), claim.loc),
          verifier.symbols());
    } catch (const ParseError&) {
      artifact.skipped_claims.push_back(claim.text);
    }
  }
  artifact.text = smv::emit(smv_model);
  // A model with skipped claims is incomplete; never memoize it in any
  // tier, so the caller's skip notice reprints on every run.
  if (artifact.skipped_claims.empty()) {
    if (cache != nullptr) cache->store_artifact(key, artifact.text);
    memo_.store_artifact(key, artifact.text);
  }
  return artifact;
}

std::size_t QueryEngine::apply_update(const UpdateResult& update) {
  std::size_t dropped = 0;
  for (const support::Digest128& key : update.stale_keys) {
    dropped += memo_.invalidate(key);
  }
  return dropped;
}

QueryStats QueryEngine::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace shelley::engine
