#include "engine/workspace.hpp"

#include <deque>
#include <fstream>
#include <sstream>
#include <utility>

#include "shelley/cache.hpp"
#include "support/guard.hpp"
#include "upy/parser.hpp"

namespace shelley::engine {

Workspace::Workspace() : verifier_(std::make_unique<core::Verifier>()) {}

Workspace::~Workspace() = default;

void Workspace::set_lint_options(const core::LintOptions& options) {
  lint_options_ = options;
  verifier_->set_lint_options(options);
}

void Workspace::set_check_options(const core::CheckOptions& options) {
  check_options_ = options;
  verifier_->set_check_options(options);
}

void Workspace::set_cache(core::BehaviorCache* cache) {
  cache_ = cache;
  verifier_->set_cache(cache);
}

const core::FileSummary& Workspace::load_file(const std::string& path) {
  SourceFile source;
  source.path = path;
  std::ifstream file(path);
  if (file) {
    std::stringstream buffer;
    buffer << file.rdbuf();
    source.text = buffer.str();
    source.content_key = support::hash_bytes(*source.text);
  }
  const std::size_t diags_before =
      verifier_->diagnostics().diagnostics().size();
  summaries_.push_back(apply_file(source));
  sources_.push_back(std::move(source));
  load_diag_end_ = verifier_->diagnostics().diagnostics().size();
  file_diag_ranges_.emplace_back(diags_before, load_diag_end_);
  return summaries_.back();
}

const core::FileSummary& Workspace::load_source(const std::string& path,
                                                std::string text) {
  SourceFile source;
  source.path = path;
  source.content_key = support::hash_bytes(text);
  source.text = std::move(text);
  const std::size_t diags_before =
      verifier_->diagnostics().diagnostics().size();
  summaries_.push_back(apply_file(source));
  sources_.push_back(std::move(source));
  load_diag_end_ = verifier_->diagnostics().diagnostics().size();
  file_diag_ranges_.emplace_back(diags_before, load_diag_end_);
  return summaries_.back();
}

UpdateResult Workspace::update_source(const std::string& path,
                                      std::optional<std::string> text) {
  const std::map<std::string, support::Digest128> before = class_keys();

  SourceFile updated;
  updated.path = path;
  if (text) {
    updated.content_key = support::hash_bytes(*text);
    updated.text = std::move(text);
  } else {
    std::ifstream file(path);
    if (file) {
      std::stringstream buffer;
      buffer << file.rdbuf();
      updated.text = buffer.str();
      updated.content_key = support::hash_bytes(*updated.text);
    }
  }
  bool replaced = false;
  for (SourceFile& source : sources_) {
    if (source.path == path) {
      source = std::move(updated);
      replaced = true;
      break;
    }
  }
  if (!replaced) sources_.push_back(std::move(updated));

  rebuild();

  // Content-addressed keys give invalidation for free: a class's key folds
  // in its own canonical AST plus its whole subsystem closure, so exactly
  // the dependency closure of the edit changes keys -- diff the key maps
  // and the changed set falls out, no graph walk needed.
  const std::map<std::string, support::Digest128> after = class_keys();
  UpdateResult result;
  for (const auto& [name, key] : before) {
    const auto it = after.find(name);
    if (it == after.end() || !(it->second == key)) {
      result.changed.push_back(name);
      result.stale_keys.push_back(key);
    }
  }
  for (const auto& [name, key] : after) {
    if (before.find(name) == before.end()) result.changed.push_back(name);
  }
  return result;
}

bool Workspace::load_failed() const {
  for (const core::FileSummary& summary : summaries_) {
    if (!summary.loaded || summary.parse_errors > 0) return true;
  }
  return false;
}

void Workspace::rewind_to_loaded() {
  verifier_->diagnostics().truncate(load_diag_end_);
}

std::map<std::string, support::Digest128> Workspace::class_keys() const {
  std::map<std::string, support::Digest128> keys;
  for (const core::ClassSpec& spec : verifier_->classes()) {
    keys.emplace(spec.name, verifier_->cache_key(spec));
  }
  return keys;
}

std::vector<std::string> Workspace::dependents_closure(
    const std::string& name) const {
  // Reverse reachability over subsystem declarations.  Unresolved names
  // contribute no edges (a missing subsystem is folded into the key as a
  // marker, but it has no spec to traverse), and cycles are handled by the
  // visited set -- every member of an SCC reaches every other.
  std::map<std::string, std::vector<std::string>> rdeps;
  for (const core::ClassSpec& spec : verifier_->classes()) {
    for (const core::SubsystemDecl& sub : spec.subsystems) {
      rdeps[sub.class_name].push_back(spec.name);
    }
  }
  std::vector<std::string> closure;
  std::map<std::string, bool> visited;
  std::deque<std::string> queue{name};
  visited[name] = true;
  while (!queue.empty()) {
    std::string current = std::move(queue.front());
    queue.pop_front();
    const auto it = rdeps.find(current);
    if (it != rdeps.end()) {
      for (const std::string& dependent : it->second) {
        if (!visited[dependent]) {
          visited[dependent] = true;
          queue.push_back(dependent);
        }
      }
    }
    closure.push_back(std::move(current));
  }
  return closure;
}

core::FileSummary Workspace::apply_file(const SourceFile& file) {
  core::FileSummary summary;
  summary.path = file.path;
  if (!file.text) {
    summary.failure = "cannot open file";
    return summary;
  }
  DiagnosticEngine& sink = verifier_->diagnostics();
  const std::size_t errors_before = sink.error_count();
  try {
    const ParseResult& parsed = lookup_or_parse(file);
    for (const Diagnostic& diag : parsed.parse_diagnostics) {
      sink.report(diag.severity, diag.loc, diag.message);
    }
    // Spec extraction re-runs on every apply: it is deterministic given
    // the (memoized) AST, and the duplicate-class check depends on what
    // else this workspace has registered, so it cannot be memoized per
    // file.
    for (const upy::ClassDef& cls : parsed.module.classes) {
      verifier_->add_class(cls);
    }
    summary.parse_errors = sink.error_count() - errors_before;
    summary.loaded = true;
  } catch (const std::exception& error) {
    summary.parse_errors = sink.error_count() - errors_before;
    summary.failure = error.what();
  }
  return summary;
}

const Workspace::ParseResult& Workspace::lookup_or_parse(
    const SourceFile& file) {
  const auto it = parse_memo_.find(file.content_key);
  if (it != parse_memo_.end()) {
    ++parse_stats_.hits;
    return it->second;
  }
  ++parse_stats_.misses;
  // Parse into a local sink so the parse-phase diagnostics can be stored
  // alongside the module; the caller replays them into the live sink, in
  // the exact order add_source_recover would have produced them.
  DiagnosticEngine local;
  ParseResult result;
  try {
    result.module = upy::parse_module(*file.text, local);
  } catch (const support::guard::ResourceError& error) {
    // Resource limits abort the whole source (the parse state is gone) and
    // must not be memoized: raising a limit has to make the next rebuild
    // actually re-parse.  Flush what recovery collected plus the limit
    // error, and hand back an empty module.
    scratch_ = ParseResult{};
    scratch_.parse_diagnostics = local.diagnostics();
    scratch_.parse_diagnostics.push_back(
        Diagnostic{Severity::kError, error.loc(), error.message()});
    return scratch_;
  } catch (...) {
    // Internal failures surface as a FileSummary failure upstream; keep
    // the partial diagnostics visible, exactly like parsing straight into
    // the verifier's sink would have.
    for (const Diagnostic& diag : local.diagnostics()) {
      verifier_->diagnostics().report(diag.severity, diag.loc, diag.message);
    }
    throw;
  }
  result.parse_diagnostics = local.diagnostics();
  const auto [inserted, ok] =
      parse_memo_.emplace(file.content_key, std::move(result));
  return inserted->second;
}

void Workspace::rebuild() {
  verifier_ = std::make_unique<core::Verifier>();
  verifier_->set_lint_options(lint_options_);
  verifier_->set_check_options(check_options_);
  verifier_->set_cache(cache_);
  summaries_.clear();
  summaries_.reserve(sources_.size());
  file_diag_ranges_.clear();
  file_diag_ranges_.reserve(sources_.size());
  for (const SourceFile& source : sources_) {
    const std::size_t diags_before =
        verifier_->diagnostics().diagnostics().size();
    summaries_.push_back(apply_file(source));
    file_diag_ranges_.emplace_back(
        diags_before, verifier_->diagnostics().diagnostics().size());
  }
  load_diag_end_ = verifier_->diagnostics().diagnostics().size();
}

}  // namespace shelley::engine
