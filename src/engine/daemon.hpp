// shelleyd's request loop: newline-delimited JSON over stdio, one
// workspace + query engine per session.
//
// Wire protocol (one request object per input line, one response object
// per output line; see docs/ARCHITECTURE.md for the full reference):
//
//   {"cmd":"version"}                    -> {"ok":true,"version":...}
//   {"cmd":"load","files":[...]}         -> per-file summaries + the
//                                           loader's stderr bytes
//   {"cmd":"update","file":P,"text":T?}  -> changed classes + memo drops
//                                           (text omitted: re-read disk)
//   {"cmd":"verify","class"?,"jobs"?,"stats"?}
//                                        -> shelleyc's text report bytes
//   {"cmd":"report","class"?,"jobs"?,"stats"?}
//                                        -> shelleyc's --json bytes
//   {"cmd":"monitor","class":C,...}      -> streaming-monitor run: compiles
//                                           C's table (tiered) and checks
//                                           events from an inline "events"
//                                           array, an "ndjson" blob, or a
//                                           "file" (+"format": "ndjson" |
//                                           "binary"); optional "shards",
//                                           "max_violations"
//   {"cmd":"stats"}                      -> memo/query/parse/cache counters
//   {"cmd":"shutdown","scope"?}          -> {"ok":true}, then the loop ends
//                                           (over stdio, scope "server"
//                                           behaves like a plain shutdown;
//                                           see engine/server.hpp)
//
// verify/report responses carry, in "output" and "errors", the exact
// stdout/stderr bytes a cold `shelleyc` run over the current sources
// would produce, and "status" carries its exit code: requests run through
// the same run_cli the thin client uses, and the diagnostic sink is
// rewound to its post-load state after every request so repetition
// cannot accumulate state.  Verification runs on the persistent shared
// thread pool (support::parallel_for), so a long-lived daemon never
// re-spawns threads per request.
//
// This stdio loop is the degenerate single-session transport over
// engine/session.hpp; the concurrent multi-session socket transport is
// engine/server.hpp.
#pragma once

#include <iosfwd>

#include "engine/driver.hpp"

namespace shelley::engine {

/// Runs the daemon loop until shutdown or end of input.  `session` fixes
/// the per-session configuration (cache dir, default jobs, lint budget;
/// guard limits must already be armed by the caller).  Files listed in
/// `session` are loaded before the first request, with the loader's
/// stderr going to `err`.  Always returns 0; a malformed request is a
/// per-request error response, never a crash (the never-crash frontend
/// contract extends to the wire).
[[nodiscard]] int run_daemon(const CliOptions& session, std::istream& in,
                             std::ostream& out, std::ostream& err);

}  // namespace shelley::engine
