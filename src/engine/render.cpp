#include "engine/render.hpp"

#include <iomanip>
#include <ostream>

#include "support/metrics.hpp"

namespace shelley::engine {

std::string format_diagnostic(const Diagnostic& diag,
                              const std::string& path) {
  std::string out;
  if (!path.empty()) out += path + ":";
  out += std::string(to_string(diag.severity)) + " " + to_string(diag.loc) +
         ": " + diag.message + "\n";
  return out;
}

void print_file_summaries(const std::vector<core::FileSummary>& files,
                          std::ostream& out) {
  out << "\ninputs:\n";
  for (const core::FileSummary& file : files) {
    out << "  " << file.path << ": ";
    if (!file.failure.empty()) {
      out << "FAILED (" << file.failure << ")";
    } else if (file.parse_errors > 0) {
      out << file.parse_errors << " parse error"
          << (file.parse_errors == 1 ? "" : "s");
    } else {
      out << "ok";
    }
    out << "\n";
  }
}

std::string render_load_errors(
    const std::vector<core::FileSummary>& files,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    const std::vector<Diagnostic>& diags, std::size_t first_file) {
  std::string out;
  for (std::size_t f = first_file; f < files.size(); ++f) {
    const core::FileSummary& file = files[f];
    const bool open_failure =
        !file.loaded && file.failure == "cannot open file";
    if (open_failure) {
      out += "shelleyc: cannot open '" + file.path + "'\n";
    }
    if (f < ranges.size()) {
      for (std::size_t i = ranges[f].first; i < ranges[f].second; ++i) {
        out += format_diagnostic(diags[i], file.path);
      }
    }
    if (!file.failure.empty() && !open_failure) {
      out += "shelleyc: " + file.path + ": " + file.failure + "\n";
    }
  }
  return out;
}

void print_stats(const core::Report& report, std::ostream& out) {
  out << "\nautomata statistics\n";
  out << std::left << std::setw(24) << "  class" << std::right
      << std::setw(8) << "nfa" << std::setw(10) << "dfa.raw"
      << std::setw(10) << "dfa.min" << std::setw(10) << "pairs"
      << std::setw(8) << "ltlf" << std::setw(6) << "cex"
      << std::setw(10) << "ms" << "\n";
  for (const core::ClassReport& cls : report.classes) {
    if (!cls.stats.collected) continue;
    out << "  " << std::left << std::setw(22) << cls.class_name
        << std::right << std::setw(8) << cls.stats.nfa_states
        << std::setw(10) << cls.stats.dfa_states_before
        << std::setw(10) << cls.stats.dfa_states_after
        << std::setw(10) << cls.stats.product_pairs
        << std::setw(8) << cls.stats.ltlf_states
        << std::setw(6) << cls.stats.counterexample_len
        << std::setw(10) << std::fixed << std::setprecision(2)
        << cls.stats.elapsed_ms << "\n";
  }
  const auto counters = support::metrics::counter_snapshot();
  if (!counters.empty()) {
    out << "\npipeline counters\n";
    for (const auto& [name, value] : counters) {
      out << "  " << std::left << std::setw(30) << name << std::right
          << std::setw(12) << value << "\n";
    }
  }
  const auto distributions = support::metrics::distribution_snapshot();
  if (!distributions.empty()) {
    out << "\npipeline distributions (count/min/max/sum)\n";
    for (const auto& [name, snap] : distributions) {
      out << "  " << std::left << std::setw(30) << name << std::right
          << std::setw(8) << snap.count << std::setw(8) << snap.min
          << std::setw(8) << snap.max << std::setw(12) << snap.sum << "\n";
    }
  }
}

void print_cache_stats(const core::CacheStats& stats, std::ostream& out) {
  out << "\ncache statistics\n"
      << "  hits            " << stats.hits << "\n"
      << "  misses          " << stats.misses << "\n"
      << "  invalidations   " << stats.invalidations << "\n"
      << "  stores          " << stats.stores << "\n"
      << "  store failures  " << stats.store_failures << "\n";
}

void render_text_report(const core::Report& report,
                        const core::Verifier& verifier,
                        std::size_t load_diag_end,
                        const std::vector<core::FileSummary>& summaries,
                        bool load_failed, std::ostream& out) {
  for (const core::ClassReport& cls : report.classes) {
    out << cls.class_name << ": " << (cls.ok() ? "ok" : "FAILED") << "\n";
  }
  const std::string errors = report.render(verifier.symbols());
  if (!errors.empty()) out << "\n" << errors;
  std::string diagnostics;
  const auto& diags = verifier.diagnostics().diagnostics();
  for (std::size_t i = load_diag_end; i < diags.size(); ++i) {
    diagnostics += format_diagnostic(diags[i], "");
  }
  if (!diagnostics.empty()) out << "\n" << diagnostics;
  if (summaries.size() >= 2 || load_failed) {
    print_file_summaries(summaries, out);
  }
}

}  // namespace shelley::engine
