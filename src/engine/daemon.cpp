#include "engine/daemon.hpp"

#include <exception>
#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "engine/session.hpp"
#include "shelley/cache.hpp"
#include "support/guard.hpp"
#include "support/log.hpp"

namespace shelley::engine {

int run_daemon(const CliOptions& session_options, std::istream& in,
               std::ostream& out, std::ostream& err) {
  // One set of resource guards for the whole session, exactly like the
  // batch client arms per run.
  support::guard::Limits limits;
  if (session_options.max_depth > 0) {
    limits.max_recursion_depth = session_options.max_depth;
  }
  if (session_options.max_input_bytes > 0) {
    limits.max_input_bytes = session_options.max_input_bytes;
  }
  limits.max_states = session_options.max_states;
  limits.timeout_ms = session_options.timeout_ms;
  support::guard::ScopedLimits guard(limits);

  std::optional<core::BehaviorCache> cache;
  if (session_options.cache_dir) {
    try {
      cache.emplace(*session_options.cache_dir);
    } catch (const std::exception& error) {
      err << "shelleyd: " << error.what() << "\n";
      return 2;
    }
  }
  // The degenerate single-session transport: a private memo tier and
  // session-local request ids (SessionShared defaults), one line in, one
  // line out.  The socket server runs the very same Session per client.
  SessionShared shared;
  if (cache) shared.cache = &*cache;
  Session session(session_options, shared);

  // Files given on the command line are loaded before the first request,
  // with the loader's stderr going to the real stderr (wire responses
  // only cover wire-initiated loads).
  session.load_initial_files(err);

  namespace log = support::log;
  if (log::enabled()) {
    log::write(log::Level::kInfo, "daemon.start", 0,
               {log::Field("slow_ms", session_options.slow_ms)});
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Session::Outcome outcome = session.handle_line(line);
    out << outcome.response << "\n" << std::flush;
    // Over stdio there is no server distinct from the session, so both
    // shutdown scopes end the loop.
    if (outcome.shutdown) break;
  }
  if (log::enabled()) {
    log::write(log::Level::kInfo, "daemon.stop", 0,
               {log::Field("requests", session.requests()),
                log::Field("errors", session.request_errors())});
  }
  return 0;
}

}  // namespace shelley::engine
