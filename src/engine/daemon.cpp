#include "engine/daemon.hpp"

#include <exception>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

#include "engine/query.hpp"
#include "engine/render.hpp"
#include "engine/workspace.hpp"
#include "shelley/cache.hpp"
#include "shelley/fingerprint.hpp"
#include "support/guard.hpp"
#include "support/json.hpp"

namespace shelley::engine {

namespace {

/// One daemon session: the long-lived workspace/engine pair plus the
/// session-wide defaults every request starts from.
struct Session {
  const CliOptions& defaults;
  Workspace& workspace;
  QueryEngine& engine;
};

void write_error(JsonWriter& writer, const std::string& message) {
  writer.begin_object();
  writer.key("ok").value(false);
  writer.key("error").value(message);
  writer.end_object();
}

void write_file_summaries(JsonWriter& writer,
                          const std::vector<core::FileSummary>& summaries,
                          std::size_t first) {
  writer.key("files").begin_array();
  for (std::size_t i = first; i < summaries.size(); ++i) {
    const core::FileSummary& file = summaries[i];
    writer.begin_object();
    writer.key("path").value(file.path);
    writer.key("loaded").value(file.loaded);
    writer.key("parse_errors")
        .value(static_cast<std::uint64_t>(file.parse_errors));
    if (!file.failure.empty()) writer.key("failure").value(file.failure);
    writer.end_object();
  }
  writer.end_array();
}

void handle_load(Session& session, const JsonValue& request,
                 JsonWriter& writer) {
  const JsonValue& files = request.at("files");
  const std::size_t first = session.workspace.summaries().size();
  std::vector<std::string> paths;
  for (const JsonValue& file : files.as_array()) {
    paths.push_back(file.as_string());
  }
  std::ostringstream errors;
  load_inputs(session.workspace, paths, errors);
  writer.begin_object();
  writer.key("ok").value(true);
  writer.key("status")
      .value(static_cast<std::int64_t>(
          session.workspace.load_failed() ? 2 : 0));
  writer.key("errors").value(errors.str());
  write_file_summaries(writer, session.workspace.summaries(), first);
  writer.end_object();
}

void handle_update(Session& session, const JsonValue& request,
                   JsonWriter& writer) {
  const std::string path = request.at("file").as_string();
  std::optional<std::string> text;
  if (const JsonValue* value = request.find("text")) {
    text = value->as_string();
  }
  const UpdateResult update =
      session.workspace.update_source(path, std::move(text));
  const std::size_t dropped = session.engine.apply_update(update);
  writer.begin_object();
  writer.key("ok").value(true);
  writer.key("status")
      .value(static_cast<std::int64_t>(
          session.workspace.load_failed() ? 2 : 0));
  // The full reload stderr: what a cold shelleyc run over the updated
  // sources writes while loading.
  writer.key("errors").value(render_load_errors(
      session.workspace.summaries(), session.workspace.file_diag_ranges(),
      session.workspace.verifier().diagnostics().diagnostics()));
  writer.key("changed").begin_array();
  for (const std::string& name : update.changed) {
    writer.value(name);
  }
  writer.end_array();
  writer.key("invalidated").value(static_cast<std::uint64_t>(dropped));
  writer.end_object();
}

void handle_run(Session& session, const JsonValue& request, bool json,
                JsonWriter& writer) {
  CliOptions options = session.defaults;
  options.json = json;
  options.verify_class.reset();
  if (const JsonValue* name = request.find("class")) {
    options.verify_class = name->as_string();
  }
  if (const JsonValue* jobs = request.find("jobs")) {
    options.jobs = static_cast<std::size_t>(jobs->as_number());
  }
  if (const JsonValue* stats = request.find("stats")) {
    options.stats = stats->as_bool();
  }
  std::istringstream no_stdin;
  std::ostringstream out;
  std::ostringstream errors;
  int status = 2;
  try {
    status = run_cli(options, session.engine, no_stdin, out, errors);
  } catch (const std::exception& error) {
    // The thin client's last-resort boundary, request-scoped.
    errors << "shelleyc: internal error: " << error.what() << "\n";
  } catch (...) {
    errors << "shelleyc: internal error\n";
  }
  // Rewind to the post-load state so the next request's diagnostics
  // render exactly like a cold run -- report_to_json emits every
  // diagnostic in the sink, so accumulation would break byte-identity.
  session.workspace.rewind_to_loaded();
  writer.begin_object();
  writer.key("ok").value(true);
  writer.key("status").value(static_cast<std::int64_t>(status));
  writer.key("output").value(out.str());
  writer.key("errors").value(errors.str());
  writer.end_object();
}

void handle_stats(Session& session, JsonWriter& writer) {
  writer.begin_object();
  writer.key("ok").value(true);
  const MemoStats memo = session.engine.memo().stats();
  writer.key("memo").begin_object();
  writer.key("hits").value(memo.hits);
  writer.key("misses").value(memo.misses);
  writer.key("stores").value(memo.stores);
  writer.key("invalidations").value(memo.invalidations);
  writer.key("evictions").value(memo.evictions);
  writer.key("bytes").value(memo.bytes);
  writer.end_object();
  const QueryStats queries = session.engine.stats();
  writer.key("queries").begin_object();
  writer.key("report_hits").value(queries.report_hits);
  writer.key("report_misses").value(queries.report_misses);
  writer.key("dfa_hits").value(queries.dfa_hits);
  writer.key("dfa_misses").value(queries.dfa_misses);
  writer.key("artifact_hits").value(queries.artifact_hits);
  writer.key("artifact_misses").value(queries.artifact_misses);
  writer.end_object();
  const ParseStats parses = session.workspace.parse_stats();
  writer.key("parse").begin_object();
  writer.key("hits").value(parses.hits);
  writer.key("misses").value(parses.misses);
  writer.end_object();
  if (const core::BehaviorCache* cache = session.workspace.cache()) {
    const core::CacheStats disk = cache->stats();
    writer.key("cache").begin_object();
    writer.key("hits").value(disk.hits);
    writer.key("misses").value(disk.misses);
    writer.key("invalidations").value(disk.invalidations);
    writer.key("stores").value(disk.stores);
    writer.key("store_failures").value(disk.store_failures);
    writer.end_object();
  }
  writer.end_object();
}

/// Dispatches one request; returns false once shutdown was requested.
bool handle_request(Session& session, const std::string& line,
                    JsonWriter& writer) {
  const JsonValue request = parse_json(line);
  const std::string& cmd = request.at("cmd").as_string();
  if (cmd == "shutdown") {
    writer.begin_object();
    writer.key("ok").value(true);
    writer.end_object();
    return false;
  }
  if (cmd == "version") {
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("version").value(core::kToolchainVersion);
    writer.end_object();
  } else if (cmd == "load") {
    handle_load(session, request, writer);
  } else if (cmd == "update") {
    handle_update(session, request, writer);
  } else if (cmd == "verify") {
    handle_run(session, request, /*json=*/false, writer);
  } else if (cmd == "report") {
    handle_run(session, request, /*json=*/true, writer);
  } else if (cmd == "stats") {
    handle_stats(session, writer);
  } else {
    write_error(writer, "unknown command '" + cmd + "'");
  }
  return true;
}

}  // namespace

int run_daemon(const CliOptions& session_options, std::istream& in,
               std::ostream& out, std::ostream& err) {
  // One set of resource guards for the whole session, exactly like the
  // batch client arms per run.
  support::guard::Limits limits;
  if (session_options.max_depth > 0) {
    limits.max_recursion_depth = session_options.max_depth;
  }
  if (session_options.max_input_bytes > 0) {
    limits.max_input_bytes = session_options.max_input_bytes;
  }
  limits.max_states = session_options.max_states;
  limits.timeout_ms = session_options.timeout_ms;
  support::guard::ScopedLimits guard(limits);

  Workspace workspace;
  workspace.set_lint_options(core::LintOptions{session_options.dfa_budget});
  std::optional<core::BehaviorCache> cache;
  if (session_options.cache_dir) {
    try {
      cache.emplace(*session_options.cache_dir);
    } catch (const std::exception& error) {
      err << "shelleyd: " << error.what() << "\n";
      return 2;
    }
    workspace.set_cache(&*cache);
  }
  QueryEngine engine(workspace);
  Session session{session_options, workspace, engine};

  // Files given on the command line are loaded before the first request,
  // with the loader's stderr going to the real stderr (wire responses
  // only cover wire-initiated loads).
  if (!session_options.files.empty()) {
    load_inputs(workspace, session_options.files, err);
  }

  std::string line;
  bool running = true;
  while (running && std::getline(in, line)) {
    if (line.empty()) continue;
    JsonWriter writer;
    try {
      running = handle_request(session, line, writer);
    } catch (const std::exception& error) {
      JsonWriter fresh;  // discard any half-written response
      write_error(fresh, error.what());
      out << fresh.str() << "\n" << std::flush;
      continue;
    }
    out << writer.str() << "\n" << std::flush;
  }
  return 0;
}

}  // namespace shelley::engine
