// Port of the original tools/shelleyc.cpp run() over the query engine.
// Message prefixes stay "shelleyc" on every path both front ends share:
// the daemon's contract is "byte-identical to a cold shelleyc run", so
// even its notices must carry the client's name.
#include "engine/driver.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <random>
#include <string>

#include "engine/query.hpp"
#include "engine/render.hpp"
#include "engine/workspace.hpp"
#include "fsm/ops.hpp"
#include "fsm/to_regex.hpp"
#include "shelley/automata.hpp"
#include "shelley/cache.hpp"
#include "shelley/fingerprint.hpp"
#include "shelley/graph.hpp"
#include "shelley/monitor.hpp"
#include "shelley/report_json.hpp"
#include "shelley/sampler.hpp"
#include "support/guard.hpp"
#include "viz/dot.hpp"

namespace shelley::engine {

namespace {

const core::ClassSpec* require_class(const core::Verifier& verifier,
                                     const std::string& name,
                                     std::ostream& err) {
  const core::ClassSpec* spec = verifier.find_class(name);
  if (spec == nullptr) {
    err << "shelleyc: unknown class '" << name << "'\n";
  }
  return spec;
}

core::SystemModel build_model(core::Verifier& verifier,
                              const core::ClassSpec& spec) {
  const auto behaviors = core::extract_behaviors(
      spec, verifier.symbols(), verifier.diagnostics());
  return core::build_system_model(spec, behaviors, verifier.symbols(),
                                  verifier.diagnostics());
}

}  // namespace

void print_usage(std::ostream& out, const std::string& tool) {
  out << "usage: " << tool << " [options] <file.py>...\n"
         "  --class NAME        verify only NAME\n"
         "  --json              print a JSON report\n"
         "  --quiet             suppress the text report\n"
         "  --dot-class NAME    emit the class behavior diagram (DOT)\n"
         "  --dot-model NAME    emit the dependency-graph model (DOT)\n"
         "  --dot-system NAME   emit the composite system automaton (DOT)\n"
         "  --dot-usage NAME    emit the minimal valid-usage DFA (DOT)\n"
         "  --usage-regex NAME  print the valid-usage language as a regex\n"
         "  --smv NAME          emit a NuSMV model of the system behavior\n"
         "  --monitor NAME      read operation calls from stdin, one per\n"
         "                      line, and report a verdict for each\n"
         "  --sample NAME [N]   print N (default 5) valid complete usages\n"
         "  --jobs N            verify classes on up to N threads (default:\n"
         "                      hardware concurrency; 1 = serial)\n"
         "  --stats             print per-class automata statistics and\n"
         "                      pipeline counters (with --json: embed them)\n"
         "  --cache DIR         incremental verification: consult (and\n"
         "                      fill) an on-disk behavior cache in DIR\n"
         "  --cache-stats       print cache hit/miss/invalidation counters\n"
         "                      (stderr with --json, so stdout stays JSON)\n"
         "  --trace-out FILE    write a Chrome trace-event JSON timeline of\n"
         "                      the whole run (load in Perfetto)\n"
         "  --dfa-budget N      warn when a class's minimized DFA exceeds\n"
         "                      N states (0 = off)\n"
         "  --ltlf-engine E     answer @claim formulas with E: 'dfa' (the\n"
         "                      default progression-DFA oracle), 'tableau'\n"
         "                      (the on-the-fly frame solver), or 'both'\n"
         "                      (run both, abort on any disagreement)\n"
         "  --lint-claims       warn about unsatisfiable or trivially-true\n"
         "                      @claim formulas\n"
         "  --max-states N      abort (as an error, not a crash) any\n"
         "                      automaton construction exceeding N states\n"
         "                      (0 = unlimited)\n"
         "  --timeout-ms N      abort verification once N ms of wall clock\n"
         "                      have elapsed (0 = no deadline)\n"
         "  --max-input-bytes N reject source files larger than N bytes\n"
         "                      (0 = default, 8 MiB)\n"
         "  --max-depth N       cap parser/visitor recursion depth\n"
         "                      (0 = default, 256)\n"
         "  --slow-ms N         daemon: log requests slower than N ms to\n"
         "                      the structured log (0 = off)\n"
         "  --socket PATH       daemon: serve concurrent sessions over a\n"
         "                      Unix-domain socket at PATH (stdio stays\n"
         "                      the single-session default)\n"
         "  --connect PATH      daemon: bridge stdin/stdout to the server\n"
         "                      listening at PATH\n"
         "  --max-inflight N    server: run at most N requests at once\n"
         "                      across all sessions (0 = hardware default)\n"
         "  --session-queue N   server: reject a session's requests once N\n"
         "                      are already pending (default 16)\n"
         "  --version           print the toolchain version and exit\n";
}

std::optional<CliOptions> parse_cli_args(int argc, char** argv,
                                         const std::string& tool,
                                         std::ostream& err,
                                         bool require_files) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    } else if (arg == "--version") {
      options.version = true;
      return options;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--class") {
      options.verify_class = next();
      if (!options.verify_class) return std::nullopt;
    } else if (arg == "--dot-class") {
      options.dot_class = next();
      if (!options.dot_class) return std::nullopt;
    } else if (arg == "--dot-model") {
      options.dot_model = next();
      if (!options.dot_model) return std::nullopt;
    } else if (arg == "--dot-system") {
      options.dot_system = next();
      if (!options.dot_system) return std::nullopt;
    } else if (arg == "--dot-usage") {
      options.dot_usage = next();
      if (!options.dot_usage) return std::nullopt;
    } else if (arg == "--usage-regex") {
      options.usage_regex = next();
      if (!options.usage_regex) return std::nullopt;
    } else if (arg == "--smv") {
      options.smv = next();
      if (!options.smv) return std::nullopt;
    } else if (arg == "--monitor") {
      options.monitor = next();
      if (!options.monitor) return std::nullopt;
    } else if (arg == "--jobs" || arg == "-j") {
      const auto value = next();
      if (!value) return std::nullopt;
      const long parsed = std::atol(value->c_str());
      if (parsed < 1) {
        err << tool << ": --jobs needs a positive integer\n";
        return std::nullopt;
      }
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--cache") {
      options.cache_dir = next();
      if (!options.cache_dir) return std::nullopt;
    } else if (arg == "--cache-stats") {
      options.cache_stats = true;
    } else if (arg == "--ltlf-engine") {
      const auto value = next();
      if (!value) return std::nullopt;
      if (*value == "dfa") {
        options.ltlf_engine = core::LtlfEngine::kDfa;
      } else if (*value == "tableau") {
        options.ltlf_engine = core::LtlfEngine::kTableau;
      } else if (*value == "both") {
        options.ltlf_engine = core::LtlfEngine::kBoth;
      } else {
        err << tool << ": --ltlf-engine needs 'dfa', 'tableau', or 'both'"
            << " (got '" << *value << "')\n";
        return std::nullopt;
      }
    } else if (arg == "--lint-claims") {
      options.lint_claims = true;
    } else if (arg == "--trace-out") {
      options.trace_out = next();
      if (!options.trace_out) return std::nullopt;
    } else if (arg == "--socket") {
      options.socket_path = next();
      if (!options.socket_path) return std::nullopt;
    } else if (arg == "--connect") {
      options.connect_path = next();
      if (!options.connect_path) return std::nullopt;
    } else if (arg == "--max-inflight" || arg == "--session-queue") {
      const auto value = next();
      if (!value) return std::nullopt;
      const long parsed = std::atol(value->c_str());
      if (parsed < 0 || (arg == "--session-queue" && parsed < 1)) {
        err << tool << ": " << arg << " needs a "
            << (arg == "--session-queue" ? "positive" : "non-negative")
            << " integer\n";
        return std::nullopt;
      }
      if (arg == "--max-inflight") {
        options.max_inflight = static_cast<std::size_t>(parsed);
      } else {
        options.session_queue_depth = static_cast<std::size_t>(parsed);
      }
    } else if (arg == "--dfa-budget" || arg == "--max-states" ||
               arg == "--timeout-ms" || arg == "--max-input-bytes" ||
               arg == "--max-depth" || arg == "--slow-ms") {
      const auto value = next();
      if (!value) return std::nullopt;
      const long parsed = std::atol(value->c_str());
      if (parsed < 0) {
        err << tool << ": " << arg << " needs a non-negative integer\n";
        return std::nullopt;
      }
      const auto count = static_cast<std::size_t>(parsed);
      if (arg == "--dfa-budget") {
        options.dfa_budget = count;
      } else if (arg == "--max-states") {
        options.max_states = count;
      } else if (arg == "--timeout-ms") {
        options.timeout_ms = static_cast<std::uint64_t>(parsed);
      } else if (arg == "--max-input-bytes") {
        options.max_input_bytes = count;
      } else if (arg == "--slow-ms") {
        options.slow_ms = static_cast<std::uint64_t>(parsed);
      } else {
        options.max_depth = count;
      }
    } else if (arg == "--sample") {
      options.sample = next();
      if (!options.sample) return std::nullopt;
      // Optional count argument.
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])) != 0) {
        options.sample_count = std::atoi(argv[++i]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      err << tool << ": unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      options.files.push_back(arg);
    }
  }
  if (require_files && options.files.empty()) return std::nullopt;
  return options;
}

bool load_inputs(Workspace& workspace,
                 const std::vector<std::string>& files, std::ostream& err) {
  const std::size_t first_file = workspace.summaries().size();
  for (const std::string& path : files) {
    workspace.load_file(path);
  }
  // One renderer for the loader's stderr protocol, shared with the
  // daemon's load/update responses.
  err << render_load_errors(workspace.summaries(),
                            workspace.file_diag_ranges(),
                            workspace.verifier().diagnostics().diagnostics(),
                            first_file);
  return workspace.load_failed();
}

int run_cli(const CliOptions& options, QueryEngine& engine,
            std::istream& in, std::ostream& out, std::ostream& err) {
  Workspace& workspace = engine.workspace();
  core::Verifier& verifier = workspace.verifier();
  const bool load_failed = workspace.load_failed();
  const std::size_t load_diag_end = workspace.load_diag_end();
  // Input problems dominate the exit status: even when an artifact mode or
  // the verification below succeeds on the surviving files, a failed input
  // makes the run exit 2.
  const int load_status = load_failed ? 2 : 0;

  // Artifact emission modes short-circuit verification.
  if (options.dot_class) {
    const auto* spec = require_class(verifier, *options.dot_class, err);
    if (spec == nullptr) return 2;
    out << viz::dot_class_diagram(*spec);
    return load_status;
  }
  if (options.dot_model) {
    const auto* spec = require_class(verifier, *options.dot_model, err);
    if (spec == nullptr) return 2;
    const core::DependencyGraph graph =
        core::DependencyGraph::build(*spec, verifier.diagnostics());
    out << viz::dot_dependency_graph(*spec, graph);
    return load_status;
  }
  if (options.dot_system) {
    const auto* spec = require_class(verifier, *options.dot_system, err);
    if (spec == nullptr) return 2;
    const core::SystemModel model = build_model(verifier, *spec);
    out << viz::dot_system_model(model, verifier.symbols());
    return load_status;
  }
  if (options.dot_usage) {
    const auto* spec = require_class(verifier, *options.dot_usage, err);
    if (spec == nullptr) return 2;
    const fsm::Dfa usage = fsm::minimize(fsm::determinize(
        core::usage_nfa(*spec, verifier.symbols())));
    out << viz::dot_dfa(usage, verifier.symbols(), spec->name + "_usage");
    return load_status;
  }
  if (options.monitor) {
    const auto* spec = require_class(verifier, *options.monitor, err);
    if (spec == nullptr) return 2;
    // The usage-DFA query hides the tiering (memo, then disk cache, then
    // the usage_nfa/determinize/minimize pipeline); a cold answer is the
    // same automaton the Monitor constructor would have built.
    core::Monitor monitor(verifier.symbols(), engine.usage_dfa(*spec));
    std::string op;
    bool any_violation = false;
    while (in >> op) {
      const core::Verdict verdict = monitor.feed(op);
      out << op << ": " << core::to_string(verdict) << "\n";
      any_violation = any_violation ||
                      verdict == core::Verdict::kViolation;
    }
    out << (monitor.completed() ? "complete" : "incomplete") << "\n";
    if (load_failed) return 2;
    return any_violation || !monitor.completed() ? 1 : 0;
  }
  if (options.sample) {
    const auto* spec = require_class(verifier, *options.sample, err);
    if (spec == nullptr) return 2;
    core::TraceSampler sampler(*spec, verifier.symbols(),
                               std::random_device{}());
    for (int i = 0; i < options.sample_count; ++i) {
      const auto trace = sampler.sample(16);
      if (trace.empty()) {
        out << "(empty usage)\n";
        continue;
      }
      for (std::size_t j = 0; j < trace.size(); ++j) {
        out << (j == 0 ? "" : ", ") << trace[j];
      }
      out << "\n";
    }
    return load_status;
  }
  if (options.usage_regex) {
    const auto* spec = require_class(verifier, *options.usage_regex, err);
    if (spec == nullptr) return 2;
    const fsm::Nfa usage = core::usage_nfa(*spec, verifier.symbols());
    const rex::Regex regex = fsm::to_regex(usage);
    out << rex::to_string(regex, verifier.symbols()) << "\n";
    return load_status;
  }
  if (options.smv) {
    const auto* spec = require_class(verifier, *options.smv, err);
    if (spec == nullptr) return 2;
    const SmvArtifact artifact = engine.smv_model(*spec);
    for (const std::string& claim : artifact.skipped_claims) {
      err << "shelleyc: skipping unparsable claim: " << claim << "\n";
    }
    out << artifact.text;
    return load_status;
  }

  // Verification.
  core::Report report;
  if (options.verify_class) {
    report.classes.push_back(engine.verify_class(*options.verify_class));
  } else {
    report = engine.verify_all(options.jobs);
  }

  if (options.json) {
    out << core::report_to_json(report, verifier, options.stats,
                                &workspace.summaries())
        << "\n";
  } else if (!options.quiet) {
    render_text_report(report, verifier, load_diag_end,
                       workspace.summaries(), load_failed, out);
  }
  if (options.stats && !options.json) print_stats(report, out);
  if (load_failed) return 2;
  return report.ok() && !verifier.diagnostics().has_errors() ? 0 : 1;
}

int run_tool(const CliOptions& options, std::istream& in, std::ostream& out,
             std::ostream& err) {
  if (options.version) {
    out << core::kToolchainVersion << "\n";
    return 0;
  }

  // Install the resource guards before any frontend code runs; the deadline
  // (--timeout-ms) is armed here and covers loading and verification.
  support::guard::Limits limits;
  if (options.max_depth > 0) limits.max_recursion_depth = options.max_depth;
  if (options.max_input_bytes > 0) {
    limits.max_input_bytes = options.max_input_bytes;
  }
  limits.max_states = options.max_states;
  limits.timeout_ms = options.timeout_ms;
  support::guard::ScopedLimits guard(limits);

  Workspace workspace;
  workspace.set_lint_options(core::LintOptions{options.dfa_budget});
  workspace.set_check_options(
      core::CheckOptions{options.ltlf_engine, options.lint_claims});

  // Incremental verification: an on-disk behavior cache shared by the
  // verification path (verdicts), --monitor (usage DFAs), and --smv
  // (emitted model bytes).
  std::optional<core::BehaviorCache> cache;
  if (options.cache_dir) {
    try {
      cache.emplace(*options.cache_dir);
    } catch (const std::exception& error) {
      err << "shelleyc: " << error.what() << "\n";
      return 2;
    }
    workspace.set_cache(&*cache);
  }
  if (options.cache_stats && !cache) {
    err << "shelleyc: --cache-stats has no effect without --cache\n";
  }

  // Prints the --cache-stats block on every exit path (the destructor
  // fires at scope end, after all other output of the run -- even when
  // the pipeline throws and the caller turns that into an exit status).
  struct CacheStatsPrinter {
    const core::BehaviorCache* cache = nullptr;
    bool enabled = false;
    std::ostream& sink;
    ~CacheStatsPrinter() {
      if (enabled && cache != nullptr) print_cache_stats(cache->stats(), sink);
    }
  } cache_stats_printer{cache ? &*cache : nullptr,
                        options.cache_stats && cache.has_value(),
                        options.json ? err : out};

  QueryEngine engine(workspace);
  load_inputs(workspace, options.files, err);
  return run_cli(options, engine, in, out, err);
}

}  // namespace shelley::engine
