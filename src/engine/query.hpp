// The demand-driven query layer: every pipeline product -- a class's
// verification report, its minimal usage DFA, its NuSMV model -- is an
// individually memoized query over the Workspace, keyed by the class's
// content-addressed fingerprint.
//
// Answer order for every query: in-memory memo tier, then the on-disk
// BehaviorCache (when one is attached to the workspace), then the real
// pipeline -- and a lower-tier answer is promoted into the tiers above it.
// Replay always goes through the one proven code path
// (Verifier::replay_verdict / fsm::dfa_from_bytes), so a warm answer is
// byte-identical to a cold run.  After Workspace::update_source, the
// caller drops exactly the stale keys (MemoTier::invalidate); everything
// outside the edit's dependency closure keeps its entries and keeps
// hitting.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/memo.hpp"
#include "engine/workspace.hpp"
#include "fsm/dfa.hpp"
#include "fsm/table.hpp"

namespace shelley::engine {

/// Per-query-kind counters; the invalidation tests assert closure
/// precision through these (an update must turn exactly the closure's
/// next lookups into misses).
struct QueryStats {
  std::uint64_t report_hits = 0;    ///< report() answered from the memo
  std::uint64_t report_misses = 0;  ///< fell through to disk or pipeline
  std::uint64_t dfa_hits = 0;
  std::uint64_t dfa_misses = 0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
  std::uint64_t table_hits = 0;    ///< compiled_table() answered from memo
  std::uint64_t table_misses = 0;
};

/// A built (or replayed) NuSMV model plus the claims that had to be
/// skipped because their formulas do not parse.  Models with skipped
/// claims are never memoized in any tier, so the caller's skip notice
/// reprints on every run -- exactly like the batch pipeline.
struct SmvArtifact {
  std::string text;
  std::vector<std::string> skipped_claims;
};

class QueryEngine {
 public:
  /// `shared` optionally points the engine at a caller-owned MemoTier
  /// instead of a private one -- the socket server hands every session the
  /// same tier, which is sound because keys are content-addressed class
  /// fingerprints (symbol-table independent) and MemoTier is internally
  /// synchronized.  With `shared == nullptr` the engine owns its tier, as
  /// the stdio daemon and the batch client always did.
  explicit QueryEngine(Workspace& workspace, MemoTier* shared = nullptr)
      : workspace_(workspace),
        memo_(shared != nullptr ? *shared : owned_memo_) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The verification report of one registered class, with its
  /// diagnostics appended to `sink`.  Memo hit -> replay; miss -> the
  /// workspace verifier's cache-or-verify path, captured into the memo
  /// (unless a resource limit aborted the class -- an aborted run is not
  /// a result).
  [[nodiscard]] core::ClassReport report(const core::ClassSpec& spec,
                                         DiagnosticEngine& sink);

  /// report() by name, diagnostics into the workspace sink; unknown names
  /// produce a diagnostic and an error entry, exactly like
  /// Verifier::verify_class.
  [[nodiscard]] core::ClassReport verify_class(std::string_view name);

  /// Verifies every registered @sys class through report(), on up to
  /// `jobs` workers (1 = serial).  The deterministic-merge protocol of
  /// Verifier::verify_all(jobs) is reproduced exactly: symbols pre-warmed
  /// in serial order, per-class sinks, merge in registration order.
  [[nodiscard]] core::Report verify_all(std::size_t jobs);

  /// The minimal valid-usage DFA of one class (what --monitor walks).
  /// Memoized as name-keyed serialized bytes so replay survives workspace
  /// rebuilds; promoted from / stored to the disk tier when attached.
  [[nodiscard]] fsm::Dfa usage_dfa(const core::ClassSpec& spec);

  /// The emitted NuSMV model of one class (what --smv prints).
  [[nodiscard]] SmvArtifact smv_model(const core::ClassSpec& spec);

  /// The compiled monitoring table of one class (fsm/table.hpp) -- what the
  /// streaming monitor walks.  Memoized as its versioned byte encoding;
  /// promoted from / stored to the disk tier when attached.  The cold path
  /// compiles from usage_dfa(), so a warm DFA entry still short-circuits
  /// most of the pipeline.
  [[nodiscard]] fsm::CompiledDfa compiled_table(const core::ClassSpec& spec);

  /// Drops every memo entry under `key` (all query kinds).  Returns how
  /// many entries were dropped.
  std::size_t invalidate(const support::Digest128& key) {
    return memo_.invalidate(key);
  }

  /// Applies a Workspace::update_source result: every stale key is
  /// dropped from the memo.  Returns the total entries dropped.
  std::size_t apply_update(const UpdateResult& update);

  [[nodiscard]] Workspace& workspace() { return workspace_; }
  [[nodiscard]] MemoTier& memo() { return memo_; }
  [[nodiscard]] QueryStats stats() const;

 private:
  Workspace& workspace_;
  MemoTier owned_memo_;  ///< backing store when no shared tier was given
  MemoTier& memo_;
  mutable std::mutex stats_mutex_;
  QueryStats stats_;
};

}  // namespace shelley::engine
