// The concurrent multi-session transport: a Unix-domain socket listener
// accepting N clients, each with its own Session (workspace + query
// engine), all sharing one process-wide MemoTier, the on-disk
// BehaviorCache, and the support::ThreadPool.
//
// Layering (docs/ARCHITECTURE.md): one reader thread per connection
// splits the byte stream into NDJSON requests and submits them to the
// Scheduler, whose executor threads run Session::handle_line and write
// the response back under the connection's write lock.  The scheduler
// serializes each session's requests (strict FIFO, so the wire protocol
// stays sequential per client) and round-robins across sessions, and its
// admission control answers over-quota requests immediately with a
// structured reject reply ({"ok":false,...,"rejected":true}) instead of
// queueing unboundedly -- the reject is written from the reader thread,
// so it is the one reply that may overtake queued responses.
//
// Sharing MemoTier/BehaviorCache across sessions is sound because both
// are keyed by content-addressed class fingerprints (symbol-table
// independent) and internally synchronized; replies stay byte-identical
// to a dedicated single-session daemon, which the server tests pin.
//
// A client's {"cmd":"shutdown"} ends only its own session; with
// "scope":"server" it also stops the whole server (accepting stops, live
// sessions drain, the socket file is removed).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/driver.hpp"
#include "engine/memo.hpp"
#include "engine/scheduler.hpp"

namespace shelley::core {
class BehaviorCache;
}

namespace shelley::engine {

class Session;

class SocketServer {
 public:
  struct Options {
    std::string socket_path;
    /// Executor threads = max concurrently running requests across all
    /// sessions.  0 = ThreadPool::hardware_default().
    std::size_t max_inflight = 0;
    /// Pending requests one session may queue before admission control
    /// rejects (Scheduler::Options::session_queue_depth).
    std::size_t session_queue_depth = 16;
  };

  /// `defaults` is the per-session configuration every accepted client
  /// starts from (its files are loaded into each new session); `cache`
  /// may be null.  Guard limits must already be armed by the caller.
  SocketServer(const CliOptions& defaults, const Options& options,
               core::BehaviorCache* cache);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on the configured path (removing a stale socket
  /// file first).  On failure writes a diagnostic to `err` and returns
  /// false.
  [[nodiscard]] bool start(std::ostream& err);

  /// Accepts and serves clients until request_stop() (or a
  /// scope:"server" shutdown request).  Returns the process exit status.
  int serve();

  /// Asks serve() to stop; safe from any thread, including executor
  /// tasks.  serve() notices within its poll interval, stops accepting,
  /// drains live sessions, and removes the socket file.
  void request_stop() { stop_requested_.store(true); }

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t scheduler_id = 0;
    std::unique_ptr<Session> session;
    std::mutex write_mutex;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  void reader_loop(Connection& conn);
  void dispatch_line(Connection& conn, std::string line);
  void write_line(Connection& conn, const std::string& line);
  void reap_finished();
  void shutdown_all();

  CliOptions defaults_;
  Options options_;
  core::BehaviorCache* cache_;
  MemoTier shared_memo_;
  std::atomic<std::uint64_t> request_serial_{0};
  Scheduler scheduler_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::vector<std::unique_ptr<Connection>> connections_;  ///< serve() only
  std::mutex err_mutex_;
  std::ostream* err_ = nullptr;
};

/// shelleyd --socket PATH: arms the guards, opens the cache, runs a
/// SocketServer until a scope:"server" shutdown.  Returns the exit
/// status.
[[nodiscard]] int run_server(const CliOptions& options, std::ostream& err);

/// shelleyd --connect PATH: the stdio bridge -- forwards `in` lines to
/// the server and server bytes to `out`, so scripts and tests speak to a
/// socket server exactly like they speak to a stdio daemon.  Ends at
/// stdin EOF or when the server closes the session.
[[nodiscard]] int run_client(const CliOptions& options, std::istream& in,
                             std::ostream& out, std::ostream& err);

}  // namespace shelley::engine
