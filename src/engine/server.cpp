#include "engine/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "engine/session.hpp"
#include "shelley/cache.hpp"
#include "support/guard.hpp"
#include "support/json.hpp"
#include "support/log.hpp"

namespace shelley::engine {

namespace {

namespace log = support::log;

/// How long serve() sleeps in poll() before re-checking the stop flag and
/// reaping finished connections.
constexpr int kPollMs = 50;

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a client that vanished mid-reply must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

std::string reject_reply(Scheduler::Admission admission) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("ok").value(false);
  writer.key("error").value(
      admission == Scheduler::Admission::kRejectedQueueFull
          ? "server busy: session queue full"
          : "session is shutting down");
  writer.key("rejected").value(true);
  writer.end_object();
  return writer.str();
}

}  // namespace

SocketServer::SocketServer(const CliOptions& defaults,
                           const Options& options,
                           core::BehaviorCache* cache)
    : defaults_(defaults),
      options_(options),
      cache_(cache),
      scheduler_(Scheduler::Options{options.max_inflight,
                                    options.session_queue_depth}) {}

SocketServer::~SocketServer() {
  request_stop();
  shutdown_all();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
    listen_fd_ = -1;
  }
}

bool SocketServer::start(std::ostream& err) {
  err_ = &err;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    err << "shelleyd: socket path too long: '" << options_.socket_path
        << "'\n";
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    err << "shelleyd: cannot create socket: " << std::strerror(errno)
        << "\n";
    return false;
  }
  // A stale file from a crashed previous run would make bind fail with
  // EADDRINUSE; remove it.  (A *live* server's socket is removed too --
  // single-owner paths are the caller's contract.)
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    err << "shelleyd: cannot bind '" << options_.socket_path
        << "': " << std::strerror(errno) << "\n";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    err << "shelleyd: cannot listen on '" << options_.socket_path
        << "': " << std::strerror(errno) << "\n";
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
    listen_fd_ = -1;
    return false;
  }
  return true;
}

int SocketServer::serve() {
  if (log::enabled()) {
    log::write(log::Level::kInfo, "server.start", 0,
               {log::Field("socket", options_.socket_path),
                log::Field("executors", static_cast<std::uint64_t>(
                                            scheduler_.executor_count())),
                log::Field("queue_depth", static_cast<std::uint64_t>(
                                              options_.session_queue_depth))});
  }
  while (!stop_requested_.load()) {
    pollfd entry{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, kPollMs);
    reap_finished();
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    if ((entry.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->scheduler_id = scheduler_.add_session();
    SessionShared shared;
    shared.cache = cache_;
    shared.memo = &shared_memo_;
    shared.request_serial = &request_serial_;
    conn->session = std::make_unique<Session>(defaults_, shared);
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    raw->reader = std::thread([this, raw] { reader_loop(*raw); });
    if (log::enabled()) {
      log::write(log::Level::kInfo, "server.accept", 0,
                 {log::Field("session", raw->scheduler_id)});
    }
  }
  shutdown_all();
  if (log::enabled()) {
    const Scheduler::Stats stats = scheduler_.stats();
    log::write(log::Level::kInfo, "server.stop", 0,
               {log::Field("requests", stats.executed),
                log::Field("rejected", stats.rejected)});
  }
  return 0;
}

void SocketServer::reader_loop(Connection& conn) {
  // Command-line files load into every fresh session before its first
  // request, exactly like the stdio daemon; the loader's stderr goes to
  // the server's stderr (wire responses only cover wire-initiated loads).
  {
    std::ostringstream load_err;
    conn.session->load_initial_files(load_err);
    const std::string text = load_err.str();
    if (!text.empty() && err_ != nullptr) {
      const std::lock_guard<std::mutex> lock(err_mutex_);
      *err_ << text;
    }
  }
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // EOF or error: the session is over
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      dispatch_line(conn, std::move(line));
    }
    buffer.erase(0, start);
  }
  // Drain this session's queued requests (their replies still go out),
  // then unregister.  Tasks never touch the connection after this
  // returns, so the serve thread may reap it.
  scheduler_.remove_session(conn.scheduler_id);
  if (log::enabled()) {
    log::write(log::Level::kInfo, "server.disconnect", 0,
               {log::Field("session", conn.scheduler_id),
                log::Field("requests", conn.session->requests()),
                log::Field("errors", conn.session->request_errors())});
  }
  conn.done.store(true);
}

void SocketServer::dispatch_line(Connection& conn, std::string line) {
  Connection* raw = &conn;
  const Scheduler::Admission admission = scheduler_.submit(
      conn.scheduler_id, [this, raw, line = std::move(line)] {
        const Session::Outcome outcome = raw->session->handle_line(line);
        write_line(*raw, outcome.response);
        if (outcome.shutdown) {
          // Unblocks the connection's reader; the client sees EOF after
          // the shutdown reply, exactly like the stdio daemon exiting.
          ::shutdown(raw->fd, SHUT_RDWR);
        }
        if (outcome.shutdown_server) request_stop();
      });
  if (admission != Scheduler::Admission::kAccepted) {
    // Rejections are answered synchronously from the reader thread -- by
    // design the one reply that may overtake queued responses (a client
    // that pipelines past its quota has already abandoned strict
    // request/reply alternation).
    write_line(conn, reject_reply(admission));
  }
}

void SocketServer::write_line(Connection& conn, const std::string& line) {
  const std::lock_guard<std::mutex> lock(conn.write_mutex);
  std::string framed = line;
  framed.push_back('\n');
  send_all(conn.fd, framed.data(), framed.size());
}

void SocketServer::reap_finished() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (!(*it)->done.load()) {
      ++it;
      continue;
    }
    if ((*it)->reader.joinable()) (*it)->reader.join();
    ::close((*it)->fd);
    it = connections_.erase(it);
  }
}

void SocketServer::shutdown_all() {
  for (const std::unique_ptr<Connection>& conn : connections_) {
    ::shutdown(conn->fd, SHUT_RDWR);  // readers unblock and drain
  }
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);
  }
  connections_.clear();
}

int run_server(const CliOptions& options, std::ostream& err) {
  // One set of process-wide resource guards, exactly like run_daemon
  // (they are global, so per-session arming would race).
  support::guard::Limits limits;
  if (options.max_depth > 0) {
    limits.max_recursion_depth = options.max_depth;
  }
  if (options.max_input_bytes > 0) {
    limits.max_input_bytes = options.max_input_bytes;
  }
  limits.max_states = options.max_states;
  limits.timeout_ms = options.timeout_ms;
  support::guard::ScopedLimits guard(limits);

  std::optional<core::BehaviorCache> cache;
  if (options.cache_dir) {
    try {
      cache.emplace(*options.cache_dir);
    } catch (const std::exception& error) {
      err << "shelleyd: " << error.what() << "\n";
      return 2;
    }
  }
  SocketServer::Options server_options;
  server_options.socket_path = *options.socket_path;
  server_options.max_inflight = options.max_inflight;
  server_options.session_queue_depth = options.session_queue_depth;
  SocketServer server(options, server_options,
                      cache ? &*cache : nullptr);
  if (!server.start(err)) return 2;
  return server.serve();
}

int run_client(const CliOptions& options, std::istream& in,
               std::ostream& out, std::ostream& err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string& path = *options.connect_path;
  if (path.size() >= sizeof(addr.sun_path)) {
    err << "shelleyd: socket path too long: '" << path << "'\n";
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err << "shelleyd: cannot create socket: " << std::strerror(errno)
        << "\n";
    return 2;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    err << "shelleyd: cannot connect to '" << path
        << "': " << std::strerror(errno) << "\n";
    ::close(fd);
    return 2;
  }
  // Full-duplex bridge: server bytes stream to `out` as they arrive, so
  // a shell pipeline over --connect behaves exactly like one over the
  // stdio daemon.
  std::thread pump([fd, &out] {
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      out.write(chunk, static_cast<std::streamsize>(got));
      out.flush();
    }
  });
  std::string line;
  while (std::getline(in, line)) {
    line.push_back('\n');
    if (!send_all(fd, line.data(), line.size())) break;
  }
  ::shutdown(fd, SHUT_WR);  // stdin EOF: let the server finish replying
  pump.join();
  ::close(fd);
  return 0;
}

}  // namespace shelley::engine
