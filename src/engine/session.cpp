#include "engine/session.hpp"

#include <exception>
#include <fstream>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/render.hpp"
#include "monitor/stream.hpp"
#include "shelley/cache.hpp"
#include "shelley/fingerprint.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::engine {

namespace {

namespace log = support::log;
namespace metrics = support::metrics;
namespace trace = support::trace;

std::atomic<bool> g_fail_next_run{false};

void write_error(JsonWriter& writer, const std::string& message) {
  writer.begin_object();
  writer.key("ok").value(false);
  writer.key("error").value(message);
  writer.end_object();
}

void write_file_summaries(JsonWriter& writer,
                          const std::vector<core::FileSummary>& summaries,
                          std::size_t first) {
  writer.key("files").begin_array();
  for (std::size_t i = first; i < summaries.size(); ++i) {
    const core::FileSummary& file = summaries[i];
    writer.begin_object();
    writer.key("path").value(file.path);
    writer.key("loaded").value(file.loaded);
    writer.key("parse_errors")
        .value(static_cast<std::uint64_t>(file.parse_errors));
    if (!file.failure.empty()) writer.key("failure").value(file.failure);
    writer.end_object();
  }
  writer.end_array();
}

double hit_rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

/// Every registered histogram: summary stats, estimated quantiles, and the
/// sparse bucket array as [upper_bound, count] pairs.
void write_histograms(JsonWriter& writer) {
  writer.key("histograms").begin_object();
  for (const auto& [name, snap] : metrics::histogram_snapshot()) {
    writer.key(name).begin_object();
    writer.key("count").value(snap.count);
    writer.key("sum").value(snap.sum);
    writer.key("min").value(snap.min);
    writer.key("max").value(snap.max);
    writer.key("p50").value(snap.quantile(0.50));
    writer.key("p90").value(snap.quantile(0.90));
    writer.key("p99").value(snap.quantile(0.99));
    writer.key("buckets").begin_array();
    for (std::size_t i = 0; i < metrics::Histogram::kBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      writer.begin_array();
      writer.value(metrics::Histogram::bucket_upper_bound(i));
      writer.value(snap.buckets[i]);
      writer.end_array();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_object();
}

/// Claims `name` in `used`, disambiguating collisions with a
/// deterministic "_2", "_3", ... suffix.  Distinct registry series whose
/// sanitized names coincide (e.g. "a.b_us" and "a_b.us" both map to
/// "shelley_a_b_us") would otherwise emit duplicate "# TYPE" lines --
/// invalid 0.0.4 exposition.  Deterministic because every caller iterates
/// the registry snapshots in name-sorted order.
std::string unique_metric_name(std::string name,
                               std::set<std::string>& used) {
  if (used.insert(name).second) return name;
  for (int suffix = 2;; ++suffix) {
    std::string candidate = name + "_" + std::to_string(suffix);
    if (used.insert(candidate).second) return candidate;
  }
}

}  // namespace

namespace testing {
void fail_next_run(bool fail) {
  g_fail_next_run.store(fail, std::memory_order_relaxed);
}
}  // namespace testing

/// The handler implementation.  A friend struct rather than member
/// functions so the wire surface stays out of the public header.
struct SessionAccess {
  static void handle_load(Session& session, const JsonValue& request,
                          JsonWriter& writer) {
    const JsonValue& files = request.at("files");
    const std::size_t first = session.workspace_.summaries().size();
    std::vector<std::string> paths;
    for (const JsonValue& file : files.as_array()) {
      paths.push_back(file.as_string());
    }
    std::ostringstream errors;
    load_inputs(session.workspace_, paths, errors);
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("status")
        .value(static_cast<std::int64_t>(
            session.workspace_.load_failed() ? 2 : 0));
    writer.key("errors").value(errors.str());
    write_file_summaries(writer, session.workspace_.summaries(), first);
    writer.end_object();
  }

  static void handle_update(Session& session, const JsonValue& request,
                            JsonWriter& writer) {
    const std::string path = request.at("file").as_string();
    std::optional<std::string> text;
    if (const JsonValue* value = request.find("text")) {
      text = value->as_string();
    }
    const UpdateResult update =
        session.workspace_.update_source(path, std::move(text));
    const std::size_t dropped = session.engine_.apply_update(update);
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("status")
        .value(static_cast<std::int64_t>(
            session.workspace_.load_failed() ? 2 : 0));
    // The full reload stderr: what a cold shelleyc run over the updated
    // sources writes while loading.
    writer.key("errors").value(render_load_errors(
        session.workspace_.summaries(), session.workspace_.file_diag_ranges(),
        session.workspace_.verifier().diagnostics().diagnostics()));
    writer.key("changed").begin_array();
    for (const std::string& name : update.changed) {
      writer.value(name);
    }
    writer.end_array();
    writer.key("invalidated").value(static_cast<std::uint64_t>(dropped));
    writer.end_object();
  }

  static void handle_run(Session& session, const JsonValue& request,
                         bool json, JsonWriter& writer) {
    CliOptions options = session.defaults_;
    options.json = json;
    options.verify_class.reset();
    if (const JsonValue* name = request.find("class")) {
      options.verify_class = name->as_string();
    }
    if (const JsonValue* jobs = request.find("jobs")) {
      options.jobs = static_cast<std::size_t>(jobs->as_number());
    }
    if (const JsonValue* stats = request.find("stats")) {
      options.stats = stats->as_bool();
    }
    std::istringstream no_stdin;
    std::ostringstream out;
    std::ostringstream errors;
    int status = 2;
    try {
      if (g_fail_next_run.exchange(false, std::memory_order_relaxed)) {
        throw std::runtime_error("injected run failure (testing hook)");
      }
      status = run_cli(options, session.engine_, no_stdin, out, errors);
    } catch (const std::exception& error) {
      // A run_cli throw is a failure of the request, not a status-2
      // verification result: rewind so the next request still renders
      // like a cold run, then surface the failure to the request
      // boundary, which counts it in request_errors, emits the
      // request.error log line, and answers {"ok":false,...}.
      session.workspace_.rewind_to_loaded();
      throw std::runtime_error(std::string("shelleyc: internal error: ") +
                               error.what());
    } catch (...) {
      session.workspace_.rewind_to_loaded();
      throw std::runtime_error("shelleyc: internal error");
    }
    // Rewind to the post-load state so the next request's diagnostics
    // render exactly like a cold run -- report_to_json emits every
    // diagnostic in the sink, so accumulation would break byte-identity.
    session.workspace_.rewind_to_loaded();
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("status").value(static_cast<std::int64_t>(status));
    writer.key("output").value(out.str());
    writer.key("errors").value(errors.str());
    writer.end_object();
  }

  /// The streaming-monitor command: compiles the class's monitoring table
  /// through the tiered compiled_table() query, then checks the request's
  /// events -- an inline {"device","op"} array, a raw NDJSON blob
  /// ("ndjson"), or a file ("file" + optional "format" of "ndjson" or
  /// "binary") -- through a sharded StreamChecker.
  static void handle_monitor(Session& session, const JsonValue& request,
                             JsonWriter& writer) {
    const std::string& name = request.at("class").as_string();
    const core::ClassSpec* spec =
        session.workspace_.verifier().find_class(name);
    if (spec == nullptr) {
      write_error(writer, "unknown class '" + name + "'");
      return;
    }
    monitor::StreamChecker::Options options;
    if (const JsonValue* shards = request.find("shards")) {
      options.shards = static_cast<std::size_t>(shards->as_number());
    }
    if (const JsonValue* cap = request.find("max_violations")) {
      options.max_violations = static_cast<std::size_t>(cap->as_number());
    }
    monitor::StreamChecker checker(session.engine_.compiled_table(*spec),
                                   options);
    std::unordered_map<std::string, SourceLoc> locations;
    for (const core::Operation& op : spec->operations) {
      locations.emplace(op.name, op.loc);
    }
    checker.set_source_locations(std::move(locations));

    if (const JsonValue* events = request.find("events")) {
      for (const JsonValue& event : events->as_array()) {
        checker.ingest_event(event.at("device").as_string(),
                             event.at("op").as_string());
      }
      checker.flush();
    } else if (const JsonValue* ndjson = request.find("ndjson")) {
      std::string text = ndjson->as_string();
      if (!text.empty() && text.back() != '\n') text.push_back('\n');
      checker.ingest_ndjson(text);
    } else if (const JsonValue* file = request.find("file")) {
      std::ifstream input(file->as_string(), std::ios::binary);
      if (!input) {
        write_error(writer,
                    "cannot open event file '" + file->as_string() + "'");
        return;
      }
      std::stringstream buffer;
      buffer << input.rdbuf();
      std::string bytes = buffer.str();
      const JsonValue* format = request.find("format");
      if (format != nullptr && format->as_string() == "binary") {
        const std::size_t consumed =
            monitor::ingest_binary_stream(checker, bytes);
        if (consumed != bytes.size()) {
          throw support::BinaryFormatError("event file ends mid-frame");
        }
      } else {
        if (!bytes.empty() && bytes.back() != '\n') bytes.push_back('\n');
        checker.ingest_ndjson(bytes);
      }
    } else {
      write_error(writer, "monitor needs \"events\", \"ndjson\", or \"file\"");
      return;
    }

    const monitor::StreamStats& stats = checker.stats();
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("class").value(name);
    writer.key("events").value(stats.events);
    writer.key("ok_events").value(stats.ok);
    writer.key("violations").value(stats.violations);
    writer.key("malformed").value(stats.malformed);
    writer.key("devices").value(stats.devices);
    writer.key("completed_devices").value(checker.completed_devices());
    writer.key("violated_devices").value(checker.violated_devices());
    writer.key("incomplete_devices").value(checker.incomplete_devices());
    writer.key("violations_dropped").value(stats.violations_dropped);
    writer.key("reports").begin_array();
    for (const monitor::Violation& report : checker.violations()) {
      writer.begin_object();
      writer.key("index").value(report.event_index);
      writer.key("device").value(report.device);
      writer.key("device_index").value(report.device_event_index);
      writer.key("op").value(report.operation);
      if (report.loc.known()) {
        writer.key("line").value(std::uint64_t{report.loc.line});
        writer.key("column").value(std::uint64_t{report.loc.column});
      }
      writer.key("allowed").begin_array();
      for (const std::string& allowed : report.allowed) {
        writer.value(allowed);
      }
      writer.end_array();
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }

  static std::uint64_t uptime_ms(const Session& session) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - session.started_)
            .count());
  }

  static void handle_stats(Session& session, JsonWriter& writer) {
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("uptime_ms").value(uptime_ms(session));
    writer.key("requests").value(session.requests_);
    writer.key("request_errors").value(session.request_errors_);
    const MemoStats memo = session.engine_.memo().stats();
    writer.key("memo").begin_object();
    writer.key("hits").value(memo.hits);
    writer.key("misses").value(memo.misses);
    writer.key("stores").value(memo.stores);
    writer.key("invalidations").value(memo.invalidations);
    writer.key("evictions").value(memo.evictions);
    writer.key("bytes").value(memo.bytes);
    writer.key("hit_rate").value(hit_rate(memo.hits, memo.misses));
    writer.end_object();
    const QueryStats queries = session.engine_.stats();
    writer.key("queries").begin_object();
    writer.key("report_hits").value(queries.report_hits);
    writer.key("report_misses").value(queries.report_misses);
    writer.key("dfa_hits").value(queries.dfa_hits);
    writer.key("dfa_misses").value(queries.dfa_misses);
    writer.key("artifact_hits").value(queries.artifact_hits);
    writer.key("artifact_misses").value(queries.artifact_misses);
    writer.key("table_hits").value(queries.table_hits);
    writer.key("table_misses").value(queries.table_misses);
    writer.end_object();
    const ParseStats parses = session.workspace_.parse_stats();
    writer.key("parse").begin_object();
    writer.key("hits").value(parses.hits);
    writer.key("misses").value(parses.misses);
    writer.key("hit_rate").value(hit_rate(parses.hits, parses.misses));
    writer.end_object();
    if (const core::BehaviorCache* cache = session.workspace_.cache()) {
      const core::CacheStats disk = cache->stats();
      writer.key("cache").begin_object();
      writer.key("hits").value(disk.hits);
      writer.key("misses").value(disk.misses);
      writer.key("invalidations").value(disk.invalidations);
      writer.key("stores").value(disk.stores);
      writer.key("store_failures").value(disk.store_failures);
      writer.key("hit_rate").value(hit_rate(disk.hits, disk.misses));
      writer.end_object();
    }
    // The support/metrics registry: global pipeline counters (e.g. the
    // PR-6 allocation counters) and every latency histogram.  Both are
    // empty unless metrics collection is enabled.
    writer.key("counters").begin_object();
    for (const auto& [name, value] : metrics::counter_snapshot()) {
      writer.key(name).value(value);
    }
    writer.end_object();
    write_histograms(writer);
    writer.end_object();
  }

  /// Prometheus text-exposition rendering of the metrics registry plus
  /// the session gauges.  Dots and other non-identifier characters in
  /// series names become underscores; colliding sanitized names are
  /// disambiguated with deterministic numeric suffixes (see
  /// unique_metric_name); histogram buckets are cumulative with the
  /// mandatory "+Inf" terminal bucket.
  static std::string render_prometheus(const Session& session) {
    std::ostringstream out;
    const auto sanitize = [](std::string_view name) {
      std::string clean = "shelley_";
      for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        clean.push_back(ok ? c : '_');
      }
      return clean;
    };
    // Every emitted family name passes through `used`, so a registry
    // series can never silently shadow a fixed session gauge either.
    std::set<std::string> used;
    const std::string uptime =
        unique_metric_name("shelley_daemon_uptime_ms", used);
    out << "# TYPE " << uptime << " gauge\n";
    out << uptime << " " << uptime_ms(session) << "\n";
    const std::string requests =
        unique_metric_name("shelley_daemon_requests_total", used);
    out << "# TYPE " << requests << " counter\n";
    out << requests << " " << session.requests_ << "\n";
    const std::string errors =
        unique_metric_name("shelley_daemon_request_errors_total", used);
    out << "# TYPE " << errors << " counter\n";
    out << errors << " " << session.request_errors_ << "\n";
    for (const auto& [name, value] : metrics::counter_snapshot()) {
      const std::string metric =
          unique_metric_name(sanitize(name) + "_total", used);
      out << "# TYPE " << metric << " counter\n";
      out << metric << " " << value << "\n";
    }
    for (const auto& [name, snap] : metrics::histogram_snapshot()) {
      const std::string metric = unique_metric_name(sanitize(name), used);
      out << "# TYPE " << metric << " histogram\n";
      std::uint64_t cumulative = 0;
      std::size_t highest = 0;
      for (std::size_t i = 0; i < metrics::Histogram::kBuckets; ++i) {
        if (snap.buckets[i] != 0) highest = i;
      }
      for (std::size_t i = 0; i <= highest && snap.count != 0; ++i) {
        cumulative += snap.buckets[i];
        out << metric << "_bucket{le=\""
            << metrics::Histogram::bucket_upper_bound(i) << "\"} "
            << cumulative << "\n";
      }
      out << metric << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
      out << metric << "_sum " << snap.sum << "\n";
      out << metric << "_count " << snap.count << "\n";
    }
    return out.str();
  }

  static void handle_metrics(Session& session, JsonWriter& writer) {
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("content_type").value("text/plain; version=0.0.4");
    writer.key("body").value(render_prometheus(session));
    writer.end_object();
  }

  /// Trace export over the wire: inline by default, or written to the
  /// path in "out" (the daemon-side equivalent of shelleyc --trace-out).
  static void handle_trace(const JsonValue& request, JsonWriter& writer) {
    if (const JsonValue* path = request.find("out")) {
      const std::string file = path->as_string();
      if (!trace::write_chrome_json(file)) {
        write_error(writer, "cannot write trace to '" + file + "'");
        return;
      }
      writer.begin_object();
      writer.key("ok").value(true);
      writer.key("path").value(file);
      writer.end_object();
      return;
    }
    writer.begin_object();
    writer.key("ok").value(true);
    writer.key("trace").value(trace::to_chrome_json());
    writer.end_object();
  }

  /// Dispatches one request; returns false once shutdown was requested.
  /// `cmd_out` receives the parsed command name (for logging) as soon as
  /// it is known; `server_shutdown` is set when the shutdown carries
  /// {"scope":"server"} (the stdio transport treats both scopes alike).
  static bool handle_request(Session& session, const std::string& line,
                             JsonWriter& writer, std::string& cmd_out,
                             bool& server_shutdown) {
    const JsonValue request = parse_json(line);
    const std::string& cmd = request.at("cmd").as_string();
    cmd_out = cmd;
    if (cmd == "shutdown") {
      if (const JsonValue* scope = request.find("scope")) {
        server_shutdown = scope->as_string() == "server";
      }
      writer.begin_object();
      writer.key("ok").value(true);
      writer.end_object();
      return false;
    }
    if (cmd == "version") {
      writer.begin_object();
      writer.key("ok").value(true);
      writer.key("version").value(core::kToolchainVersion);
      writer.end_object();
    } else if (cmd == "load") {
      handle_load(session, request, writer);
    } else if (cmd == "update") {
      handle_update(session, request, writer);
    } else if (cmd == "verify") {
      handle_run(session, request, /*json=*/false, writer);
    } else if (cmd == "report") {
      handle_run(session, request, /*json=*/true, writer);
    } else if (cmd == "monitor") {
      handle_monitor(session, request, writer);
    } else if (cmd == "stats") {
      handle_stats(session, writer);
    } else if (cmd == "metrics") {
      handle_metrics(session, writer);
    } else if (cmd == "trace") {
      handle_trace(request, writer);
    } else {
      write_error(writer, "unknown command '" + cmd + "'");
    }
    return true;
  }
};

Session::Session(const CliOptions& defaults, const SessionShared& shared)
    : defaults_(defaults),
      request_serial_(shared.request_serial),
      engine_(workspace_, shared.memo) {
  workspace_.set_lint_options(core::LintOptions{defaults_.dfa_budget});
  workspace_.set_check_options(
      core::CheckOptions{defaults_.ltlf_engine, defaults_.lint_claims});
  if (shared.cache != nullptr) workspace_.set_cache(shared.cache);
}

void Session::load_initial_files(std::ostream& err) {
  if (defaults_.files.empty()) return;
  load_inputs(workspace_, defaults_.files, err);
}

Session::Outcome Session::handle_line(const std::string& line) {
  Outcome outcome;
  ++requests_;
  // Log/trace request ids come from the process-wide serial when one is
  // shared (unique across concurrent sessions), else they are the
  // session-local arrival order (the stdio daemon's numbering).
  const std::uint64_t request_id =
      request_serial_ != nullptr
          ? request_serial_->fetch_add(1, std::memory_order_relaxed) + 1
          : requests_;
  // Observability wrapper, all gated so a bare daemon still pays one
  // relaxed load per surface: install the request's trace context (so
  // every span of this request -- including pool workers downstream of
  // submit() -- carries its id), time the request, and log its
  // start/finish/error.
  const bool timed = support::metrics::enabled() || support::log::enabled();
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  if (support::log::enabled()) {
    support::log::write(
        support::log::Level::kInfo, "request.start", request_id,
        {support::log::Field("bytes", std::uint64_t{line.size()})});
  }
  JsonWriter writer;
  std::string cmd;
  bool failed = false;
  std::string failure;
  bool running = true;
  bool server_shutdown = false;
  {
    std::optional<support::trace::ScopedContext> scoped;
    std::optional<support::trace::Span> span;
    if (support::trace::enabled()) {
      scoped.emplace(support::trace::TraceContext{request_id, 0});
      span.emplace("daemon.request");
    }
    try {
      running = SessionAccess::handle_request(*this, line, writer, cmd,
                                              server_shutdown);
    } catch (const std::exception& error) {
      failed = true;
      failure = error.what();
    } catch (...) {
      failed = true;
      failure = "unknown error";
    }
    if (span && span->active()) {
      span->arg("cmd", cmd.empty() ? std::string_view("invalid")
                                   : std::string_view(cmd));
    }
  }
  std::uint64_t elapsed_us = 0;
  if (timed) {
    elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
  }
  if (support::metrics::enabled()) {
    support::metrics::histogram("daemon.request_us").record(elapsed_us);
  }
  if (failed) {
    ++request_errors_;
    if (support::log::enabled()) {
      support::log::write(
          support::log::Level::kError, "request.error", request_id,
          {support::log::Field("cmd", cmd.empty() ? "invalid" : cmd),
           support::log::Field("error", failure),
           support::log::Field("elapsed_us", elapsed_us)});
    }
    JsonWriter fresh;  // discard any half-written response
    write_error(fresh, failure);
    outcome.response = fresh.str();
    return outcome;
  }
  if (support::log::enabled()) {
    support::log::write(support::log::Level::kInfo, "request.finish",
                        request_id,
                        {support::log::Field("cmd", cmd),
                         support::log::Field("elapsed_us", elapsed_us)});
    if (defaults_.slow_ms > 0 && elapsed_us > defaults_.slow_ms * 1000) {
      support::log::write(
          support::log::Level::kWarn, "request.slow", request_id,
          {support::log::Field("cmd", cmd),
           support::log::Field("elapsed_us", elapsed_us),
           support::log::Field("threshold_ms", defaults_.slow_ms)});
    }
  }
  outcome.response = writer.str();
  outcome.shutdown = !running;
  outcome.shutdown_server = server_shutdown;
  return outcome;
}

}  // namespace shelley::engine
