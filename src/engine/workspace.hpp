// The persistent semantic store behind the query engine: sources, their
// memoized parses, the registered class specifications, and the class-level
// dependency structure needed for precise invalidation.
//
// A workspace owns one Verifier at a time.  Loading appends files to the
// live verifier exactly like shelleyc's batch loader; updating a source
// rebuilds the verifier from the (updated) source list -- parsing is
// memoized by content, so an update re-parses only the file that changed,
// and the rebuild resets the symbol table so every downstream answer is
// byte-identical to a cold run over the new sources.  update_source
// reports exactly which classes' content-addressed keys changed (the
// dependency closure of the edit: the class itself plus every composite
// whose key folds it in, cycles included), so the query engine can drop
// precisely those memo entries and nothing else.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "shelley/report_json.hpp"
#include "shelley/verifier.hpp"
#include "support/hash.hpp"

namespace shelley::core {
class BehaviorCache;
}

namespace shelley::engine {

struct ParseStats {
  std::uint64_t hits = 0;    ///< parses answered from the content memo
  std::uint64_t misses = 0;  ///< real upy::parse_module runs
};

/// Outcome of update_source: the classes whose cache keys changed (added,
/// removed, or content/closure edited) and the now-stale keys the memo
/// tier should drop.
struct UpdateResult {
  std::vector<std::string> changed;
  std::vector<support::Digest128> stale_keys;
};

class Workspace {
 public:
  Workspace();
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Lint thresholds for every subsequently (re)built verifier.
  void set_lint_options(const core::LintOptions& options);

  /// Claim-checking options (LTLf engine, claim lints) for every
  /// subsequently (re)built verifier.
  void set_check_options(const core::CheckOptions& options);

  /// Installs the on-disk behavior cache tier (not owned; nullptr
  /// detaches).  Survives rebuilds.
  void set_cache(core::BehaviorCache* cache);
  [[nodiscard]] core::BehaviorCache* cache() const { return cache_; }

  /// Reads `path` from disk and registers it, exactly like shelleyc's
  /// batch loader: recovery collects every parse error as a diagnostic, an
  /// unreadable file records `failure = "cannot open file"`, a resource or
  /// internal failure records its message -- in every case the remaining
  /// files keep working.  Returns this file's load outcome (also appended
  /// to summaries()).
  const core::FileSummary& load_file(const std::string& path);

  /// Registers `text` under `path` without touching the filesystem.
  const core::FileSummary& load_source(const std::string& path,
                                       std::string text);

  /// Replaces (or adds) the source registered under `path` and rebuilds
  /// the workspace over the updated source list.  With nullopt `text` the
  /// file is re-read from disk.  Unchanged files replay their memoized
  /// parses; the returned UpdateResult names exactly the dependency
  /// closure of the edit.
  UpdateResult update_source(const std::string& path,
                             std::optional<std::string> text);

  [[nodiscard]] core::Verifier& verifier() { return *verifier_; }
  [[nodiscard]] const core::Verifier& verifier() const { return *verifier_; }

  /// Per-file load outcomes, in registration order (rebuilt on update).
  [[nodiscard]] const std::vector<core::FileSummary>& summaries() const {
    return summaries_;
  }

  /// For each file of summaries(), the half-open range of indices into
  /// verifier().diagnostics() its load produced -- what lets the daemon
  /// re-render the loader's path-prefixed stderr byte-for-byte.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  file_diag_ranges() const {
    return file_diag_ranges_;
  }

  /// True when any input failed to load or parse cleanly -- the condition
  /// under which shelleyc exits 2 and prints the inputs: summary.
  [[nodiscard]] bool load_failed() const;

  /// Index into verifier().diagnostics() one past the last load-time
  /// diagnostic: everything at or beyond this index was produced by
  /// verification queries.
  [[nodiscard]] std::size_t load_diag_end() const { return load_diag_end_; }

  /// Notes that verification diagnostics emitted beyond load_diag_end()
  /// have been consumed: rewinds the sink to the post-load state so the
  /// next query renders exactly like a cold run (the daemon calls this
  /// between requests).
  void rewind_to_loaded();

  /// The content-addressed key of every registered class, by name.
  [[nodiscard]] std::map<std::string, support::Digest128> class_keys() const;

  /// The classes whose key folds in `name` (transitively): `name` itself
  /// plus every registered composite that reaches it through subsystem
  /// declarations, cycles included.  This is the set an edit to `name`
  /// invalidates.
  [[nodiscard]] std::vector<std::string> dependents_closure(
      const std::string& name) const;

  [[nodiscard]] ParseStats parse_stats() const { return parse_stats_; }

 private:
  struct SourceFile {
    std::string path;
    // nullopt records a file that could not be opened at load time, so a
    // rebuild reproduces its "cannot open file" summary without re-reading
    // the filesystem.
    std::optional<std::string> text;
    support::Digest128 content_key;
  };
  struct ParseResult {
    upy::Module module;
    std::vector<Diagnostic> parse_diagnostics;
  };

  /// Parses (or replays) `file` into the current verifier and returns the
  /// load outcome; mirrors Verifier::add_source_recover byte for byte.
  core::FileSummary apply_file(const SourceFile& file);

  /// The memoized parse of `file`; runs upy::parse_module on a miss.  On a
  /// guard::ResourceError the partial diagnostics plus the limit error are
  /// flushed into the verifier, nothing is memoized, and an empty scratch
  /// result is returned (no classes).  Any other exception flushes the
  /// partial diagnostics and propagates (the caller records a failure).
  const ParseResult& lookup_or_parse(const SourceFile& file);

  /// Tears down and reloads the verifier over sources_ (parse memo makes
  /// unchanged files cheap), refreshing summaries_ and load_diag_end_.
  void rebuild();

  std::unique_ptr<core::Verifier> verifier_;
  core::LintOptions lint_options_;
  core::CheckOptions check_options_;
  core::BehaviorCache* cache_ = nullptr;
  std::vector<SourceFile> sources_;
  std::vector<core::FileSummary> summaries_;
  std::vector<std::pair<std::size_t, std::size_t>> file_diag_ranges_;
  std::size_t load_diag_end_ = 0;
  std::map<support::Digest128, ParseResult> parse_memo_;
  ParseResult scratch_;  // non-memoizable outcomes (resource-limited parse)
  ParseStats parse_stats_;
};

}  // namespace shelley::engine
