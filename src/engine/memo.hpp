// The in-memory memo tier of the query engine: verdicts, behavior DFAs,
// opaque artifacts, and compiled monitoring tables keyed by the same
// content-addressed class keys as the on-disk BehaviorCache
// (shelley/fingerprint.hpp), layered *above* it.
//
// Entries hold exactly the cache encodings (CachedVerdict, the name-keyed
// DFA bytes of fsm/serialize.hpp, raw artifact bytes), never live automata
// or symbol ids: the workspace rebuilds its symbol table on every source
// update, so anything id-bearing would go stale.  Replay goes through
// Verifier::replay_verdict / fsm::dfa_from_bytes -- the same single code
// path the disk tier uses -- which is what keeps warm answers byte-
// identical to cold ones.
//
// The tier is bounded: every entry carries an approximate byte size, and
// once the total passes the configured capacity the least-recently-used
// entries are evicted (loads refresh recency).  Eviction is silent and
// safe -- the disk tier below still holds the entry -- and is counted
// separately from invalidation, which is a correctness event.
//
// Internally synchronized: the daemon may run queries for several classes
// concurrently on the shared thread pool, and the socket server shares one
// tier across every client session (sound because keys are
// content-addressed class fingerprints, independent of any session's
// symbol table -- two sessions with identical sources compute identical
// keys and replay identical bytes).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "shelley/cache.hpp"
#include "support/hash.hpp"

namespace shelley::engine {

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalidations = 0;  ///< entries dropped by invalidate()
  std::uint64_t evictions = 0;      ///< entries dropped by the LRU bound
  std::uint64_t bytes = 0;          ///< approximate bytes currently held
};

class MemoTier {
 public:
  /// Default capacity is generous: the memo is a working-set accelerator,
  /// not primary storage, but single-workspace sessions should never evict.
  static constexpr std::uint64_t kDefaultCapacityBytes = 64ull << 20;

  [[nodiscard]] std::optional<core::CachedVerdict> load_verdict(
      const support::Digest128& key, std::string_view class_name);
  void store_verdict(const support::Digest128& key,
                     core::CachedVerdict verdict);

  /// DFA entries are the name-keyed bytes of fsm/serialize.hpp; the caller
  /// decodes against its current symbol table.
  [[nodiscard]] std::optional<std::string> load_dfa_bytes(
      const support::Digest128& key);
  void store_dfa_bytes(const support::Digest128& key, std::string bytes);

  [[nodiscard]] std::optional<std::string> load_artifact(
      const support::Digest128& key);
  void store_artifact(const support::Digest128& key, std::string artifact);

  /// Compiled monitoring tables, held as their versioned byte encoding
  /// (fsm/table.hpp); the caller decodes against its current symbol table
  /// -- the same single decode path as the disk tier.
  [[nodiscard]] std::optional<std::string> load_table_bytes(
      const support::Digest128& key);
  void store_table_bytes(const support::Digest128& key, std::string bytes);

  /// Drops every entry kind stored under `key`; returns how many were
  /// dropped (counted as invalidations).  The workspace calls this for the
  /// stale keys of exactly the dependency closure of an updated source.
  std::size_t invalidate(const support::Digest128& key);

  void clear();

  /// Shrinks (or grows) the LRU bound; shrinking evicts immediately.
  void set_capacity_bytes(std::uint64_t capacity);
  [[nodiscard]] std::uint64_t capacity_bytes() const;

  [[nodiscard]] MemoStats stats() const;

 private:
  enum class Kind : std::uint8_t { kVerdict, kDfa, kArtifact, kTable };
  using LruList = std::list<std::pair<Kind, support::Digest128>>;

  template <typename T>
  struct Entry {
    T value;
    std::uint64_t bytes = 0;
    LruList::iterator lru;
  };

  // All four require mutex_ held.
  template <typename T>
  void store_entry(std::map<support::Digest128, Entry<T>>& entries, Kind kind,
                   const support::Digest128& key, T value,
                   std::uint64_t bytes);
  template <typename T>
  std::size_t drop_entry(std::map<support::Digest128, Entry<T>>& entries,
                         const support::Digest128& key);
  void touch(LruList::iterator it);
  void evict_to_capacity();

  mutable std::mutex mutex_;
  MemoStats stats_;
  std::uint64_t capacity_bytes_ = kDefaultCapacityBytes;
  LruList lru_;  ///< front = most recently used
  std::map<support::Digest128, Entry<core::CachedVerdict>> verdicts_;
  std::map<support::Digest128, Entry<std::string>> dfas_;
  std::map<support::Digest128, Entry<std::string>> artifacts_;
  std::map<support::Digest128, Entry<std::string>> tables_;
};

}  // namespace shelley::engine
