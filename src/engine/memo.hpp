// The in-memory memo tier of the query engine: verdicts, behavior DFAs,
// and opaque artifacts keyed by the same content-addressed class keys as
// the on-disk BehaviorCache (shelley/fingerprint.hpp), layered *above* it.
//
// Entries hold exactly the cache encodings (CachedVerdict, the name-keyed
// DFA bytes of fsm/serialize.hpp, raw artifact bytes), never live automata
// or symbol ids: the workspace rebuilds its symbol table on every source
// update, so anything id-bearing would go stale.  Replay goes through
// Verifier::replay_verdict / fsm::dfa_from_bytes -- the same single code
// path the disk tier uses -- which is what keeps warm answers byte-
// identical to cold ones.
//
// Internally synchronized: the daemon may run queries for several classes
// concurrently on the shared thread pool.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "shelley/cache.hpp"
#include "support/hash.hpp"

namespace shelley::engine {

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalidations = 0;  ///< entries dropped by invalidate()
};

class MemoTier {
 public:
  [[nodiscard]] std::optional<core::CachedVerdict> load_verdict(
      const support::Digest128& key, std::string_view class_name);
  void store_verdict(const support::Digest128& key,
                     core::CachedVerdict verdict);

  /// DFA entries are the name-keyed bytes of fsm/serialize.hpp; the caller
  /// decodes against its current symbol table.
  [[nodiscard]] std::optional<std::string> load_dfa_bytes(
      const support::Digest128& key);
  void store_dfa_bytes(const support::Digest128& key, std::string bytes);

  [[nodiscard]] std::optional<std::string> load_artifact(
      const support::Digest128& key);
  void store_artifact(const support::Digest128& key, std::string artifact);

  /// Drops every entry kind stored under `key`; returns how many were
  /// dropped (counted as invalidations).  The workspace calls this for the
  /// stale keys of exactly the dependency closure of an updated source.
  std::size_t invalidate(const support::Digest128& key);

  void clear();

  [[nodiscard]] MemoStats stats() const;

 private:
  mutable std::mutex mutex_;
  MemoStats stats_;
  std::map<support::Digest128, core::CachedVerdict> verdicts_;
  std::map<support::Digest128, std::string> dfas_;
  std::map<support::Digest128, std::string> artifacts_;
};

}  // namespace shelley::engine
