#include "engine/memo.hpp"

#include <utility>

namespace shelley::engine {

std::optional<core::CachedVerdict> MemoTier::load_verdict(
    const support::Digest128& key, std::string_view class_name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = verdicts_.find(key);
  // The key embeds the class name (fingerprint.hpp); a mismatch means a
  // collision, so miss rather than replay a foreign verdict -- the same
  // rule the disk tier applies.
  if (it == verdicts_.end() || it->second.class_name != class_name) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void MemoTier::store_verdict(const support::Digest128& key,
                             core::CachedVerdict verdict) {
  const std::lock_guard<std::mutex> lock(mutex_);
  verdicts_.insert_or_assign(key, std::move(verdict));
  ++stats_.stores;
}

std::optional<std::string> MemoTier::load_dfa_bytes(
    const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = dfas_.find(key);
  if (it == dfas_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void MemoTier::store_dfa_bytes(const support::Digest128& key,
                               std::string bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  dfas_.insert_or_assign(key, std::move(bytes));
  ++stats_.stores;
}

std::optional<std::string> MemoTier::load_artifact(
    const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = artifacts_.find(key);
  if (it == artifacts_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void MemoTier::store_artifact(const support::Digest128& key,
                              std::string artifact) {
  const std::lock_guard<std::mutex> lock(mutex_);
  artifacts_.insert_or_assign(key, std::move(artifact));
  ++stats_.stores;
}

std::size_t MemoTier::invalidate(const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t dropped =
      verdicts_.erase(key) + dfas_.erase(key) + artifacts_.erase(key);
  stats_.invalidations += dropped;
  return dropped;
}

void MemoTier::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  verdicts_.clear();
  dfas_.clear();
  artifacts_.clear();
}

MemoStats MemoTier::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace shelley::engine
