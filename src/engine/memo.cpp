#include "engine/memo.hpp"

#include <utility>

namespace shelley::engine {

namespace {

// Per-entry bookkeeping charge on top of the payload: map node, LRU node,
// key copies.  A round number is fine -- the bound is a working-set limit,
// not an allocator ledger.
constexpr std::uint64_t kEntryOverhead = 128;

std::uint64_t verdict_bytes(const core::CachedVerdict& verdict) {
  std::uint64_t total = sizeof(core::CachedVerdict) + verdict.class_name.size();
  for (const core::CachedSubsystemError& error : verdict.subsystem_errors) {
    total += sizeof(error) + error.field.size() + error.class_name.size() +
             error.detail.size();
    for (const std::string& step : error.counterexample) {
      total += sizeof(step) + step.size();
    }
  }
  for (const core::CachedClaimError& error : verdict.claim_errors) {
    total += sizeof(error) + error.formula.size();
    for (const std::string& step : error.counterexample) {
      total += sizeof(step) + step.size();
    }
  }
  for (const core::CachedDiagnostic& diagnostic : verdict.diagnostics) {
    total += sizeof(diagnostic) + diagnostic.message.size();
  }
  return total;
}

}  // namespace

template <typename T>
void MemoTier::store_entry(std::map<support::Digest128, Entry<T>>& entries,
                           Kind kind, const support::Digest128& key, T value,
                           std::uint64_t bytes) {
  bytes += kEntryOverhead;
  const auto it = entries.find(key);
  if (it != entries.end()) {
    stats_.bytes -= it->second.bytes;
    stats_.bytes += bytes;
    it->second.value = std::move(value);
    it->second.bytes = bytes;
    touch(it->second.lru);
  } else {
    lru_.emplace_front(kind, key);
    entries.emplace(key, Entry<T>{std::move(value), bytes, lru_.begin()});
    stats_.bytes += bytes;
  }
  ++stats_.stores;
  evict_to_capacity();
}

template <typename T>
std::size_t MemoTier::drop_entry(std::map<support::Digest128, Entry<T>>& entries,
                                 const support::Digest128& key) {
  const auto it = entries.find(key);
  if (it == entries.end()) return 0;
  stats_.bytes -= it->second.bytes;
  lru_.erase(it->second.lru);
  entries.erase(it);
  return 1;
}

void MemoTier::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void MemoTier::evict_to_capacity() {
  while (stats_.bytes > capacity_bytes_ && !lru_.empty()) {
    const auto& [kind, key] = lru_.back();
    std::size_t dropped = 0;
    switch (kind) {
      case Kind::kVerdict:
        dropped = drop_entry(verdicts_, key);
        break;
      case Kind::kDfa:
        dropped = drop_entry(dfas_, key);
        break;
      case Kind::kArtifact:
        dropped = drop_entry(artifacts_, key);
        break;
      case Kind::kTable:
        dropped = drop_entry(tables_, key);
        break;
    }
    stats_.evictions += dropped;
  }
}

std::optional<core::CachedVerdict> MemoTier::load_verdict(
    const support::Digest128& key, std::string_view class_name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = verdicts_.find(key);
  // The key embeds the class name (fingerprint.hpp); a mismatch means a
  // collision, so miss rather than replay a foreign verdict -- the same
  // rule the disk tier applies.
  if (it == verdicts_.end() || it->second.value.class_name != class_name) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it->second.lru);
  return it->second.value;
}

void MemoTier::store_verdict(const support::Digest128& key,
                             core::CachedVerdict verdict) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t bytes = verdict_bytes(verdict);
  store_entry(verdicts_, Kind::kVerdict, key, std::move(verdict), bytes);
}

std::optional<std::string> MemoTier::load_dfa_bytes(
    const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = dfas_.find(key);
  if (it == dfas_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it->second.lru);
  return it->second.value;
}

void MemoTier::store_dfa_bytes(const support::Digest128& key,
                               std::string bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t size = bytes.size();
  store_entry(dfas_, Kind::kDfa, key, std::move(bytes), size);
}

std::optional<std::string> MemoTier::load_artifact(
    const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = artifacts_.find(key);
  if (it == artifacts_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it->second.lru);
  return it->second.value;
}

void MemoTier::store_artifact(const support::Digest128& key,
                              std::string artifact) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t size = artifact.size();
  store_entry(artifacts_, Kind::kArtifact, key, std::move(artifact), size);
}

std::optional<std::string> MemoTier::load_table_bytes(
    const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(key);
  if (it == tables_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it->second.lru);
  return it->second.value;
}

void MemoTier::store_table_bytes(const support::Digest128& key,
                                 std::string bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t size = bytes.size();
  store_entry(tables_, Kind::kTable, key, std::move(bytes), size);
}

std::size_t MemoTier::invalidate(const support::Digest128& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t dropped = drop_entry(verdicts_, key) +
                              drop_entry(dfas_, key) +
                              drop_entry(artifacts_, key) +
                              drop_entry(tables_, key);
  stats_.invalidations += dropped;
  return dropped;
}

void MemoTier::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  verdicts_.clear();
  dfas_.clear();
  artifacts_.clear();
  tables_.clear();
  lru_.clear();
  stats_.bytes = 0;
}

void MemoTier::set_capacity_bytes(std::uint64_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = capacity;
  evict_to_capacity();
}

std::uint64_t MemoTier::capacity_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_bytes_;
}

MemoStats MemoTier::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace shelley::engine
