// The multi-session request scheduler: admission control and round-robin
// fair queuing for the socket server (docs/ARCHITECTURE.md).
//
// Layering follows the engine/executor split of serving stacks: the
// scheduler owns the queues and the dispatch policy, a small set of
// executor threads owns request execution, and the executors fan
// per-request verification work out to the process-wide
// support::ThreadPool exactly like the stdio daemon does.  Each session
// owns a bounded FIFO of pending requests executed strictly in arrival
// order (the wire protocol is sequential per client), while distinct
// sessions run concurrently on up to `executors` threads.  Fairness is
// round-robin per request: a session that just ran a request goes to the
// back of the ready list, so one chatty client pays with its own latency,
// never with anyone else's.
//
// Admission control is per session: once a session has
// `session_queue_depth` requests pending, further submissions are
// rejected synchronously (the server answers them with a structured
// reject reply instead of queueing unboundedly).  Observability: when
// metrics collection is on, every accepted request records the global
// backlog into the `daemon.queue_depth` histogram at enqueue and its
// enqueue-to-dispatch wait into `daemon.sched_wait_us` at dispatch, and
// the `sched.submitted` / `sched.rejected` counters tally admissions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace shelley::engine {

class Scheduler {
 public:
  struct Options {
    /// Executor threads = the request-level concurrency cap (max in-flight
    /// requests across all sessions).  0 = ThreadPool::hardware_default().
    std::size_t executors = 0;
    /// Pending requests one session may hold before submissions are
    /// rejected (floored at 1).
    std::size_t session_queue_depth = 16;
  };

  enum class Admission : std::uint8_t {
    kAccepted,
    kRejectedQueueFull,
    kRejectedUnknownSession,
  };

  struct Stats {
    std::uint64_t submitted = 0;  ///< accepted into a session queue
    std::uint64_t rejected = 0;   ///< refused by admission control
    std::uint64_t executed = 0;   ///< tasks run to completion
    std::size_t sessions = 0;     ///< currently registered sessions
  };

  using Task = std::function<void()>;

  explicit Scheduler(const Options& options);

  /// Stops the executors.  Pending tasks of still-registered sessions are
  /// dropped; callers that need them run must drain() first.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a new session and returns its id (never reused).
  [[nodiscard]] std::uint64_t add_session();

  /// Blocks until `session` has no pending or running task, then drops it.
  /// Unknown ids are ignored (a double remove is harmless).
  void remove_session(std::uint64_t session);

  /// Enqueues `task` on `session`'s FIFO.  Tasks of one session run one at
  /// a time in submission order; tasks of distinct sessions interleave
  /// round-robin.  Never blocks: a full session queue rejects instead.
  [[nodiscard]] Admission submit(std::uint64_t session, Task task);

  /// Blocks until every queue is empty and every executor is idle.
  void drain();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t executor_count() const {
    return executors_.size();
  }

 private:
  struct SessionQueue {
    std::deque<std::pair<Task, std::chrono::steady_clock::time_point>> tasks;
    bool running = false;
  };

  void executor_loop();
  [[nodiscard]] std::size_t pending_locked() const;

  const std::size_t queue_depth_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::map<std::uint64_t, SessionQueue> sessions_;
  std::deque<std::uint64_t> ready_;  ///< sessions with work, not running
  std::vector<std::thread> executors_;
  std::uint64_t next_session_ = 0;
  std::size_t inflight_ = 0;
  Stats stats_;
  bool stopping_ = false;
};

}  // namespace shelley::engine
