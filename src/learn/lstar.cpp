#include "learn/lstar.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "fsm/ops.hpp"

namespace shelley::learn {

DfaTeacher::DfaTeacher(fsm::Dfa reference) : reference_(std::move(reference)) {}

bool DfaTeacher::membership(const Word& word) {
  ++membership_queries_;
  return reference_.accepts(word);
}

std::optional<Word> DfaTeacher::equivalence(const fsm::Dfa& hypothesis) {
  ++equivalence_queries_;
  if (const auto witness = fsm::inclusion_witness(reference_, hypothesis)) {
    return witness;
  }
  return fsm::inclusion_witness(hypothesis, reference_);
}

BlackBoxTeacher::BlackBoxTeacher(std::function<bool(const Word&)> membership,
                                 std::vector<Symbol> alphabet,
                                 std::size_t test_depth)
    : membership_(std::move(membership)),
      alphabet_(std::move(alphabet)),
      test_depth_(test_depth) {}

bool BlackBoxTeacher::membership(const Word& word) {
  return membership_(word);
}

std::optional<Word> BlackBoxTeacher::equivalence(
    const fsm::Dfa& hypothesis) {
  // Breadth-first conformance testing up to the depth bound.
  std::vector<Word> frontier{{}};
  for (std::size_t depth = 0; depth <= test_depth_; ++depth) {
    std::vector<Word> next;
    for (const Word& word : frontier) {
      if (hypothesis.accepts(word) != membership_(word)) return word;
      if (word.size() == depth && depth < test_depth_) {
        for (Symbol s : alphabet_) {
          Word extended = word;
          extended.push_back(s);
          next.push_back(std::move(extended));
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return std::nullopt;
}

std::vector<Word> characterization_set(const fsm::Dfa& dfa) {
  // Hopcroft-style pair refinement with witness tracking: start with ε
  // (distinguishes accepting from rejecting) and grow until every
  // inequivalent state pair has a distinguishing suffix.
  std::vector<Word> w_set{{}};
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();

  const auto signature = [&](fsm::StateId s) {
    std::vector<bool> out;
    out.reserve(w_set.size());
    for (const Word& suffix : w_set) {
      fsm::StateId state = s;
      for (Symbol sym : suffix) {
        state = dfa.transition(state, *dfa.letter_index(sym));
      }
      out.push_back(dfa.is_accepting(state));
    }
    return out;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (fsm::StateId a = 0; a < n && !changed; ++a) {
      for (fsm::StateId b = a + 1; b < n && !changed; ++b) {
        if (signature(a) != signature(b)) continue;
        // Same signature: look for a letter whose successors differ.
        for (std::size_t letter = 0; letter < k; ++letter) {
          const fsm::StateId sa = dfa.transition(a, letter);
          const fsm::StateId sb = dfa.transition(b, letter);
          const auto sig_a = signature(sa);
          const auto sig_b = signature(sb);
          if (sig_a == sig_b) continue;
          for (std::size_t i = 0; i < w_set.size(); ++i) {
            if (sig_a[i] != sig_b[i]) {
              Word suffix;
              suffix.push_back(dfa.alphabet()[letter]);
              suffix.insert(suffix.end(), w_set[i].begin(), w_set[i].end());
              w_set.push_back(std::move(suffix));
              changed = true;
              break;
            }
          }
          if (changed) break;
        }
      }
    }
  }
  return w_set;
}

std::vector<Word> transition_cover(const fsm::Dfa& dfa) {
  // BFS access words per reachable state, then append every letter.
  std::vector<std::optional<Word>> access(dfa.state_count());
  access[dfa.initial()] = Word{};
  std::vector<fsm::StateId> queue{dfa.initial()};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const fsm::StateId s = queue[head];
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      const fsm::StateId t = dfa.transition(s, letter);
      if (access[t]) continue;
      Word word = *access[s];
      word.push_back(dfa.alphabet()[letter]);
      access[t] = std::move(word);
      queue.push_back(t);
    }
  }
  std::vector<Word> cover;
  for (const auto& word : access) {
    if (!word) continue;
    cover.push_back(*word);
    for (Symbol sym : dfa.alphabet()) {
      Word extended = *word;
      extended.push_back(sym);
      cover.push_back(std::move(extended));
    }
  }
  return cover;
}

WMethodTeacher::WMethodTeacher(std::function<bool(const Word&)> membership,
                               std::vector<Symbol> alphabet,
                               std::size_t extra_states)
    : membership_(std::move(membership)),
      alphabet_(std::move(alphabet)),
      extra_states_(extra_states) {}

bool WMethodTeacher::membership(const Word& word) {
  return membership_(word);
}

std::optional<Word> WMethodTeacher::equivalence(const fsm::Dfa& hypothesis) {
  const std::vector<Word> cover = transition_cover(hypothesis);
  const std::vector<Word> w_set = characterization_set(hypothesis);

  // Middles: Σ^0 ∪ Σ^1 ∪ ... ∪ Σ^extra_states.
  std::vector<Word> middles{{}};
  for (std::size_t head = 0;
       head < middles.size() && middles[head].size() < extra_states_;
       ++head) {
    for (Symbol sym : alphabet_) {
      Word word = middles[head];
      word.push_back(sym);
      middles.push_back(std::move(word));
    }
  }

  for (const Word& prefix : cover) {
    for (const Word& middle : middles) {
      for (const Word& suffix : w_set) {
        Word test = prefix;
        test.insert(test.end(), middle.begin(), middle.end());
        test.insert(test.end(), suffix.begin(), suffix.end());
        ++tests_executed_;
        if (hypothesis.accepts(test) != membership_(test)) return test;
      }
    }
  }
  return std::nullopt;
}

namespace {

/// The L* observation table.
class ObservationTable {
 public:
  ObservationTable(Teacher& teacher, std::vector<Symbol> alphabet,
                   std::size_t max_states)
      : teacher_(teacher),
        alphabet_(std::move(alphabet)),
        max_states_(max_states) {
    prefixes_.push_back({});  // ε
    suffixes_.push_back({});  // ε
  }

  /// Repairs closedness and consistency until stable.
  void stabilize() {
    bool changed = true;
    while (changed) {
      changed = close_once() || make_consistent_once();
    }
  }

  /// Builds the hypothesis DFA from the stabilized table.
  [[nodiscard]] fsm::Dfa hypothesis() {
    // Distinct rows of S are the states.
    std::map<std::vector<bool>, fsm::StateId> row_ids;
    std::vector<Word> representatives;
    for (const Word& s : prefixes_) {
      const auto row_value = row(s);
      if (row_ids.emplace(row_value, static_cast<fsm::StateId>(
                                         representatives.size()))
              .second) {
        representatives.push_back(s);
      }
    }
    if (representatives.size() > max_states_) {
      throw std::runtime_error("learn_dfa: state bound exceeded");
    }
    last_representatives_ = representatives;

    fsm::Dfa dfa(representatives.size(), alphabet_);
    dfa.set_initial(row_ids.at(row({})));
    for (std::size_t i = 0; i < representatives.size(); ++i) {
      const Word& s = representatives[i];
      dfa.set_accepting(static_cast<fsm::StateId>(i), query(s));
      for (std::size_t letter = 0; letter < alphabet_.size(); ++letter) {
        Word extended = s;
        extended.push_back(alphabet_[letter]);
        dfa.set_transition(static_cast<fsm::StateId>(i), letter,
                           row_ids.at(row(extended)));
      }
    }
    return dfa;
  }

  /// Classic counterexample handling: add every prefix of `cex` to S.
  void absorb_counterexample(const Word& cex) {
    for (std::size_t length = 0; length <= cex.size(); ++length) {
      add_prefix(Word(cex.begin(), cex.begin() + static_cast<long>(length)));
    }
  }

  /// Rivest–Schapire: binary-search for the position where the hypothesis
  /// run and the target diverge; the counterexample's tail from there is a
  /// distinguishing suffix and goes to E.  `hyp` must be the hypothesis the
  /// counterexample refutes (built by the last hypothesis() call).
  void absorb_counterexample_rs(const Word& cex, const fsm::Dfa& hyp) {
    // α(i) = M( rep(state after cex[0..i)) · cex[i..) ).
    const auto alpha = [&](std::size_t i) {
      fsm::StateId state = hyp.initial();
      for (std::size_t j = 0; j < i; ++j) {
        const auto letter = hyp.letter_index(cex[j]);
        if (!letter) return false;  // outside the alphabet; caller guards
        state = hyp.transition(state, *letter);
      }
      Word word = last_representatives_.at(state);
      word.insert(word.end(), cex.begin() + static_cast<long>(i),
                  cex.end());
      return query(word);
    };
    // Guard against symbols outside the learning alphabet.
    for (Symbol s : cex) {
      if (!hyp.letter_index(s)) {
        absorb_counterexample(cex);
        return;
      }
    }
    const bool target_verdict = alpha(0);  // rep(initial) = ε
    // Invariant: α(lo) == target, α(hi) != target (α(n) = hypothesis(w)).
    std::size_t lo = 0;
    std::size_t hi = cex.size();
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      (alpha(mid) == target_verdict ? lo : hi) = mid;
    }
    add_suffix(Word(cex.begin() + static_cast<long>(hi), cex.end()));
    // Also make the offending transition's source row explicit in S so the
    // new suffix can split it.
    add_prefix(Word(cex.begin(), cex.begin() + static_cast<long>(hi)));
  }

  [[nodiscard]] std::size_t membership_queries() const {
    return membership_queries_;
  }

 private:
  bool query(const Word& word) {
    const auto it = cache_.find(word);
    if (it != cache_.end()) return it->second;
    const bool result = teacher_.membership(word);
    ++membership_queries_;
    cache_.emplace(word, result);
    return result;
  }

  std::vector<bool> row(const Word& prefix) {
    std::vector<bool> out;
    out.reserve(suffixes_.size());
    for (const Word& e : suffixes_) {
      Word word = prefix;
      word.insert(word.end(), e.begin(), e.end());
      out.push_back(query(word));
    }
    return out;
  }

  void add_prefix(Word s) {
    if (std::find(prefixes_.begin(), prefixes_.end(), s) ==
        prefixes_.end()) {
      prefixes_.push_back(std::move(s));
    }
  }

  void add_suffix(Word e) {
    if (std::find(suffixes_.begin(), suffixes_.end(), e) ==
        suffixes_.end()) {
      suffixes_.push_back(std::move(e));
    }
  }

  /// If some one-letter extension's row is unseen among S-rows, promote it
  /// into S.  Returns true when the table changed.
  bool close_once() {
    std::map<std::vector<bool>, bool> s_rows;
    for (const Word& s : prefixes_) s_rows.emplace(row(s), true);
    for (const Word& s : prefixes_) {
      for (Symbol a : alphabet_) {
        Word extended = s;
        extended.push_back(a);
        if (!s_rows.contains(row(extended))) {
          add_prefix(std::move(extended));
          return true;
        }
      }
    }
    return false;
  }

  /// If two S-rows agree but disagree after some letter, the witnessing
  /// (letter, suffix) becomes a new suffix.  Returns true when changed.
  bool make_consistent_once() {
    for (std::size_t i = 0; i < prefixes_.size(); ++i) {
      for (std::size_t j = i + 1; j < prefixes_.size(); ++j) {
        if (row(prefixes_[i]) != row(prefixes_[j])) continue;
        for (std::size_t letter = 0; letter < alphabet_.size(); ++letter) {
          Word left = prefixes_[i];
          Word right = prefixes_[j];
          left.push_back(alphabet_[letter]);
          right.push_back(alphabet_[letter]);
          const auto left_row = row(left);
          const auto right_row = row(right);
          if (left_row == right_row) continue;
          for (std::size_t k = 0; k < suffixes_.size(); ++k) {
            if (left_row[k] != right_row[k]) {
              Word suffix;
              suffix.push_back(alphabet_[letter]);
              suffix.insert(suffix.end(), suffixes_[k].begin(),
                            suffixes_[k].end());
              add_suffix(std::move(suffix));
              return true;
            }
          }
        }
      }
    }
    return false;
  }

  Teacher& teacher_;
  std::vector<Symbol> alphabet_;
  std::size_t max_states_;
  std::vector<Word> prefixes_;  // S
  std::vector<Word> suffixes_;  // E
  std::vector<Word> last_representatives_;  // per hypothesis state
  std::map<Word, bool> cache_;
  std::size_t membership_queries_ = 0;
};

}  // namespace

LearnResult learn_dfa(Teacher& teacher, std::vector<Symbol> alphabet,
                      std::size_t max_states, CexStrategy strategy) {
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  if (alphabet.empty()) {
    throw std::invalid_argument("learn_dfa: alphabet must be non-empty");
  }

  ObservationTable table(teacher, alphabet, max_states);
  std::size_t equivalence_queries = 0;
  std::size_t rounds = 0;
  while (true) {
    table.stabilize();
    fsm::Dfa hypothesis = table.hypothesis();
    ++rounds;
    ++equivalence_queries;
    const auto counterexample = teacher.equivalence(hypothesis);
    if (!counterexample) {
      return LearnResult{std::move(hypothesis),
                         table.membership_queries(), equivalence_queries,
                         rounds};
    }
    if (strategy == CexStrategy::kRivestSchapire) {
      table.absorb_counterexample_rs(*counterexample, hypothesis);
    } else {
      table.absorb_counterexample(*counterexample);
    }
  }
}

}  // namespace shelley::learn
