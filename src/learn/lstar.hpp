// Active automata learning (Angluin's L*) over event alphabets.
//
// The paper *extracts* the behavioral model statically; tools like LearnLib
// and AALpy *infer* equivalent models by querying a black box.  This module
// provides the query-learning counterpart: given only membership access to
// a usage language (e.g. a live object guarded by core::Monitor), L* learns
// the minimal DFA of that language.  Tests cross-validate: the learned
// model of a specification's monitor is language-equal to the statically
// built usage automaton -- the two routes to "the model" agree.
//
// Implementation: the classic observation table (S, E, T) with
// closedness/consistency repair and counterexample prefix-splitting.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "fsm/dfa.hpp"
#include "support/symbol.hpp"

namespace shelley::learn {

/// The minimally adequate teacher of L*.
class Teacher {
 public:
  virtual ~Teacher() = default;

  /// Is `word` in the target language?
  [[nodiscard]] virtual bool membership(const Word& word) = 0;

  /// Exactly correct? nullopt = yes; otherwise any word on which the
  /// hypothesis and the target disagree.
  [[nodiscard]] virtual std::optional<Word> equivalence(
      const fsm::Dfa& hypothesis) = 0;
};

/// A teacher with a white-box reference DFA: membership by running the
/// word, equivalence by symmetric-difference emptiness (exact).
class DfaTeacher final : public Teacher {
 public:
  explicit DfaTeacher(fsm::Dfa reference);

  [[nodiscard]] bool membership(const Word& word) override;
  [[nodiscard]] std::optional<Word> equivalence(
      const fsm::Dfa& hypothesis) override;

  [[nodiscard]] std::size_t membership_queries() const {
    return membership_queries_;
  }
  [[nodiscard]] std::size_t equivalence_queries() const {
    return equivalence_queries_;
  }

 private:
  fsm::Dfa reference_;
  std::size_t membership_queries_ = 0;
  std::size_t equivalence_queries_ = 0;
};

/// A black-box teacher over an arbitrary membership predicate; equivalence
/// is approximated by testing every word up to `test_depth` (exact whenever
/// the target and hypothesis differ on some word that short).
class BlackBoxTeacher final : public Teacher {
 public:
  BlackBoxTeacher(std::function<bool(const Word&)> membership,
                  std::vector<Symbol> alphabet, std::size_t test_depth);

  [[nodiscard]] bool membership(const Word& word) override;
  [[nodiscard]] std::optional<Word> equivalence(
      const fsm::Dfa& hypothesis) override;

 private:
  std::function<bool(const Word&)> membership_;
  std::vector<Symbol> alphabet_;
  std::size_t test_depth_;
};

/// Chow's W-method conformance tester: the equivalence test suite is
/// P · Σ^{≤k+1} · W, where P is a transition cover of the hypothesis, W a
/// characterization set (pairwise-distinguishing suffixes), and k the
/// assumed bound on *extra* states in the target beyond the hypothesis.
/// Complete whenever the target really has at most |hypothesis| + k states
/// -- the standard black-box guarantee (and far cheaper than exhaustive
/// breadth-first testing at equal guarantees).
class WMethodTeacher final : public Teacher {
 public:
  WMethodTeacher(std::function<bool(const Word&)> membership,
                 std::vector<Symbol> alphabet, std::size_t extra_states);

  [[nodiscard]] bool membership(const Word& word) override;
  [[nodiscard]] std::optional<Word> equivalence(
      const fsm::Dfa& hypothesis) override;

  [[nodiscard]] std::size_t tests_executed() const {
    return tests_executed_;
  }

 private:
  std::function<bool(const Word&)> membership_;
  std::vector<Symbol> alphabet_;
  std::size_t extra_states_;
  std::size_t tests_executed_ = 0;
};

/// Computes a characterization set for `dfa`: a set of suffixes such that
/// every pair of inequivalent states is distinguished by at least one.
/// (Exposed for tests; used by WMethodTeacher.)
[[nodiscard]] std::vector<Word> characterization_set(const fsm::Dfa& dfa);

/// Computes a transition cover of `dfa`: for every reachable state an
/// access word, plus each of those words extended by every letter.
[[nodiscard]] std::vector<Word> transition_cover(const fsm::Dfa& dfa);

/// How counterexamples are folded back into the observation table.
enum class CexStrategy {
  /// Angluin's original: add every prefix of the counterexample to S.
  /// Simple; can inflate the table with redundant rows.
  kAllPrefixes,
  /// Rivest–Schapire: binary-search the counterexample for the single
  /// distinguishing suffix and add it to E.  Fewer, better-targeted
  /// membership queries (the ablation bench quantifies the difference).
  kRivestSchapire,
};

struct LearnResult {
  fsm::Dfa dfa;
  std::size_t membership_queries = 0;
  std::size_t equivalence_queries = 0;
  std::size_t rounds = 0;  // hypotheses built
};

/// Runs L* until the teacher confirms equivalence.  `alphabet` must cover
/// the target language's symbols.  Throws std::runtime_error if the table
/// exceeds `max_states` distinct rows (defensive bound).
[[nodiscard]] LearnResult learn_dfa(
    Teacher& teacher, std::vector<Symbol> alphabet,
    std::size_t max_states = 4096,
    CexStrategy strategy = CexStrategy::kAllPrefixes);

}  // namespace shelley::learn
