// Interned string symbols.
//
// Event labels (method names such as "a.open") appear millions of times in
// automata transitions and regex nodes.  Interning them as dense 32-bit ids
// makes comparisons O(1) and lets automata index transition tables by id.
//
// A SymbolTable is an explicit object (no global state); every component that
// needs to print a symbol takes a `const SymbolTable&`.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace shelley {

/// A lightweight handle to an interned string.  Only meaningful together
/// with the SymbolTable that produced it.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint32_t id) : id_(id) {}

  [[nodiscard]] constexpr std::uint32_t id() const { return id_; }
  [[nodiscard]] constexpr bool valid() const { return id_ != kInvalid; }

  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

 private:
  std::uint32_t id_ = kInvalid;
};

/// Bidirectional string <-> Symbol map.  Each verification pipeline owns
/// exactly one table.  Internally synchronized (a shared mutex around the
/// index) so the parallel verifier's workers may share it; note that symbol
/// *ids* still depend on interning order, which is why the parallel path
/// pre-interns deterministically (see Verifier::verify_all).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable& other);
  SymbolTable& operator=(const SymbolTable& other);

  /// Returns the symbol for `text`, interning it on first use.
  Symbol intern(std::string_view text);

  /// Returns the symbol for `text` if already interned.
  [[nodiscard]] std::optional<Symbol> lookup(std::string_view text) const;

  /// Returns the text of an interned symbol.  Precondition: `sym` came from
  /// this table.  The reference stays valid for the table's lifetime.
  [[nodiscard]] const std::string& name(Symbol sym) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  // Deque keeps element addresses stable across growth, so index_ may key
  // string_views into the stored strings.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

/// A finite word over interned symbols (a trace of events).
using Word = std::vector<Symbol>;

/// Renders a word as `a, b, c` using the given table.
[[nodiscard]] std::string to_string(const Word& word, const SymbolTable& table,
                                    std::string_view separator = ", ");

}  // namespace shelley

template <>
struct std::hash<shelley::Symbol> {
  std::size_t operator()(shelley::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
