#include "support/guard.hpp"

#include <atomic>
#include <chrono>

namespace shelley::support::guard {
namespace {

// The installed limits, readable from any verifier worker thread.  Plain
// relaxed atomics: limits are set before work starts and only torn down
// after it ends, so readers never observe a half-written configuration in
// any meaningful run.
std::atomic<std::size_t> g_max_depth{Limits{}.max_recursion_depth};
std::atomic<std::size_t> g_max_input{Limits{}.max_input_bytes};
std::atomic<std::size_t> g_max_states{Limits{}.max_states};
std::atomic<std::uint64_t> g_timeout_ms{Limits{}.timeout_ms};

// Deadline as steady_clock ticks since epoch; 0 = disarmed.
std::atomic<std::int64_t> g_deadline{0};

thread_local std::size_t t_depth = 0;

std::int64_t now_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

std::string_view to_string(Resource resource) {
  switch (resource) {
    case Resource::kRecursionDepth: return "recursion depth";
    case Resource::kInputSize: return "input size";
    case Resource::kStateBudget: return "state budget";
    case Resource::kTimeout: return "timeout";
  }
  return "resource";
}

Limits limits() {
  Limits out;
  out.max_recursion_depth = g_max_depth.load(std::memory_order_relaxed);
  out.max_input_bytes = g_max_input.load(std::memory_order_relaxed);
  out.max_states = g_max_states.load(std::memory_order_relaxed);
  out.timeout_ms = g_timeout_ms.load(std::memory_order_relaxed);
  return out;
}

ScopedLimits::ScopedLimits(const Limits& limits)
    : previous_(guard::limits()),
      previous_deadline_(g_deadline.load(std::memory_order_relaxed)) {
  const Limits defaults;
  g_max_depth.store(limits.max_recursion_depth != 0
                        ? limits.max_recursion_depth
                        : defaults.max_recursion_depth,
                    std::memory_order_relaxed);
  g_max_input.store(limits.max_input_bytes != 0 ? limits.max_input_bytes
                                                : defaults.max_input_bytes,
                    std::memory_order_relaxed);
  g_max_states.store(limits.max_states, std::memory_order_relaxed);
  g_timeout_ms.store(limits.timeout_ms, std::memory_order_relaxed);
  g_deadline.store(
      limits.timeout_ms != 0
          ? now_ticks() + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::milliseconds(limits.timeout_ms))
                              .count()
          : 0,
      std::memory_order_relaxed);
}

ScopedLimits::~ScopedLimits() {
  g_max_depth.store(previous_.max_recursion_depth,
                    std::memory_order_relaxed);
  g_max_input.store(previous_.max_input_bytes, std::memory_order_relaxed);
  g_max_states.store(previous_.max_states, std::memory_order_relaxed);
  g_timeout_ms.store(previous_.timeout_ms, std::memory_order_relaxed);
  g_deadline.store(previous_deadline_, std::memory_order_relaxed);
}

DepthGuard::DepthGuard(SourceLoc loc) {
  const std::size_t cap = g_max_depth.load(std::memory_order_relaxed);
  if (t_depth >= cap) {
    throw ResourceError(Resource::kRecursionDepth, loc,
                        "nesting exceeds the recursion limit (" +
                            std::to_string(cap) + " levels)");
  }
  ++t_depth;
}

DepthGuard::~DepthGuard() { --t_depth; }

void check_input_size(std::size_t bytes, SourceLoc loc) {
  const std::size_t cap = g_max_input.load(std::memory_order_relaxed);
  if (bytes > cap) {
    throw ResourceError(Resource::kInputSize, loc,
                        "input of " + std::to_string(bytes) +
                            " bytes exceeds the limit of " +
                            std::to_string(cap) + " bytes");
  }
}

void check_states(std::size_t states, std::string_view what) {
  const std::size_t cap = g_max_states.load(std::memory_order_relaxed);
  if (cap != 0 && states > cap) {
    throw ResourceError(Resource::kStateBudget, {},
                        std::string(what) + " exceeds the state budget of " +
                            std::to_string(cap) + " states");
  }
}

void check_deadline(std::string_view phase) {
  const std::int64_t deadline = g_deadline.load(std::memory_order_relaxed);
  if (deadline != 0 && now_ticks() > deadline) {
    throw ResourceError(
        Resource::kTimeout, {},
        "deadline of " +
            std::to_string(g_timeout_ms.load(std::memory_order_relaxed)) +
            " ms exceeded during " + std::string(phase));
  }
}

}  // namespace shelley::support::guard
