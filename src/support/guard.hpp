// Hard resource limits for the frontends and the automata pipeline.
//
// Every recursive-descent parser, IR visitor, and automaton construction in
// the tree consults this module so that adversarial input (100k nested
// parentheses, multi-megabyte files, state-space blowups, pathological
// claim formulas) fails with a structured ResourceError -- a ParseError
// subclass carrying the exhausted resource -- instead of a stack overflow,
// an OOM kill, or an unbounded run.
//
// Limits are process-global (set once at startup, read by every worker
// thread of the parallel verifier); the recursion-depth counter is
// thread-local because it measures the current thread's stack.  The
// defaults are generous enough that no legitimate specification ever hits
// them; `ScopedLimits` installs stricter ones (CLI flags, fuzzing) and
// restores the previous limits on scope exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace shelley::support::guard {

/// The tunable budgets.  A zero disables the corresponding check except for
/// `max_recursion_depth` and `max_input_bytes`, whose zeros mean "use the
/// built-in default" -- an unbounded recursion cap would defeat the point.
struct Limits {
  /// Nested parser/visitor frames per thread (default 256).
  std::size_t max_recursion_depth = 256;
  /// Size of one source buffer handed to a frontend (default 8 MiB).
  std::size_t max_input_bytes = 8u << 20;
  /// States of any single constructed automaton; 0 = unlimited.
  std::size_t max_states = 0;
  /// Wall-clock budget for the whole run, armed by ScopedLimits; 0 = none.
  std::uint64_t timeout_ms = 0;
};

enum class Resource : std::uint8_t {
  kRecursionDepth,
  kInputSize,
  kStateBudget,
  kTimeout,
};

[[nodiscard]] std::string_view to_string(Resource resource);

/// Thrown when a budget is exhausted.  Derives from ParseError so every
/// existing recovery boundary (shelleyc's file loop, the fuzz harness, the
/// robustness tests) already catches it; `resource()` identifies which
/// limit fired for structured reporting.
class ResourceError : public ParseError {
 public:
  ResourceError(Resource resource, SourceLoc loc, const std::string& message)
      : ParseError(loc, message), resource_(resource) {}

  [[nodiscard]] Resource resource() const { return resource_; }

 private:
  Resource resource_;
};

/// The currently installed limits.
[[nodiscard]] Limits limits();

/// Installs `limits` process-wide and arms the deadline from `timeout_ms`
/// (measured from construction).  Restores the previous limits and deadline
/// on destruction.  Not reentrancy-safe across threads -- install once near
/// main(), or serially in tests.
class ScopedLimits {
 public:
  explicit ScopedLimits(const Limits& limits);
  ~ScopedLimits();

  ScopedLimits(const ScopedLimits&) = delete;
  ScopedLimits& operator=(const ScopedLimits&) = delete;

 private:
  Limits previous_;
  std::int64_t previous_deadline_;
};

/// One recursion frame of a parser or visitor.  Construction throws
/// ResourceError(kRecursionDepth) at `loc` when the per-thread nesting
/// exceeds the cap; destruction pops the frame.
class DepthGuard {
 public:
  explicit DepthGuard(SourceLoc loc = {});
  ~DepthGuard();

  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;
};

/// Rejects a source buffer larger than the input budget.
void check_input_size(std::size_t bytes, SourceLoc loc = {});

/// Rejects an automaton that grew beyond the state budget (no-op when the
/// budget is 0).  `what` names the construction for the diagnostic.
void check_states(std::size_t states, std::string_view what);

/// Throws ResourceError(kTimeout) once the armed deadline has passed.
/// Called at phase boundaries (per file, per class, per automaton pass) and
/// periodically inside state-space loops; `phase` names the interrupted
/// work.  No-op while no deadline is armed.
void check_deadline(std::string_view phase);

}  // namespace shelley::support::guard
