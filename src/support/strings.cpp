#include "support/strings.hpp"

#include <cctype>

namespace shelley {

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string escape_quotes(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  bool at_line_start = true;
  for (char c : text) {
    if (at_line_start && c != '\n') out += pad;
    out += c;
    at_line_start = (c == '\n');
  }
  return out;
}

}  // namespace shelley
