#include "support/diagnostics.hpp"

#include "support/trace.hpp"

namespace shelley {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity severity, SourceLoc loc,
                              std::string message) {
  if (severity == Severity::kError) ++error_count_;
  if (support::trace::enabled()) {
    // Each diagnostic becomes a timestamped instant event, so its source
    // location lines up with the pipeline span that produced it.
    support::trace::instant(
        "diagnostic", {support::trace::Arg("severity", to_string(severity)),
                       support::trace::Arg("loc", to_string(loc)),
                       support::trace::Arg("message", message)});
  }
  diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
}

void DiagnosticEngine::append(const DiagnosticEngine& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
  error_count_ += other.error_count_;
}

std::string DiagnosticEngine::render() const {
  std::string out;
  for (const auto& diag : diagnostics_) {
    out += to_string(diag.severity);
    if (diag.loc.known()) {
      out += ' ';
      out += to_string(diag.loc);
    }
    out += ": ";
    out += diag.message;
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::truncate(std::size_t size) {
  if (size >= diagnostics_.size()) return;
  for (std::size_t i = size; i < diagnostics_.size(); ++i) {
    if (diagnostics_[i].severity == Severity::kError) --error_count_;
  }
  diagnostics_.resize(size);
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace shelley
