// Content-addressed hashing for the incremental-verification cache: a
// streaming 128-bit FNV-1a hasher over bytes, with length-prefixed helpers
// so that concatenated fields never collide by reassociation ("ab"+"c" vs
// "a"+"bc" hash differently).
//
// 128 bits keeps accidental collisions out of reach for any realistic
// corpus (birthday bound ~2^64 classes); the hash is NOT cryptographic and
// the cache must never be shared with untrusted writers (docs/CACHING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace shelley::support {

/// A 128-bit digest.  Ordered and hashable so it can key maps.
struct Digest128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Digest128& a, const Digest128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Digest128& a, const Digest128& b) {
    return !(a == b);
  }
  friend bool operator<(const Digest128& a, const Digest128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// 32 lowercase hex characters, most-significant first (stable across
/// platforms; used as the cache file name).
[[nodiscard]] std::string to_hex(const Digest128& digest);

/// Streaming FNV-1a over 2^128: state = (state ^ byte) * kPrime mod 2^128.
class Hasher {
 public:
  Hasher() = default;

  void update(const void* data, std::size_t size);
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }

  /// Length-prefixed string: hashes the size, then the bytes.
  void update_sized(std::string_view bytes);

  /// Fixed-width little-endian integer updates (canonical across hosts).
  void update_u8(std::uint8_t value);
  void update_u32(std::uint32_t value);
  void update_u64(std::uint64_t value);

  [[nodiscard]] Digest128 digest() const;

 private:
  // GCC/Clang 128-bit integer; __extension__ keeps -Wpedantic quiet.
  __extension__ typedef unsigned __int128 State;

  // FNV-1a 128-bit offset basis, split into 64-bit halves.
  State state_ = (static_cast<State>(0x6c62272e07bb0142ULL) << 64) |
                 0x62b821756295c58dULL;
};

/// One-shot convenience.
[[nodiscard]] Digest128 hash_bytes(std::string_view bytes);

}  // namespace shelley::support
