#include "support/hash.hpp"

namespace shelley::support {

namespace {

__extension__ typedef unsigned __int128 u128;

// FNV 128-bit prime: 2^88 + 2^8 + 0x3b.
constexpr u128 kPrime = (static_cast<u128>(1) << 88) | (1u << 8) | 0x3b;

}  // namespace

void Hasher::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  u128 state = state_;
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kPrime;
  }
  state_ = state;
}

void Hasher::update_sized(std::string_view bytes) {
  update_u64(bytes.size());
  update(bytes);
}

void Hasher::update_u8(std::uint8_t value) { update(&value, 1); }

void Hasher::update_u32(std::uint32_t value) {
  unsigned char buffer[4];
  for (int i = 0; i < 4; ++i) {
    buffer[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  update(buffer, sizeof(buffer));
}

void Hasher::update_u64(std::uint64_t value) {
  unsigned char buffer[8];
  for (int i = 0; i < 8; ++i) {
    buffer[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  update(buffer, sizeof(buffer));
}

Digest128 Hasher::digest() const {
  return Digest128{static_cast<std::uint64_t>(state_),
                   static_cast<std::uint64_t>(state_ >> 64)};
}

std::string to_hex(const Digest128& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t half = i < 8 ? digest.hi : digest.lo;
    const int shift = 8 * (7 - (i % 8));
    const auto byte = static_cast<unsigned char>(half >> shift);
    out[2 * static_cast<std::size_t>(i)] = kHex[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = kHex[byte & 0xf];
  }
  return out;
}

Digest128 hash_bytes(std::string_view bytes) {
  Hasher hasher;
  hasher.update(bytes);
  return hasher.digest();
}

}  // namespace shelley::support
