// A small fixed-size worker pool for coarse-grained parallelism (one task ≈
// one class verification).  Tasks are plain std::function<void()>; error
// handling, result collection, and ordering are the caller's business --
// the verifier keeps determinism by indexing results and merging in a
// stable order, not by relying on scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shelley::support {

class ThreadPool {
 public:
  /// Starts `workers` threads (at least one).
  explicit ThreadPool(std::size_t workers);

  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Must not be called after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until the queue is drained and every worker is idle.
  void wait();

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Tasks currently queued (excluding running ones); a point-in-time
  /// reading for observability, stale the moment it returns.
  [[nodiscard]] std::size_t queue_depth() const;

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0 when unknown).
  [[nodiscard]] static std::size_t hardware_default();

  /// The process-wide pool (hardware_default() workers), started on first
  /// use and joined at exit.  parallel_for and the query engine submit here
  /// instead of spawning fresh threads per call; concurrent submitters are
  /// fine (each parallel_for tracks the completion of its own tasks).
  [[nodiscard]] static ThreadPool& shared();

  /// True on a thread currently executing a task of any ThreadPool; used by
  /// parallel_for to degrade to the serial path instead of deadlocking on
  /// nested submission.
  [[nodiscard]] static bool on_worker_thread();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(count - 1) on up to `jobs` workers of the shared pool.
/// Indices are handed out atomically in ascending order; `jobs <= 1` (or
/// `count <= 1`) runs everything on the calling thread and never touches
/// the pool.  Effective concurrency is additionally capped by the shared
/// pool's worker count.  `fn` must be safe to call concurrently for
/// distinct indices.  Calls from inside a pool task run serially (the
/// nested submission would otherwise wait on workers that may all be
/// blocked in the same position).
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace shelley::support
