// A minimal binary encoder/decoder pair for the on-disk cache format and
// the DFA serializer.  Fixed-width little-endian integers and
// length-prefixed strings; every read is bounds-checked and malformed input
// fails with BinaryFormatError (never UB), which is what lets the cache
// treat arbitrary file corruption as a structured miss.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace shelley::support {

/// Thrown by BinaryReader on truncated or malformed input.
class BinaryFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends values to a byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  /// Length-prefixed (u64) byte string.
  void str(std::string_view bytes);
  /// Raw bytes, no length prefix (caller knows the size).
  void raw(std::string_view bytes);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Consumes values from a byte buffer; throws BinaryFormatError on any
/// overrun or impossible size.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::string_view raw(std::size_t size);

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

  /// Throws unless the whole buffer was consumed (trailing garbage is
  /// corruption too).
  void expect_end() const;

 private:
  void require(std::size_t size) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace shelley::support
