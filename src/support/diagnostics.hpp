// Diagnostic collection and rendering.
//
// Frontend errors (lex/parse) abort via ParseError; semantic checks collect
// Diagnostics so a whole class can be analyzed in one pass and all problems
// reported together, mirroring how Shelley prints its reports.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace shelley {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] std::string_view to_string(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

/// Accumulates diagnostics during analysis.
class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::kNote, loc, std::move(message));
  }

  /// Appends every diagnostic of `other`, preserving order.  Used to merge
  /// per-worker sinks deterministically after parallel verification.
  void append(const DiagnosticEngine& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }

  /// Renders every diagnostic, one per line: `error 3:4: message`.
  [[nodiscard]] std::string render() const;

  /// Drops every diagnostic from index `size` on (error_count is
  /// recomputed).  The query engine rewinds to the post-load state between
  /// daemon requests so every verify renders exactly like a cold run.
  void truncate(std::size_t size);

  void clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

/// Thrown by the lexer/parser on malformed input.
class ParseError : public std::runtime_error {
 public:
  ParseError(SourceLoc loc, const std::string& message)
      : std::runtime_error(to_string(loc) + ": " + message),
        loc_(loc),
        message_(message) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }
  /// The bare message, without the `line:column: ` prefix of what() --
  /// recovery boundaries turn it into a Diagnostic at loc().
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  SourceLoc loc_;
  std::string message_;
};

}  // namespace shelley
