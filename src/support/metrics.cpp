#include "support/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace shelley::support::metrics {
namespace {

bool env_enabled() {
  const char* value = std::getenv("SHELLEY_TRACE");
  return value != nullptr && *value != '\0' &&
         std::string_view(value) != "0";
}

std::atomic<bool> g_enabled{env_enabled()};

// Heterogeneous-lookup map: counter()/distribution() take string_views and
// only allocate a key on first registration.
template <typename T>
struct SeriesRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<T>, std::less<>> series;

  T& get(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = series.find(name);
    if (it != series.end()) return *it->second;
    return *series.emplace(std::string(name), std::make_unique<T>())
                .first->second;
  }
};

SeriesRegistry<Counter>& counters() {
  static SeriesRegistry<Counter> instance;
  return instance;
}

SeriesRegistry<Distribution>& distributions() {
  static SeriesRegistry<Distribution> instance;
  return instance;
}

SeriesRegistry<Histogram>& histograms() {
  static SeriesRegistry<Histogram> instance;
  return instance;
}

thread_local AutomataStats* t_sink = nullptr;

void fetch_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (current < value &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void fetch_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (current > value &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

// The common fast path of every record_* helper: attribution off and
// registry off means return after two loads and a branch.
bool idle() { return t_sink == nullptr && !enabled(); }

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Distribution::record(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  fetch_min(min_, value);
  fetch_max(max_, value);
}

void Distribution::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Distribution::Snapshot Distribution::snapshot() const {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min;
  return out;
}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  return std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) {
  if (index == 0) return 0;
  if (index >= kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << index) - 1;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  fetch_min(min_, value);
  fetch_max(max_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min;
  return out;
}

std::uint64_t Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic, 1-based: ceil(q * count), at least 1.
  const double scaled = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::min(bucket_upper_bound(i), max);
    }
  }
  return max;
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  sum += other.sum;
  if (other.count != 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
}

void Histogram::merge(const Snapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  fetch_min(min_, other.min);
  fetch_max(max_, other.max);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) { return counters().get(name); }

Distribution& distribution(std::string_view name) {
  return distributions().get(name);
}

Histogram& histogram(std::string_view name) {
  return histograms().get(name);
}

std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  SeriesRegistry<Counter>& reg = counters();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  out.reserve(reg.series.size());
  for (const auto& [name, series] : reg.series) {
    out.emplace_back(name, series->value());
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, Distribution::Snapshot>>
distribution_snapshot() {
  std::vector<std::pair<std::string, Distribution::Snapshot>> out;
  SeriesRegistry<Distribution>& reg = distributions();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  out.reserve(reg.series.size());
  for (const auto& [name, series] : reg.series) {
    out.emplace_back(name, series->snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
histogram_snapshot() {
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  SeriesRegistry<Histogram>& reg = histograms();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  out.reserve(reg.series.size());
  for (const auto& [name, series] : reg.series) {
    out.emplace_back(name, series->snapshot());
  }
  return out;
}

void reset() {
  {
    SeriesRegistry<Counter>& reg = counters();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, series] : reg.series) series->reset();
  }
  {
    SeriesRegistry<Distribution>& reg = distributions();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, series] : reg.series) series->reset();
  }
  {
    SeriesRegistry<Histogram>& reg = histograms();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, series] : reg.series) series->reset();
  }
}

void AutomataStats::merge(const AutomataStats& other) {
  nfa_states = std::max(nfa_states, other.nfa_states);
  dfa_states_before = std::max(dfa_states_before, other.dfa_states_before);
  dfa_states_after = std::max(dfa_states_after, other.dfa_states_after);
  determinize_calls += other.determinize_calls;
  minimize_calls += other.minimize_calls;
  product_pairs += other.product_pairs;
  determinize_allocs += other.determinize_allocs;
  minimize_allocs += other.minimize_allocs;
  ltlf_states = std::max(ltlf_states, other.ltlf_states);
  counterexample_len = std::max(counterexample_len, other.counterexample_len);
  regex_nodes = std::max(regex_nodes, other.regex_nodes);
  elapsed_ms += other.elapsed_ms;
  collected = collected || other.collected;
}

AutomataStats* sink() { return t_sink; }

ScopedSink::ScopedSink(AutomataStats* stats) : previous_(t_sink) {
  t_sink = stats;
  if (stats != nullptr) stats->collected = true;
}

ScopedSink::~ScopedSink() { t_sink = previous_; }

void record_nfa_states(std::uint64_t states) {
  if (idle()) return;
  if (t_sink != nullptr) {
    t_sink->nfa_states = std::max(t_sink->nfa_states, states);
  }
  if (enabled()) distribution("fsm.nfa.states").record(states);
}

void record_determinize(std::uint64_t nfa_states,
                        std::uint64_t dfa_states) {
  if (idle()) return;
  if (t_sink != nullptr) {
    t_sink->nfa_states = std::max(t_sink->nfa_states, nfa_states);
    t_sink->dfa_states_before =
        std::max(t_sink->dfa_states_before, dfa_states);
    ++t_sink->determinize_calls;
  }
  if (enabled()) {
    counter("fsm.determinize.calls").add();
    distribution("fsm.dfa.states").record(dfa_states);
  }
}

void record_minimize(std::uint64_t before, std::uint64_t after) {
  if (idle()) return;
  if (t_sink != nullptr) {
    t_sink->dfa_states_before = std::max(t_sink->dfa_states_before, before);
    t_sink->dfa_states_after = std::max(t_sink->dfa_states_after, after);
    ++t_sink->minimize_calls;
  }
  if (enabled()) {
    counter("fsm.minimize.calls").add();
    distribution("fsm.minimize.states").record(after);
  }
}

void record_determinize_allocs(std::uint64_t allocs) {
  if (idle()) return;
  if (t_sink != nullptr) t_sink->determinize_allocs += allocs;
  if (enabled()) counter("fsm.determinize.heap_allocs").add(allocs);
}

void record_minimize_allocs(std::uint64_t allocs) {
  if (idle()) return;
  if (t_sink != nullptr) t_sink->minimize_allocs += allocs;
  if (enabled()) counter("fsm.minimize.heap_allocs").add(allocs);
}

void record_product_pairs(std::uint64_t pairs) {
  if (idle()) return;
  if (t_sink != nullptr) t_sink->product_pairs += pairs;
  if (enabled()) {
    counter("fsm.product.pairs").add(pairs);
    distribution("fsm.product.pairs").record(pairs);
  }
}

void record_ltlf_states(std::uint64_t states) {
  if (idle()) return;
  if (t_sink != nullptr) {
    t_sink->ltlf_states = std::max(t_sink->ltlf_states, states);
  }
  if (enabled()) {
    counter("ltlf.to_dfa.calls").add();
    distribution("ltlf.states").record(states);
  }
}

void record_counterexample(std::uint64_t length) {
  if (idle()) return;
  if (t_sink != nullptr) {
    t_sink->counterexample_len =
        std::max(t_sink->counterexample_len, length);
  }
  if (enabled()) distribution("fsm.counterexample.len").record(length);
}

void record_regex_simplify(std::uint64_t before, std::uint64_t after) {
  if (idle()) return;
  if (t_sink != nullptr) {
    t_sink->regex_nodes = std::max(t_sink->regex_nodes, after);
  }
  if (enabled()) {
    counter("rex.simplify.calls").add();
    distribution("rex.simplify.nodes.in").record(before);
    distribution("rex.simplify.nodes.out").record(after);
  }
}

void record_tokens(std::uint64_t count) {
  if (idle()) return;
  if (enabled()) distribution("upy.tokens").record(count);
}

}  // namespace shelley::support::metrics
