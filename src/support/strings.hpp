// Small string utilities shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace shelley {

/// Joins `parts` with `separator`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// Splits `text` on `separator` (single char); keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char separator);

/// Strips leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Escapes `"` and `\` for embedding in DOT/SMV string literals.
[[nodiscard]] std::string escape_quotes(std::string_view text);

/// Indents every line of `text` by `spaces` spaces.
[[nodiscard]] std::string indent(std::string_view text, int spaces);

}  // namespace shelley
