#include "support/alloc.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace shelley::support::alloc {
namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* checked_malloc(std::size_t size) {
  if (size == 0) size = 1;  // malloc(0) may return nullptr legitimately
  for (;;) {
    if (void* p = std::malloc(size)) {
      g_allocations.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* checked_aligned(std::size_t size, std::size_t align) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  for (;;) {
    if (void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded)) {
      g_allocations.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

}  // namespace

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace shelley::support::alloc

// Global replacements.  Defined here (once, in the support library every
// binary links) so the whole process counts through one atomic.

void* operator new(std::size_t size) {
  if (void* p = shelley::support::alloc::checked_malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = shelley::support::alloc::checked_malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return shelley::support::alloc::checked_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return shelley::support::alloc::checked_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = shelley::support::alloc::checked_aligned(
          size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = shelley::support::alloc::checked_aligned(
          size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return shelley::support::alloc::checked_aligned(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return shelley::support::alloc::checked_aligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
