// Zero-dependency hierarchical tracing for the verification pipeline.
//
// RAII spans record wall-clock intervals (steady clock) into per-thread
// buffers; instant events mark points in time (diagnostics); counter events
// sample numeric series.  Everything is thread-aware: events carry a stable
// small thread id, buffers are appended without cross-thread contention, and
// the exporter merges them into one Chrome trace-event JSON document that
// loads in Perfetto / chrome://tracing.
//
// Cost model: when tracing is disabled (the default) constructing a Span is
// a single relaxed atomic load and a branch -- no allocation, no clock read.
// Set the SHELLEY_TRACE environment variable (any value but "0") to force
// tracing on at startup, e.g. to run the test suite fully instrumented.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shelley::support::trace {

/// True while trace collection is on.  A single relaxed atomic load.
[[nodiscard]] bool enabled();

/// Turns collection on or off.  Spans already open keep recording.
void set_enabled(bool on);

/// Drops every buffered event and restarts the trace clock at zero.  Must
/// not race with recording: call it only while no instrumented code runs on
/// other threads (e.g. between pipeline runs, after worker pools joined).
void reset();

/// The identity a span records under: which request it belongs to and
/// which span encloses it.  Zero means "none" for both fields.  The
/// context is thread-local; support::ThreadPool captures it at submit()
/// and restores it inside the worker, so spans opened on a worker thread
/// stay children of the submitting span and one daemon request renders as
/// one connected tree across threads.
struct TraceContext {
  std::uint64_t request_id = 0;
  std::uint64_t parent_span = 0;
};

/// The calling thread's context: its request id and innermost live span.
[[nodiscard]] TraceContext current_context();

/// Installs `context` as the calling thread's context for the current
/// scope, restoring the previous one on destruction.  Cheap (two
/// thread-local stores) and independent of enabled().
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  std::uint64_t previous_request_;
  std::uint64_t previous_span_;
};

/// One key/value annotation on an event ("args" in the Chrome format).
struct Arg {
  std::string key;
  std::string text;         // used when !numeric
  std::uint64_t num = 0;    // used when numeric
  bool numeric = false;

  Arg(std::string_view k, std::string_view v)
      : key(k), text(v) {}
  Arg(std::string_view k, std::uint64_t v) : key(k), num(v), numeric(true) {}
};

/// A hierarchical timed span ("X" complete event).  Nesting is positional
/// within a thread (spans opened while another span is live render as its
/// children) and explicit across threads: every active span draws a unique
/// `span_id`, records the enclosing span (or the TraceContext parent
/// restored by a ThreadPool worker) as `parent`, and carries its request
/// id -- all three land in the exported args.  Inactive spans (tracing
/// disabled at construction) cost nothing and ignore arg().
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches metadata shown in the trace viewer's args pane.
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::uint64_t value);

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint64_t span_id() const { return span_id_; }

 private:
  bool active_ = false;
  double start_us_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
  std::uint64_t request_id_ = 0;
  std::string name_;
  std::vector<Arg> args_;
};

/// A point-in-time event ("i" instant event).  No-op while disabled.
void instant(std::string_view name, std::vector<Arg> args = {});

/// A counter sample ("C" event): every numeric arg becomes one series of the
/// counter track `name`.  No-op while disabled.
void counter(std::string_view name, std::vector<Arg> args);

/// Number of buffered events (all threads).
[[nodiscard]] std::size_t event_count();

/// Renders every buffered event as a Chrome trace-event JSON document
/// ({"traceEvents": [...]}), including thread-name metadata.
[[nodiscard]] std::string to_chrome_json();

/// Writes to_chrome_json() to `path`.  Returns false on I/O failure.
bool write_chrome_json(const std::string& path);

}  // namespace shelley::support::trace
