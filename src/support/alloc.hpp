// Process-wide heap-allocation counter.
//
// The kernel's performance claims are stated in allocations, not just
// nanoseconds: determinize/minimize on a ring-N class must do O(1) heap
// allocations per call once the arena and scratch pools are warm.  To make
// that measurable (and regression-testable) the library overrides the global
// operator new/delete pair with forwarding versions that bump one relaxed
// atomic.  Cost: a single uncontended fetch_add per allocation, which is
// noise next to the allocation itself; behavior (alignment, bad_alloc,
// nothrow) is unchanged, and the sanitizers still interpose the underlying
// malloc/free.
//
// allocation_count() is monotonic and process-wide.  Callers measure deltas:
//
//   const auto before = support::alloc::allocation_count();
//   work();
//   const auto spent = support::alloc::allocation_count() - before;
#pragma once

#include <cstdint>

namespace shelley::support::alloc {

/// Number of successful global operator new calls since process start.
[[nodiscard]] std::uint64_t allocation_count();

}  // namespace shelley::support::alloc
