// A minimal streaming JSON writer (objects, arrays, strings, numbers,
// booleans, null) with correct string escaping, plus a small recursive-
// descent parser (JsonValue / parse_json).  Used by the report exporter,
// the CLI's --json mode, and the trace exporter's round-trip tests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shelley {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool boolean);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(double number);
  JsonWriter& null();

  /// The accumulated document.  Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_if_needed();
  void write_escaped(std::string_view text);

  std::string out_;
  // true = container already has at least one element.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

/// Thrown by parse_json on malformed input.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON document.  Objects preserve key order (they are small in
/// every document this project produces; lookup is a linear scan).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; each throws JsonParseError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// First value stored under `key`, or nullptr (objects only; returns
  /// nullptr for non-objects as well, so lookups chain safely).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// find(), but throws JsonParseError when the key is absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (any value type at the root).  Throws
/// JsonParseError on malformed input or trailing non-whitespace.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace shelley
