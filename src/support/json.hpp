// A minimal streaming JSON writer (objects, arrays, strings, numbers,
// booleans, null) with correct string escaping.  Used by the report
// exporter and the CLI's --json mode; deliberately tiny -- no parsing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shelley {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool boolean);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(double number);
  JsonWriter& null();

  /// The accumulated document.  Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_if_needed();
  void write_escaped(std::string_view text);

  std::string out_;
  // true = container already has at least one element.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace shelley
