#include "support/binary.hpp"

namespace shelley::support {

void BinaryWriter::u8(std::uint8_t value) {
  out_.push_back(static_cast<char>(value));
}

void BinaryWriter::u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>(value >> (8 * i)));
  }
}

void BinaryWriter::u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>(value >> (8 * i)));
  }
}

void BinaryWriter::str(std::string_view bytes) {
  u64(bytes.size());
  out_.append(bytes);
}

void BinaryWriter::raw(std::string_view bytes) { out_.append(bytes); }

void BinaryReader::require(std::size_t size) const {
  if (size > bytes_.size() - pos_) {
    throw BinaryFormatError("binary input truncated");
  }
}

std::uint8_t BinaryReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t BinaryReader::u32() {
  require(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

std::uint64_t BinaryReader::u64() {
  require(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

std::string BinaryReader::str() {
  const std::uint64_t size = u64();
  require(size);
  std::string out(bytes_.substr(pos_, size));
  pos_ += size;
  return out;
}

std::string_view BinaryReader::raw(std::size_t size) {
  require(size);
  const std::string_view out = bytes_.substr(pos_, size);
  pos_ += size;
  return out;
}

void BinaryReader::expect_end() const {
  if (!at_end()) {
    throw BinaryFormatError("binary input has trailing bytes");
  }
}

}  // namespace shelley::support
