#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "support/json.hpp"

namespace shelley::support::trace {
namespace {

using Clock = std::chrono::steady_clock;

bool env_enabled() {
  const char* value = std::getenv("SHELLEY_TRACE");
  return value != nullptr && *value != '\0' &&
         std::string_view(value) != "0";
}

std::atomic<bool> g_enabled{env_enabled()};

// Span identities: a process-wide id well (1-based; 0 means "none") and the
// per-thread context every new span inherits from.  ThreadPool::submit
// captures the submitting thread's pair and restores it in the worker, so
// the ids connect across threads.
std::atomic<std::uint64_t> g_next_span{1};
thread_local std::uint64_t tls_request_id = 0;
thread_local std::uint64_t tls_current_span = 0;

struct FullEvent {
  std::string name;
  char phase = 'X';
  std::uint32_t tid = 0;
  double ts_us = 0;
  double dur_us = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t request_id = 0;
  std::vector<Arg> args;
};

// Per-thread buffer.  The owner thread appends under the buffer's own mutex
// (uncontended in steady state); the exporter takes the same mutex when
// copying, so export during concurrent recording is safe.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id) : tid(id) {}
  std::uint32_t tid;
  std::mutex mutex;
  std::vector<FullEvent> events;
  std::uint64_t dropped = 0;
};

// More events than any realistic pipeline run produces; a backstop so a
// force-enabled long test run cannot grow without bound.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  Clock::time_point epoch = Clock::now();
};

Registry& registry() {
  static Registry instance;
  return instance;
}

// reset() bumps the generation so cached thread-local buffer pointers from
// the previous trace are re-acquired instead of dangling.
std::atomic<std::uint64_t> g_generation{1};

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* cached = nullptr;
  thread_local std::uint64_t cached_generation = 0;
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_generation != generation) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffers.push_back(std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(reg.buffers.size())));
    cached = reg.buffers.back().get();
    cached_generation = generation;
  }
  return *cached;
}

double now_us() {
  Registry& reg = registry();
  return std::chrono::duration<double, std::micro>(Clock::now() - reg.epoch)
      .count();
}

void record(FullEvent event) {
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(std::move(event));
}

void write_args(JsonWriter& json, const FullEvent& event) {
  json.key("args").begin_object();
  // Identity first: span_id/parent stitch cross-thread trees back
  // together, request groups every event of one daemon request.
  if (event.span_id != 0) json.key("span_id").value(event.span_id);
  if (event.parent_span != 0) json.key("parent").value(event.parent_span);
  if (event.request_id != 0) json.key("request").value(event.request_id);
  for (const Arg& arg : event.args) {
    json.key(arg.key);
    if (arg.numeric) {
      json.value(arg.num);
    } else {
      json.value(arg.text);
    }
  }
  json.end_object();
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.buffers.clear();
  reg.epoch = Clock::now();
  g_next_span.store(1, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

TraceContext current_context() {
  return TraceContext{tls_request_id, tls_current_span};
}

ScopedContext::ScopedContext(const TraceContext& context)
    : previous_request_(tls_request_id),
      previous_span_(tls_current_span) {
  tls_request_id = context.request_id;
  tls_current_span = context.parent_span;
}

ScopedContext::~ScopedContext() {
  tls_request_id = previous_request_;
  tls_current_span = previous_span_;
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  name_ = name;
  span_id_ = g_next_span.fetch_add(1, std::memory_order_relaxed);
  parent_span_ = tls_current_span;
  request_id_ = tls_request_id;
  tls_current_span = span_id_;
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  tls_current_span = parent_span_;
  FullEvent event;
  event.name = std::move(name_);
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = now_us() - start_us_;
  event.span_id = span_id_;
  event.parent_span = parent_span_;
  event.request_id = request_id_;
  event.args = std::move(args_);
  record(std::move(event));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

void instant(std::string_view name, std::vector<Arg> args) {
  if (!enabled()) return;
  FullEvent event;
  event.name = std::string(name);
  event.phase = 'i';
  event.ts_us = now_us();
  // Instants anchor to the enclosing span and request, so a memo hit or a
  // diagnostic is attributable to the request that produced it.
  event.parent_span = tls_current_span;
  event.request_id = tls_request_id;
  event.args = std::move(args);
  record(std::move(event));
}

void counter(std::string_view name, std::vector<Arg> args) {
  if (!enabled()) return;
  FullEvent event;
  event.name = std::string(name);
  event.phase = 'C';
  event.ts_us = now_us();
  event.args = std::move(args);
  record(std::move(event));
}

std::size_t event_count() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t count = 0;
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::string to_chrome_json() {
  // Snapshot under the locks, render outside them.
  std::vector<FullEvent> events;
  std::size_t thread_count = 0;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    thread_count = reg.buffers.size();
    for (const auto& buffer : reg.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FullEvent& a, const FullEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });

  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (std::size_t tid = 0; tid < thread_count; ++tid) {
    json.begin_object();
    json.key("name").value("thread_name");
    json.key("ph").value("M");
    json.key("pid").value(std::uint64_t{1});
    json.key("tid").value(static_cast<std::uint64_t>(tid));
    json.key("args").begin_object();
    json.key("name").value("shelley-" + std::to_string(tid));
    json.end_object();
    json.end_object();
  }
  for (const FullEvent& event : events) {
    json.begin_object();
    json.key("name").value(event.name);
    json.key("ph").value(std::string_view(&event.phase, 1));
    json.key("pid").value(std::uint64_t{1});
    json.key("tid").value(static_cast<std::uint64_t>(event.tid));
    json.key("ts").value(event.ts_us);
    if (event.phase == 'X') json.key("dur").value(event.dur_us);
    if (event.phase == 'i') json.key("s").value("t");  // thread-scoped
    if (!event.args.empty() || event.phase == 'C' || event.span_id != 0 ||
        event.parent_span != 0 || event.request_id != 0) {
      write_args(json, event);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool write_chrome_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace shelley::support::trace
