// A chunked bump allocator for the automata kernel's scratch memory.
//
// Subset construction and Hopcroft minimization allocate thousands of small,
// identically-scoped objects per call (subset bitsets, CSR rows, partition
// arrays).  Allocating each from the heap costs a malloc/free pair and
// scatters them across the address space; the arena hands out pointers by
// bumping an offset into large chunks, and a whole call's worth of memory is
// released by rewinding one integer -- O(1) frees per call, and the chunks
// themselves are retained for the next call (steady-state: zero heap
// allocations per determinize/minimize once the pools are warm).
//
// Not thread-safe; the kernel keeps one arena per thread (see
// fsm/ops.cpp).  Nested uses compose through mark()/rewind() -- take a
// marker on entry, rewind on exit (ArenaScope does this with RAII, and is
// unwind-safe when a resource guard throws mid-algorithm).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace shelley::support {

class Arena {
 public:
  /// Chunks grow geometrically starting at `min_chunk_bytes`.
  explicit Arena(std::size_t min_chunk_bytes = 1 << 16)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).  The
  /// memory is uninitialized and valid until the next rewind past it.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed array of `count` Ts (uninitialized; T must be trivially
  /// destructible -- the arena never runs destructors).
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound, never destroyed");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// A rewind point: the arena's position across every chunk.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t offset = 0;
  };

  [[nodiscard]] Marker mark() const { return Marker{current_, offset_}; }

  /// Rewinds to `marker`; everything allocated after it is free for reuse.
  /// Chunks are kept (capacity is retained).
  void rewind(Marker marker) {
    current_ = marker.chunk;
    offset_ = marker.offset;
  }

  /// Rewinds to empty, keeping the chunks.
  void reset() { rewind(Marker{}); }

  /// Frees every chunk (capacity drops to zero).
  void release();

  struct Stats {
    std::size_t chunks = 0;          ///< chunks currently owned
    std::size_t reserved_bytes = 0;  ///< total chunk capacity
    std::size_t chunk_allocs = 0;    ///< chunks ever heap-allocated
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< index of the chunk being bumped
  std::size_t offset_ = 0;   ///< bump position inside chunks_[current_]
  std::size_t min_chunk_bytes_;
  std::size_t chunk_allocs_ = 0;
};

/// RAII mark/rewind over a scope: the canonical way the kernel borrows the
/// per-thread arena for the duration of one algorithm.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), marker_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(marker_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  [[nodiscard]] Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Marker marker_;
};

}  // namespace shelley::support
