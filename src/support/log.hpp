// Structured NDJSON logging for the long-running surfaces (daemon, tools).
//
// One call emits one JSON object on one line: {"ts_ms": ..., "level": ...,
// "event": ..., "request": <id, when nonzero>, <fields>...}.  Lines are
// written atomically under a sink mutex, flushed per line (a crash loses at
// most the line being written), and rate-limited: past the per-second
// budget lines are counted and dropped, and a single "log.rate_limited"
// summary line is emitted when the window rolls over.
//
// Off by default.  Set SHELLEY_LOG=stderr or SHELLEY_LOG=/path/to/file to
// enable at startup, or call configure() programmatically.  When disabled,
// write() is one relaxed atomic load and a branch -- callers building
// expensive fields should gate on enabled() themselves.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shelley::support::log {

enum class Level { kDebug, kInfo, kWarn, kError };

/// The wire spelling of a level ("debug"/"info"/"warn"/"error").
[[nodiscard]] std::string_view level_name(Level level);

/// One key/value pair on a log line.  Mirrors trace::Arg.
struct Field {
  std::string key;
  std::string text;       // used when !numeric
  std::uint64_t num = 0;  // used when numeric
  bool numeric = false;

  Field(std::string_view k, std::string_view v) : key(k), text(v) {}
  Field(std::string_view k, std::uint64_t v) : key(k), num(v), numeric(true) {}
};

/// True while a sink is configured and logging is on.  One relaxed load.
[[nodiscard]] bool enabled();

/// Points the logger at `target`: "stderr", a file path (opened for
/// append), or "" to disable.  Returns false (and disables) when the file
/// cannot be opened.  Safe to call between requests; not safe to race with
/// in-flight write() calls on other threads.
bool configure(const std::string& target);

/// Emits one line.  `request_id` 0 omits the "request" key.  No-op while
/// disabled.
void write(Level level, std::string_view event, std::uint64_t request_id,
           std::vector<Field> fields = {});

/// Lines suppressed by the rate limiter since the last configure().
[[nodiscard]] std::uint64_t dropped_lines();

/// Overrides the per-second line budget (default 1000).  Test hook.
void set_rate_limit(std::uint64_t lines_per_second);

/// Renders a log line without writing it (the exact bytes write() would
/// emit, minus the trailing newline).  Used by tests to round-trip the
/// schema through support/json.
[[nodiscard]] std::string format_line(Level level, std::string_view event,
                                      std::uint64_t request_id,
                                      const std::vector<Field>& fields);

}  // namespace shelley::support::log
