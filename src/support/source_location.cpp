#include "support/source_location.hpp"

namespace shelley {

std::string to_string(SourceLoc loc) {
  if (!loc.known()) return "<unknown>";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace shelley
