#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::support {

namespace {
// Set for the lifetime of every worker thread (of any pool); lets
// parallel_for detect nested use and stay on the calling thread.
thread_local bool tls_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Carry the submitting thread's trace context onto the worker so spans
  // opened inside the task stay children of the submitting span (one
  // connected tree per request); while metering, also charge the time the
  // task sat queued to the pool.queue_wait_us histogram.  Both wrappers
  // are skipped entirely on the disabled fast path.
  if (trace::enabled() || metrics::enabled()) {
    const trace::TraceContext context = trace::current_context();
    const bool metered = metrics::enabled();
    const auto enqueued = std::chrono::steady_clock::now();
    task = [context, metered, enqueued,
            inner = std::move(task)]() mutable {
      if (metered) {
        const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - enqueued);
        metrics::histogram("pool.queue_wait_us")
            .record(static_cast<std::uint64_t>(waited.count()));
      }
      const trace::ScopedContext scoped(context);
      inner();
    };
  }
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  // The backlog reading at every submit gives queue-depth percentiles for
  // free under the usual disabled-is-one-load discipline.
  if (metrics::enabled()) {
    metrics::histogram("pool.queue_depth")
        .record(static_cast<std::uint64_t>(depth));
  }
  work_available_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::hardware_default() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_default());
  return pool;
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ with a drained queue
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(jobs, count);
  if (workers <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Fan out over the persistent shared pool instead of spawning (and then
  // joining) a fresh pool per call.  Completion is tracked per call -- the
  // pool may be carrying tasks of concurrent parallel_for invocations, so
  // ThreadPool::wait() (which waits for a globally idle pool) is not used.
  std::atomic<std::size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  ThreadPool& pool = ThreadPool::shared();
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        fn(i);
      }
      // Notify while holding the lock: the waiter owns done_cv on its
      // stack and may destroy it the moment it can re-acquire done_mutex,
      // so the signal must complete before this task releases it.
      const std::lock_guard<std::mutex> lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == workers; });
}

}  // namespace shelley::support
