#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace shelley::support {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::hardware_default() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ with a drained queue
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(jobs, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  ThreadPool pool(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.wait();
}

}  // namespace shelley::support
