#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "support/json.hpp"

namespace shelley::support::log {
namespace {

std::atomic<bool> g_enabled{false};

struct Sink {
  std::mutex mutex;
  std::ofstream file;    // open when logging to a path
  bool to_stderr = false;

  // Rate limiter: a per-second window; lines past the budget are counted
  // and surfaced as one "log.rate_limited" line when the window turns.
  std::uint64_t budget = 1000;
  std::uint64_t window = 0;       // seconds since the steady epoch
  std::uint64_t in_window = 0;    // lines emitted this window
  std::uint64_t dropped_window = 0;
  std::atomic<std::uint64_t> dropped_total{0};

  void emit(const std::string& line) {
    if (to_stderr) {
      std::fprintf(stderr, "%s\n", line.c_str());
      std::fflush(stderr);
    } else if (file.is_open()) {
      file << line << '\n' << std::flush;
    }
  }
};

Sink& sink() {
  static Sink instance;
  return instance;
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t steady_seconds() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool env_configured() {
  const char* value = std::getenv("SHELLEY_LOG");
  if (value == nullptr || *value == '\0') return false;
  return configure(value);
}

// Force the env check to run once at startup, mirroring SHELLEY_TRACE.
[[maybe_unused]] const bool g_env_init = env_configured();

}  // namespace

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "info";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool configure(const std::string& target) {
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.file.is_open()) s.file.close();
  s.to_stderr = false;
  s.window = 0;
  s.in_window = 0;
  s.dropped_window = 0;
  s.dropped_total.store(0, std::memory_order_relaxed);
  if (target.empty()) {
    g_enabled.store(false, std::memory_order_relaxed);
    return true;
  }
  if (target == "stderr") {
    s.to_stderr = true;
    g_enabled.store(true, std::memory_order_relaxed);
    return true;
  }
  s.file.open(target, std::ios::app);
  if (!s.file.is_open()) {
    g_enabled.store(false, std::memory_order_relaxed);
    return false;
  }
  g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

std::string format_line(Level level, std::string_view event,
                        std::uint64_t request_id,
                        const std::vector<Field>& fields) {
  JsonWriter json;
  json.begin_object();
  json.key("ts_ms").value(now_ms());
  json.key("level").value(level_name(level));
  json.key("event").value(event);
  if (request_id != 0) json.key("request").value(request_id);
  for (const Field& field : fields) {
    json.key(field.key);
    if (field.numeric) {
      json.value(field.num);
    } else {
      json.value(field.text);
    }
  }
  json.end_object();
  return json.str();
}

void write(Level level, std::string_view event, std::uint64_t request_id,
           std::vector<Field> fields) {
  if (!enabled()) return;
  // Render outside the sink lock; only ordering and the limiter state need
  // serialization.
  const std::string line = format_line(level, event, request_id, fields);
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const std::uint64_t second = steady_seconds();
  if (second != s.window) {
    if (s.dropped_window != 0) {
      s.emit(format_line(Level::kWarn, "log.rate_limited", 0,
                         {Field("dropped", s.dropped_window)}));
    }
    s.window = second;
    s.in_window = 0;
    s.dropped_window = 0;
  }
  if (s.in_window >= s.budget) {
    ++s.dropped_window;
    s.dropped_total.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++s.in_window;
  s.emit(line);
}

std::uint64_t dropped_lines() {
  return sink().dropped_total.load(std::memory_order_relaxed);
}

void set_rate_limit(std::uint64_t lines_per_second) {
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.budget = lines_per_second == 0 ? 1 : lines_per_second;
}

}  // namespace shelley::support::log
