#include "support/json.hpp"

#include <array>
#include <cstdio>

namespace shelley {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote its separator
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer{};
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ += buffer.data();
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elements_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elements_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  write_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_if_needed();
  write_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  comma_if_needed();
  out_ += boolean ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma_if_needed();
  std::array<char, 32> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.17g", number);
  out_ += buffer.data();
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

}  // namespace shelley
