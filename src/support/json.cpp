#include "support/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace shelley {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote its separator
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer{};
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ += buffer.data();
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elements_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elements_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  write_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_if_needed();
  write_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  comma_if_needed();
  out_ += boolean ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma_if_needed();
  std::array<char, 32> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.17g", number);
  out_ += buffer.data();
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw JsonParseError(std::string("JsonValue: not a ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw JsonParseError("JsonValue: missing key '" + std::string(key) +
                         "'");
  }
  return *value;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("json: " + message + " at offset " +
                         std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(elements));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace shelley
