#include "support/arena.hpp"

#include <algorithm>

namespace shelley::support {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (current_ < chunks_.size()) {
    Chunk& chunk = chunks_[current_];
    const std::size_t base =
        reinterpret_cast<std::uintptr_t>(chunk.data.get() + offset_);
    const std::size_t padding = (align - base % align) % align;
    if (offset_ + padding + bytes <= chunk.size) {
      void* out = chunk.data.get() + offset_ + padding;
      offset_ += padding + bytes;
      return out;
    }
  }
  return allocate_slow(bytes, align);
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Advance through retained chunks first; allocate a fresh chunk only when
  // none of them fits.  Chunk sizes grow geometrically so a request stream
  // of total size S touches O(log S) chunks.
  while (current_ + 1 < chunks_.size()) {
    ++current_;
    offset_ = 0;
    Chunk& chunk = chunks_[current_];
    const std::size_t base =
        reinterpret_cast<std::uintptr_t>(chunk.data.get());
    const std::size_t padding = (align - base % align) % align;
    if (padding + bytes <= chunk.size) {
      void* out = chunk.data.get() + padding;
      offset_ = padding + bytes;
      return out;
    }
  }

  std::size_t size = min_chunk_bytes_;
  if (!chunks_.empty()) size = chunks_.back().size * 2;
  size = std::max(size, bytes + align);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  ++chunk_allocs_;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;

  const std::size_t base =
      reinterpret_cast<std::uintptr_t>(chunks_[current_].data.get());
  const std::size_t padding = (align - base % align) % align;
  offset_ = padding + bytes;
  return chunks_[current_].data.get() + padding;
}

void Arena::release() {
  chunks_.clear();
  current_ = 0;
  offset_ = 0;
}

Arena::Stats Arena::stats() const {
  Stats out;
  out.chunks = chunks_.size();
  out.chunk_allocs = chunk_allocs_;
  for (const Chunk& chunk : chunks_) out.reserved_bytes += chunk.size;
  return out;
}

}  // namespace shelley::support
