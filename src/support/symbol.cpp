#include "support/symbol.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>

namespace shelley {

Symbol SymbolTable::intern(std::string_view text) {
  if (auto it = index_.find(text); it != index_.end()) {
    return Symbol{it->second};
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(text);
  index_.emplace(std::string_view{names_.back()}, id);
  return Symbol{id};
}

std::optional<Symbol> SymbolTable::lookup(std::string_view text) const {
  if (auto it = index_.find(text); it != index_.end()) {
    return Symbol{it->second};
  }
  return std::nullopt;
}

const std::string& SymbolTable::name(Symbol sym) const {
  if (!sym.valid() || sym.id() >= names_.size()) {
    throw std::out_of_range("Symbol does not belong to this SymbolTable");
  }
  return names_[sym.id()];
}

std::string to_string(const Word& word, const SymbolTable& table,
                      std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (i != 0) out += separator;
    out += table.name(word[i]);
  }
  return out;
}

}  // namespace shelley
