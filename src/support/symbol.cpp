#include "support/symbol.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace shelley {

SymbolTable::SymbolTable(const SymbolTable& other) {
  const std::shared_lock<std::shared_mutex> lock(other.mutex_);
  names_ = other.names_;
  // Rebuild the index over *this* table's strings -- copying it verbatim
  // would leave its string_view keys pointing into `other`.
  index_.reserve(names_.size());
  for (std::uint32_t id = 0; id < names_.size(); ++id) {
    index_.emplace(std::string_view{names_[id]}, id);
  }
}

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this == &other) return *this;
  SymbolTable copy(other);
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  names_ = std::move(copy.names_);
  index_ = std::move(copy.index_);
  return *this;
}

Symbol SymbolTable::intern(std::string_view text) {
  {
    // Fast path: already interned, shared lock only.
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    if (auto it = index_.find(text); it != index_.end()) {
      return Symbol{it->second};
    }
  }
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  if (auto it = index_.find(text); it != index_.end()) {
    return Symbol{it->second};  // raced with another intern of `text`
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(text);
  index_.emplace(std::string_view{names_.back()}, id);
  return Symbol{id};
}

std::optional<Symbol> SymbolTable::lookup(std::string_view text) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  if (auto it = index_.find(text); it != index_.end()) {
    return Symbol{it->second};
  }
  return std::nullopt;
}

const std::string& SymbolTable::name(Symbol sym) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  if (!sym.valid() || sym.id() >= names_.size()) {
    throw std::out_of_range("Symbol does not belong to this SymbolTable");
  }
  // Safe to return after unlocking: deque elements are address-stable and
  // interned strings are immutable.
  return names_[sym.id()];
}

std::size_t SymbolTable::size() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return names_.size();
}

std::string to_string(const Word& word, const SymbolTable& table,
                      std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (i != 0) out += separator;
    out += table.name(word[i]);
  }
  return out;
}

}  // namespace shelley
