// Source positions for diagnostics emitted by the MicroPython frontend and
// the verification pipeline.
#pragma once

#include <cstdint>
#include <string>

namespace shelley {

/// A 1-based (line, column) position in a source buffer.  Line 0 means
/// "no location" (e.g. a synthetic diagnostic).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] constexpr bool known() const { return line != 0; }

  friend constexpr bool operator==(SourceLoc, SourceLoc) = default;
  friend constexpr auto operator<=>(SourceLoc, SourceLoc) = default;
};

/// Renders `line:column`, or `<unknown>` when the location is absent.
[[nodiscard]] std::string to_string(SourceLoc loc);

}  // namespace shelley
