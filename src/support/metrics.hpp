// Named monotonic counters, value distributions, and per-class automata
// statistics for the verification pipeline.
//
// Two collection surfaces:
//
//  * a process-wide registry of named Counters (atomic adds) and
//    Distributions (count/sum/min/max, atomic CAS) -- race-free aggregation
//    across Verifier worker threads, gated on one atomic enabled flag;
//
//  * a thread-local AutomataStats sink: the verifier installs one per class
//    (each class's pipeline runs entirely on one worker thread), so the
//    fsm/ltlf/rex layers can attribute sizes to the class being verified
//    without threading a context object through every call.
//
// Cost model: when metrics are disabled and no sink is installed, every
// record_* helper is one thread-local load plus one relaxed atomic load and
// a branch.  SHELLEY_TRACE (any value but "0") force-enables collection at
// startup, together with tracing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shelley::support::metrics {

/// True while registry collection is on.  A single relaxed atomic load.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// A monotonic counter.  add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value distribution: count, sum, min, max.  record() is lock-free.
class Distribution {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };

  void record(std::uint64_t value);
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// A fixed-bucket log-scale latency/value histogram.  Bucket `i` holds the
/// values whose bit width is `i` (bucket 0: the value 0; bucket i >= 1:
/// [2^(i-1), 2^i), with everything 2^62 and above clamped into the last
/// bucket) -- so the relative quantile-estimation error is bounded by one
/// power of two.  record() is wait-free (one fetch_add per bucket plus the
/// sum/min/max updates); snapshots taken during concurrent recording are
/// approximate but never torn per-field.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// The bucket `value` lands in.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  /// The largest value bucket `index` can hold (inclusive).
  [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t index);

  void record(std::uint64_t value);

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;

    /// Estimated value at quantile `q` in [0, 1]: the upper bound of the
    /// bucket holding the q-th recorded value, clamped to the observed
    /// max -- within one bucket of the exact order statistic.  0 when
    /// empty.
    [[nodiscard]] std::uint64_t quantile(double q) const;

    /// Adds `other` in; merging is associative and commutative.
    void merge(const Snapshot& other);
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Folds a snapshot (e.g. a peer histogram's) into this histogram.
  void merge(const Snapshot& other);

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Returns the counter/distribution/histogram registered under `name`,
/// creating it on first use.  References stay valid for the process
/// lifetime.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Distribution& distribution(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Name-sorted snapshots of every registered series.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
counter_snapshot();
[[nodiscard]] std::vector<std::pair<std::string, Distribution::Snapshot>>
distribution_snapshot();
[[nodiscard]] std::vector<std::pair<std::string, Histogram::Snapshot>>
histogram_snapshot();

/// Zeroes every registered series (the series themselves stay registered).
void reset();

/// Automata statistics attributed to one pipeline run (one class).
struct AutomataStats {
  std::uint64_t nfa_states = 0;          // largest NFA built (max)
  std::uint64_t dfa_states_before = 0;   // largest subset construction (max)
  std::uint64_t dfa_states_after = 0;    // largest minimized DFA (max)
  std::uint64_t determinize_calls = 0;   // (sum)
  std::uint64_t minimize_calls = 0;      // (sum)
  std::uint64_t product_pairs = 0;       // pair states explored (sum)
  std::uint64_t determinize_allocs = 0;  // heap allocations inside (sum)
  std::uint64_t minimize_allocs = 0;     // heap allocations inside (sum)
  std::uint64_t ltlf_states = 0;         // largest LTLf progression DFA (max)
  std::uint64_t counterexample_len = 0;  // longest witness found (max)
  std::uint64_t regex_nodes = 0;         // largest simplified regex (max)
  double elapsed_ms = 0;                 // filled by the verifier
  bool collected = false;                // true once a sink was installed

  void merge(const AutomataStats& other);
};

/// The calling thread's active stats sink, or nullptr.
[[nodiscard]] AutomataStats* sink();

/// Installs `stats` as the calling thread's sink for the current scope,
/// restoring the previous sink on destruction.  Passing nullptr suspends
/// attribution inside the scope.  Works independently of enabled().
class ScopedSink {
 public:
  explicit ScopedSink(AutomataStats* stats);
  ~ScopedSink();

  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  AutomataStats* previous_;
};

// Recording helpers called from the pipeline layers.  Each updates the
// thread's sink (if any) and the global registry (if enabled).
void record_nfa_states(std::uint64_t states);
void record_determinize(std::uint64_t nfa_states, std::uint64_t dfa_states);
void record_minimize(std::uint64_t before, std::uint64_t after);
void record_product_pairs(std::uint64_t pairs);
void record_determinize_allocs(std::uint64_t allocs);
void record_minimize_allocs(std::uint64_t allocs);
void record_ltlf_states(std::uint64_t states);
void record_counterexample(std::uint64_t length);
void record_regex_simplify(std::uint64_t before, std::uint64_t after);
void record_tokens(std::uint64_t count);

}  // namespace shelley::support::metrics
