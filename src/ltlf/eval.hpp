// Direct finite-trace semantics of LTLf: a reference evaluator by structural
// recursion over the formula at each trace position.  Quadratic and simple;
// the automaton construction is cross-checked against this oracle.
//
// Evaluation at position `pos` interprets the suffix word[pos..); positions
// may equal word.size(), in which case the suffix is the empty trace:
//   ε ⊨ true, end, G φ, φ R ψ, N φ        (weak operators hold vacuously)
//   ε ⊭ false, a, X φ, φ U ψ, F φ         (strong operators fail)
#pragma once

#include "ltlf/formula.hpp"
#include "support/symbol.hpp"

namespace shelley::ltlf {

/// Does word[pos..) satisfy f?
[[nodiscard]] bool eval_at(const Formula& f, const Word& word,
                           std::size_t pos);

/// Does the full word satisfy f?
[[nodiscard]] bool eval(const Formula& f, const Word& word);

/// Does the empty trace satisfy f?
[[nodiscard]] bool eval_empty(const Formula& f);

/// One-step progression: for a non-empty trace a·l,  a·l ⊨ f  iff
/// l ⊨ progress(f, a).  The result is built with the normalizing
/// constructors, so iterated progression visits a finite set of formulas.
[[nodiscard]] Formula progress(const Formula& f, Symbol a);

}  // namespace shelley::ltlf
