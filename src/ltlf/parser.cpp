#include "ltlf/parser.hpp"

#include <cctype>
#include <string>
#include <vector>

#include "support/guard.hpp"

namespace shelley::ltlf {
namespace {

enum class Tok {
  kLParen,
  kRParen,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kName,  // identifiers, including single-letter operator names X N F G U W R
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  std::uint32_t column;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> lex(std::string_view text, SourceLoc origin) {
  std::vector<Token> out;
  std::size_t pos = 0;
  const auto col = [&] { return static_cast<std::uint32_t>(pos + 1); };
  // Error positions are offset by the origin of the embedded formula so
  // they point into the enclosing .py file.
  const auto at = [&](std::uint32_t column) {
    return SourceLoc{origin.line, origin.column + column - 1};
  };
  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++pos;
      continue;
    }
    if (c == '(') {
      out.push_back({Tok::kLParen, "(", col()});
      ++pos;
    } else if (c == ')') {
      out.push_back({Tok::kRParen, ")", col()});
      ++pos;
    } else if (c == '!') {
      out.push_back({Tok::kNot, "!", col()});
      ++pos;
    } else if (text.substr(pos, 2) == "\xC2\xAC") {  // ¬
      out.push_back({Tok::kNot, "¬", col()});
      pos += 2;
    } else if (c == '&') {
      out.push_back({Tok::kAnd, "&", col()});
      pos += text.substr(pos, 2) == "&&" ? 2 : 1;
    } else if (c == '|') {
      out.push_back({Tok::kOr, "|", col()});
      pos += text.substr(pos, 2) == "||" ? 2 : 1;
    } else if (text.substr(pos, 3) == "<->") {
      out.push_back({Tok::kIff, "<->", col()});
      pos += 3;
    } else if (text.substr(pos, 2) == "->") {
      out.push_back({Tok::kImplies, "->", col()});
      pos += 2;
    } else if (is_ident_start(c)) {
      const std::uint32_t start = col();
      std::string name;
      while (pos < text.size()) {
        while (pos < text.size() && is_ident_char(text[pos])) {
          name += text[pos++];
        }
        if (pos + 1 < text.size() && text[pos] == '.' &&
            is_ident_start(text[pos + 1])) {
          name += text[pos++];
          continue;
        }
        break;
      }
      out.push_back({Tok::kName, std::move(name), start});
    } else {
      throw ParseError(at(col()),
                       std::string("unexpected character '") + c +
                           "' in claim formula");
    }
  }
  out.push_back({Tok::kEnd, "", col()});
  return out;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable& table, SourceLoc origin)
      : tokens_(std::move(tokens)), table_(table), origin_(origin) {}

  Formula run() {
    Formula f = parse_implies();
    if (peek().kind != Tok::kEnd) {
      throw ParseError(here(), "trailing input after claim formula: '" +
                                   peek().text + "'");
    }
    return f;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[index_]; }
  const Token& advance() { return tokens_[index_++]; }

  [[nodiscard]] SourceLoc here() const {
    return {origin_.line, origin_.column + peek().column - 1};
  }

  [[nodiscard]] bool at_name(std::string_view text) const {
    return peek().kind == Tok::kName && peek().text == text;
  }

  Formula parse_implies() {
    support::guard::DepthGuard depth(here());
    Formula left = parse_or();
    if (peek().kind == Tok::kImplies) {
      advance();
      return make_implies(std::move(left), parse_implies());
    }
    if (peek().kind == Tok::kIff) {
      advance();
      Formula right = parse_implies();
      return make_and(make_implies(left, right),
                      make_implies(right, left));
    }
    return left;
  }

  Formula parse_or() {
    Formula left = parse_and();
    while (peek().kind == Tok::kOr || at_name("or")) {
      advance();
      left = make_or(std::move(left), parse_and());
    }
    return left;
  }

  Formula parse_and() {
    Formula left = parse_temporal();
    while (peek().kind == Tok::kAnd || at_name("and")) {
      advance();
      left = make_and(std::move(left), parse_temporal());
    }
    return left;
  }

  Formula parse_temporal() {
    Formula left = parse_unary();
    if (at_name("U")) {
      advance();
      return make_until(std::move(left), parse_temporal());
    }
    if (at_name("W")) {
      advance();
      return make_weak_until(std::move(left), parse_temporal());
    }
    if (at_name("R")) {
      advance();
      return make_release(std::move(left), parse_temporal());
    }
    return left;
  }

  Formula parse_unary() {
    support::guard::DepthGuard depth(here());
    if (peek().kind == Tok::kNot || at_name("not")) {
      advance();
      return make_not(parse_unary());
    }
    if (at_name("X")) {
      advance();
      return make_next(parse_unary());
    }
    if (at_name("N")) {
      advance();
      return make_weak_next(parse_unary());
    }
    if (at_name("F")) {
      advance();
      return make_finally(parse_unary());
    }
    if (at_name("G")) {
      advance();
      return make_globally(parse_unary());
    }
    return parse_atom();
  }

  Formula parse_atom() {
    const Token& token = peek();
    if (token.kind == Tok::kLParen) {
      advance();
      Formula inner = parse_implies();
      if (peek().kind != Tok::kRParen) {
        throw ParseError(here(), "expected ')' in claim formula");
      }
      advance();
      return inner;
    }
    if (token.kind == Tok::kName) {
      advance();
      if (token.text == "true") return truth();
      if (token.text == "false") return falsity();
      if (token.text == "end") return end();
      return atom(table_.intern(token.text));
    }
    throw ParseError({origin_.line, origin_.column + token.column - 1},
                     "expected an atom in claim formula, found '" +
                         token.text + "'");
  }

  std::vector<Token> tokens_;
  SymbolTable& table_;
  SourceLoc origin_;
  std::size_t index_ = 0;
};

}  // namespace

Formula parse(std::string_view text, SymbolTable& table, SourceLoc origin) {
  support::guard::check_input_size(text.size(), origin);
  return Parser(lex(text, origin), table, origin).run();
}

}  // namespace shelley::ltlf
