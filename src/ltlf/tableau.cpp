#include "ltlf/tableau.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <utility>

#include "ltlf/eval.hpp"
#include "support/arena.hpp"
#include "support/guard.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::ltlf {

namespace {

struct FormulaLess {
  bool operator()(const Formula& a, const Formula& b) const {
    return structural_compare(a, b) < 0;
  }
};

// splitmix64 finalizer; frame hashes combine sequential formula ids with
// sparse bitset words, so spread both.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TableauResult check_tableau(const fsm::Nfa& system,
                            std::vector<Symbol> alphabet,
                            const Formula& formula, std::size_t max_frames) {
  support::trace::Span span("ltlf.tableau");
  TableauResult result;

  // A violation is a word of L(system) satisfying ¬φ; the tableau tracks
  // the progressed remainder of ¬φ frame by frame.  Same simplify +
  // alphabet join as to_dfa(make_not(φ), ...), so both engines search the
  // same joined letter space in the same sorted order.
  const Formula goal_seed = simplify(make_not(formula));
  for (Symbol s : atoms(goal_seed)) alphabet.push_back(s);
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  const std::size_t k = alphabet.size();

  if (system.state_count() == 0 || system.initial_states().empty()) {
    return result;  // L(system) is empty: nothing to violate
  }

  const fsm::Nfa::SymbolCsr csr = system.symbol_csr();
  const fsm::Nfa::ClosureTable closures = system.closures();
  const std::uint64_t* accepting = system.accepting_words();
  const std::size_t stride = closures.stride;

  // -- Formula interning (the ψ half of a frame) -------------------------
  std::map<Formula, std::uint32_t, FormulaLess> formula_ids;
  std::vector<Formula> formulas;
  std::vector<char> empty_ok;  // eval_empty memo, one per interned formula
  const auto intern = [&](const Formula& f) {
    const auto [it, inserted] =
        formula_ids.emplace(f, static_cast<std::uint32_t>(formulas.size()));
    if (inserted) {
      formulas.push_back(f);
      empty_ok.push_back(eval_empty(f) ? 1 : 0);
    }
    return it->second;
  };
  // Per-formula successor rows, filled lazily letter by letter (to_dfa
  // computes whole rows eagerly; the tableau's point is to touch only the
  // frames BFS actually reaches).
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::vector<std::uint32_t>> successor_rows;
  const auto formula_successor = [&](std::uint32_t fid, std::size_t letter) {
    if (successor_rows.size() < formulas.size()) {
      successor_rows.resize(formulas.size());
    }
    std::vector<std::uint32_t>& row = successor_rows[fid];
    if (row.empty()) row.assign(k, kUnset);
    if (row[letter] == kUnset) {
      // DNF canonicalization closes the frame space, exactly as in to_dfa.
      // (intern never touches successor_rows, so `row` stays valid; a
      // freshly interned formula gets its row on first expansion.)
      row[letter] =
          intern(to_dnf(progress(formulas[fid], alphabet[letter])));
    }
    return row[letter];
  };

  // -- Frame store (struct-of-arrays; bitset rows live in the arena) -----
  support::Arena arena;
  std::vector<std::uint32_t> frame_formula;
  std::vector<const std::uint64_t*> frame_bits;
  std::vector<std::uint32_t> frame_parent;
  std::vector<std::uint32_t> frame_letter;
  constexpr std::uint32_t kRoot = 0xffffffffu;

  // Open-addressed hash-cons of frames: slots hold frame_id + 1 (0 empty).
  std::vector<std::uint32_t> slots(1024, 0);
  std::size_t filled = 0;
  const auto frame_hash = [&](std::uint32_t fid, const std::uint64_t* bits) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < stride; ++i) {
      h ^= bits[i];
      h *= 1099511628211ull;
    }
    return mix(h ^ (std::uint64_t{fid} << 32 ^ fid));
  };
  const auto frame_equal = [&](std::uint32_t frame, std::uint32_t fid,
                               const std::uint64_t* bits) {
    return frame_formula[frame] == fid &&
           std::memcmp(frame_bits[frame], bits,
                       stride * sizeof(std::uint64_t)) == 0;
  };
  const auto rehash = [&] {
    std::vector<std::uint32_t> old(slots.size() * 2, 0);
    old.swap(slots);
    for (const std::uint32_t entry : old) {
      if (entry == 0) continue;
      const std::uint32_t frame = entry - 1;
      std::size_t at =
          frame_hash(frame_formula[frame], frame_bits[frame]) &
          (slots.size() - 1);
      while (slots[at] != 0) at = (at + 1) & (slots.size() - 1);
      slots[at] = entry;
    }
  };
  // Interns (fid, bits); returns the frame id and whether it was fresh.
  const auto intern_frame = [&](std::uint32_t fid, const std::uint64_t* bits,
                                std::uint32_t parent, std::uint32_t letter)
      -> std::pair<std::uint32_t, bool> {
    if ((filled + 1) * 10 >= slots.size() * 7) rehash();
    std::size_t at = frame_hash(fid, bits) & (slots.size() - 1);
    while (slots[at] != 0) {
      if (frame_equal(slots[at] - 1, fid, bits)) return {slots[at] - 1, false};
      at = (at + 1) & (slots.size() - 1);
    }
    auto* stored = arena.allocate_array<std::uint64_t>(stride);
    std::memcpy(stored, bits, stride * sizeof(std::uint64_t));
    const auto frame = static_cast<std::uint32_t>(frame_formula.size());
    frame_formula.push_back(fid);
    frame_bits.push_back(stored);
    frame_parent.push_back(parent);
    frame_letter.push_back(letter);
    slots[at] = frame + 1;
    ++filled;
    support::guard::check_states(frame_formula.size(), "LTLf tableau");
    return {frame, true};
  };

  const auto is_goal = [&](std::uint32_t fid, const std::uint64_t* bits) {
    if (empty_ok[fid] == 0) return false;  // pending strong obligations
    for (std::size_t i = 0; i < stride; ++i) {
      if ((bits[i] & accepting[i]) != 0) return true;
    }
    return false;
  };
  const auto reconstruct = [&](std::uint32_t frame) {
    Word word;
    for (; frame_letter[frame] != kRoot; frame = frame_parent[frame]) {
      word.push_back(alphabet[frame_letter[frame]]);
    }
    std::reverse(word.begin(), word.end());
    return word;
  };
  const auto finish = [&](TableauVerdict verdict) {
    result.verdict = verdict;
    result.frames = frame_formula.size();
    support::metrics::record_ltlf_states(result.frames);
    span.arg("frames", static_cast<std::uint64_t>(result.frames));
    span.arg("alphabet", static_cast<std::uint64_t>(k));
    span.arg("verdict",
             verdict == TableauVerdict::kHolds ? std::string_view("holds")
             : verdict == TableauVerdict::kCounterexample
                 ? std::string_view("counterexample")
                 : std::string_view("limited"));
    return result;
  };

  // -- Initial frame ------------------------------------------------------
  const fsm::StateSet initial = system.initial_closure();
  const std::uint32_t seed_id = intern(to_dnf(goal_seed));
  const auto [root, fresh] =
      intern_frame(seed_id, initial.words(), kRoot, kRoot);
  (void)fresh;
  if (is_goal(seed_id, frame_bits[root])) {
    result.counterexample = {};  // the empty word already violates
    return finish(TableauVerdict::kCounterexample);
  }

  // -- BFS ----------------------------------------------------------------
  std::vector<std::uint64_t> scratch(stride);
  std::size_t head = 0;
  while (head < frame_formula.size()) {
    if ((head & 0xFF) == 0) support::guard::check_deadline("ltlf.tableau");
    const auto current = static_cast<std::uint32_t>(head++);
    const std::uint32_t fid = frame_formula[current];
    const std::uint64_t* bits = frame_bits[current];
    for (std::size_t letter = 0; letter < k; ++letter) {
      if ((letter & 0xF) == 0xF) {
        support::guard::check_deadline("ltlf.tableau");
      }
      // Step-and-close: union the ε-closure rows of every target reached
      // from a set state on this letter (the kernel's word-parallel sweep).
      std::fill(scratch.begin(), scratch.end(), 0);
      bool any = false;
      const Symbol symbol = alphabet[letter];
      for (std::size_t word_at = 0; word_at < stride; ++word_at) {
        std::uint64_t word = bits[word_at];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          word &= word - 1;
          const auto state =
              static_cast<fsm::StateId>(word_at * 64 + bit);
          const std::uint32_t begin = csr.offsets[state];
          const std::uint32_t end = csr.offsets[state + 1];
          const Symbol* first = csr.symbols + begin;
          const Symbol* last = csr.symbols + end;
          const Symbol* at = std::lower_bound(first, last, symbol);
          for (; at != last && *at == symbol; ++at) {
            const fsm::StateId target = csr.targets[at - csr.symbols];
            const std::uint64_t* row = closures.row(target);
            for (std::size_t i = 0; i < stride; ++i) scratch[i] |= row[i];
            any = true;
          }
        }
      }
      // Dead branches cannot reach a goal (an empty state set stays empty,
      // a false remainder progresses to false) -- prune them; live frames'
      // BFS discovery order, and hence the witness, is unaffected.
      if (!any) continue;
      const std::uint32_t next_fid = formula_successor(fid, letter);
      if (formulas[next_fid]->kind() == Kind::kFalse) continue;
      const auto [next, inserted] = intern_frame(
          next_fid, scratch.data(), current,
          static_cast<std::uint32_t>(letter));
      if (!inserted) continue;  // loop check: revisits prove nothing new
      if (frame_formula.size() > max_frames) {
        result.limit = "tableau exceeded " + std::to_string(max_frames) +
                       " frames";
        return finish(TableauVerdict::kLimited);
      }
      if (is_goal(next_fid, frame_bits[next])) {
        result.counterexample = reconstruct(next);
        return finish(TableauVerdict::kCounterexample);
      }
    }
  }
  return finish(TableauVerdict::kHolds);
}

Satisfiability satisfiable(const Formula& formula,
                           std::vector<Symbol> alphabet,
                           std::size_t max_frames) {
  // The universal automaton must loop on the formula's own atoms too, or a
  // model mentioning them could never be simulated.
  for (Symbol s : atoms(formula)) alphabet.push_back(s);
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());

  fsm::Nfa universal;
  const fsm::StateId state = universal.add_state();
  universal.mark_initial(state);
  universal.mark_accepting(state);
  for (Symbol s : alphabet) universal.add_transition(state, s, state);

  // check_tableau(Σ*, Σ, ¬φ) hunts for a word satisfying ¬¬φ = φ.
  const TableauResult result =
      check_tableau(universal, alphabet, make_not(formula), max_frames);
  switch (result.verdict) {
    case TableauVerdict::kCounterexample:
      return Satisfiability::kSatisfiable;
    case TableauVerdict::kHolds:
      return Satisfiability::kUnsatisfiable;
    case TableauVerdict::kLimited:
      break;
  }
  return Satisfiability::kUnknown;
}

}  // namespace shelley::ltlf
