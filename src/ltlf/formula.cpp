#include "ltlf/formula.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <cassert>

namespace shelley::ltlf {

Node::Node(Kind kind, Symbol sym, Formula left, Formula right)
    : kind_(kind), sym_(sym), left_(std::move(left)), right_(std::move(right)) {
  size_ = 1;
  if (left_) size_ += left_->size();
  if (right_) size_ += right_->size();
}

namespace {

Formula make(Kind kind, Symbol sym, Formula left, Formula right) {
  return std::make_shared<const Node>(kind, sym, std::move(left),
                                      std::move(right));
}

void flatten(Kind kind, const Formula& f, std::vector<Formula>& out) {
  if (f->kind() == kind) {
    flatten(kind, f->left(), out);
    flatten(kind, f->right(), out);
  } else {
    out.push_back(f);
  }
}

/// Builds a canonical n-ary &/| from operands: sorted, deduped, constants
/// absorbed.  `unit` is the identity, `zero` the absorbing element.
Formula normalize_nary(Kind kind, std::vector<Formula> operands, Kind unit,
                       Kind zero) {
  std::vector<Formula> flat;
  for (const Formula& f : operands) flatten(kind, f, flat);
  std::vector<Formula> kept;
  for (const Formula& f : flat) {
    if (f->kind() == zero) return f;      // x & false = false
    if (f->kind() == unit) continue;      // x & true = x
    kept.push_back(f);
  }
  std::sort(kept.begin(), kept.end(), [](const Formula& a, const Formula& b) {
    return structural_compare(a, b) < 0;
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Formula& a, const Formula& b) {
                           return structural_compare(a, b) == 0;
                         }),
             kept.end());
  // Complementary pair: x & !x = false, x | !x = true.
  for (const Formula& f : kept) {
    if (f->kind() != Kind::kNot) continue;
    for (const Formula& g : kept) {
      if (structurally_equal(f->left(), g)) {
        return kind == Kind::kAnd ? falsity() : truth();
      }
    }
  }
  // Absorption: A | (A & B) = A  and  A & (A | B) = A.  Without it the
  // progression construction can produce unboundedly many structurally
  // distinct but logically equal states (monotone-function blowup).
  if (kept.size() > 1) {
    const Kind inner = kind == Kind::kAnd ? Kind::kOr : Kind::kAnd;
    // Terms of an operand at the dual level, sorted for subset tests.
    const auto terms = [&](const Formula& f) {
      std::vector<Formula> out;
      flatten(inner, f, out);
      std::sort(out.begin(), out.end(),
                [](const Formula& a, const Formula& b) {
                  return structural_compare(a, b) < 0;
                });
      return out;
    };
    const auto subset = [](const std::vector<Formula>& small,
                           const std::vector<Formula>& big) {
      return std::includes(big.begin(), big.end(), small.begin(),
                           small.end(),
                           [](const Formula& a, const Formula& b) {
                             return structural_compare(a, b) < 0;
                           });
    };
    std::vector<std::vector<Formula>> term_sets;
    term_sets.reserve(kept.size());
    for (const Formula& f : kept) term_sets.push_back(terms(f));
    std::vector<bool> absorbed(kept.size(), false);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      for (std::size_t j = 0; j < kept.size() && !absorbed[i]; ++j) {
        if (i == j || absorbed[j]) continue;
        // j absorbs i when j's term set is a strict-or-equal subset.
        if (term_sets[j].size() <= term_sets[i].size() &&
            !(term_sets[j].size() == term_sets[i].size()) &&
            subset(term_sets[j], term_sets[i])) {
          absorbed[i] = true;
        }
      }
    }
    std::vector<Formula> remaining;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (!absorbed[i]) remaining.push_back(kept[i]);
    }
    kept = std::move(remaining);
  }
  if (kept.empty()) return kind == Kind::kAnd ? truth() : falsity();
  Formula out = kept.back();
  for (std::size_t i = kept.size() - 1; i-- > 0;) {
    out = make(kind, Symbol{}, kept[i], std::move(out));
  }
  return out;
}

}  // namespace

Formula truth() {
  static const Formula instance = make(Kind::kTrue, Symbol{}, nullptr, nullptr);
  return instance;
}

Formula falsity() {
  static const Formula instance =
      make(Kind::kFalse, Symbol{}, nullptr, nullptr);
  return instance;
}

Formula end() {
  static const Formula instance = make(Kind::kEnd, Symbol{}, nullptr, nullptr);
  return instance;
}

Formula atom(Symbol s) {
  assert(s.valid());
  return make(Kind::kAtom, s, nullptr, nullptr);
}

Formula make_not(Formula f) {
  // Negation normal form: push the negation through every connective so
  // `!` only ever wraps atoms (and `end`).  Beyond being a tidy canonical
  // form, this is what keeps the progression construction finite in
  // practice: the ACI normalization of &/| can only merge states when
  // negations sit at the leaves (an opaque ¬(φ U ψ) would hide boolean
  // structure from it, and formulas like ¬((a U b) U F c) then generate
  // unboundedly many distinct states).
  switch (f->kind()) {
    case Kind::kTrue:
      return falsity();
    case Kind::kFalse:
      return truth();
    case Kind::kNot:
      return f->left();
    case Kind::kAnd:
      return make_or(make_not(f->left()), make_not(f->right()));
    case Kind::kOr:
      return make_and(make_not(f->left()), make_not(f->right()));
    case Kind::kNext:
      return make_weak_next(make_not(f->left()));
    case Kind::kWeakNext:
      return make_next(make_not(f->left()));
    case Kind::kUntil:
      return make_release(make_not(f->left()), make_not(f->right()));
    case Kind::kRelease:
      return make_until(make_not(f->left()), make_not(f->right()));
    case Kind::kEnd:
    case Kind::kAtom:
      return make(Kind::kNot, Symbol{}, std::move(f), nullptr);
  }
  return make(Kind::kNot, Symbol{}, std::move(f), nullptr);
}

Formula make_and(Formula a, Formula b) {
  return normalize_nary(Kind::kAnd, {std::move(a), std::move(b)},
                        Kind::kTrue, Kind::kFalse);
}

Formula make_or(Formula a, Formula b) {
  return normalize_nary(Kind::kOr, {std::move(a), std::move(b)},
                        Kind::kFalse, Kind::kTrue);
}

Formula make_next(Formula f) {
  if (f->kind() == Kind::kFalse) return falsity();  // X false never holds
  return make(Kind::kNext, Symbol{}, std::move(f), nullptr);
}

Formula make_weak_next(Formula f) {
  if (f->kind() == Kind::kTrue) return truth();  // N true always holds
  return make(Kind::kWeakNext, Symbol{}, std::move(f), nullptr);
}

Formula make_until(Formula a, Formula b) {
  if (b->kind() == Kind::kFalse) return falsity();
  if (b->kind() == Kind::kTrue) return truth();
  if (a->kind() == Kind::kFalse) return b;  // false U b = b
  if (structurally_equal(a, b)) return b;
  return make(Kind::kUntil, Symbol{}, std::move(a), std::move(b));
}

Formula make_release(Formula a, Formula b) {
  if (b->kind() == Kind::kTrue) return truth();
  if (b->kind() == Kind::kFalse) return falsity();
  if (a->kind() == Kind::kTrue) return b;  // true R b = b
  if (structurally_equal(a, b)) return b;
  return make(Kind::kRelease, Symbol{}, std::move(a), std::move(b));
}

Formula make_finally(Formula f) { return make_until(truth(), std::move(f)); }

Formula make_globally(Formula f) {
  return make_release(falsity(), std::move(f));
}

Formula make_weak_until(Formula a, Formula b) {
  // The paper: φ1 W φ2 = (φ1 U φ2) ∨ G φ1.
  Formula until_part = make_until(a, b);
  Formula globally_part = make_globally(a);
  return make_or(std::move(until_part), std::move(globally_part));
}

Formula make_implies(Formula a, Formula b) {
  return make_or(make_not(std::move(a)), std::move(b));
}

int structural_compare(const Formula& a, const Formula& b) {
  if (a.get() == b.get()) return 0;
  if (a->kind() != b->kind()) {
    return static_cast<int>(a->kind()) < static_cast<int>(b->kind()) ? -1 : 1;
  }
  switch (a->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kEnd:
      return 0;
    case Kind::kAtom:
      if (a->symbol() == b->symbol()) return 0;
      return a->symbol() < b->symbol() ? -1 : 1;
    case Kind::kNot:
    case Kind::kNext:
    case Kind::kWeakNext:
      return structural_compare(a->left(), b->left());
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kUntil:
    case Kind::kRelease: {
      const int c = structural_compare(a->left(), b->left());
      if (c != 0) return c;
      return structural_compare(a->right(), b->right());
    }
  }
  return 0;
}

bool structurally_equal(const Formula& a, const Formula& b) {
  return structural_compare(a, b) == 0;
}

namespace {

Formula rewrite_once(const Formula& f) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kEnd:
    case Kind::kAtom:
      return f;
    case Kind::kNot:
      return make_not(rewrite_once(f->left()));
    case Kind::kAnd:
      return make_and(rewrite_once(f->left()), rewrite_once(f->right()));
    case Kind::kOr:
      return make_or(rewrite_once(f->left()), rewrite_once(f->right()));
    case Kind::kNext: {
      Formula inner = rewrite_once(f->left());
      // X (φ & ψ) = X φ & X ψ is valid but grows the tree; instead only
      // collapse trivial cases here (constants are handled by make_next).
      return make_next(std::move(inner));
    }
    case Kind::kWeakNext:
      return make_weak_next(rewrite_once(f->left()));
    case Kind::kUntil: {
      Formula lhs = rewrite_once(f->left());
      Formula rhs = rewrite_once(f->right());
      // φ U (φ U ψ) = φ U ψ
      if (rhs->kind() == Kind::kUntil &&
          structurally_equal(lhs, rhs->left())) {
        return rhs;
      }
      // F F ψ = F ψ  (left = true both levels)
      if (lhs->kind() == Kind::kTrue && rhs->kind() == Kind::kUntil &&
          rhs->left()->kind() == Kind::kTrue) {
        return rhs;
      }
      return make_until(std::move(lhs), std::move(rhs));
    }
    case Kind::kRelease: {
      Formula lhs = rewrite_once(f->left());
      Formula rhs = rewrite_once(f->right());
      // φ R (φ R ψ) = φ R ψ   and   G G ψ = G ψ
      if (rhs->kind() == Kind::kRelease &&
          structurally_equal(lhs, rhs->left())) {
        return rhs;
      }
      return make_release(std::move(lhs), std::move(rhs));
    }
  }
  return f;
}

}  // namespace

Formula simplify(const Formula& f) {
  Formula current = f;
  for (int round = 0; round < 8; ++round) {  // defensive fixpoint bound
    Formula next = rewrite_once(current);
    if (structurally_equal(next, current)) return current;
    current = std::move(next);
  }
  return current;
}

namespace {

using Clause = std::vector<Formula>;  // conjunction of units, sorted

/// Merges two sorted unit-sets; nullopt when a complementary pair makes
/// the clause false.
std::optional<Clause> merge_clauses(const Clause& a, const Clause& b) {
  Clause out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const Formula& x, const Formula& y) {
               return structural_compare(x, y) < 0;
             });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Formula& x, const Formula& y) {
                          return structural_compare(x, y) == 0;
                        }),
            out.end());
  for (const Formula& f : out) {
    if (f->kind() != Kind::kNot) continue;
    for (const Formula& g : out) {
      if (structurally_equal(f->left(), g)) return std::nullopt;
    }
  }
  return out;
}

/// DNF clause sets; nullopt = clause budget exceeded.
std::optional<std::vector<Clause>> dnf_clauses(const Formula& f,
                                               std::size_t max_clauses) {
  switch (f->kind()) {
    case Kind::kOr: {
      auto lhs = dnf_clauses(f->left(), max_clauses);
      auto rhs = dnf_clauses(f->right(), max_clauses);
      if (!lhs || !rhs) return std::nullopt;
      lhs->insert(lhs->end(), rhs->begin(), rhs->end());
      if (lhs->size() > max_clauses) return std::nullopt;
      return lhs;
    }
    case Kind::kAnd: {
      auto lhs = dnf_clauses(f->left(), max_clauses);
      auto rhs = dnf_clauses(f->right(), max_clauses);
      if (!lhs || !rhs) return std::nullopt;
      std::vector<Clause> out;
      for (const Clause& a : *lhs) {
        for (const Clause& b : *rhs) {
          if (auto merged = merge_clauses(a, b)) {
            out.push_back(std::move(*merged));
            if (out.size() > max_clauses) return std::nullopt;
          }
        }
      }
      return out;
    }
    case Kind::kTrue:
      return std::vector<Clause>{{}};
    case Kind::kFalse:
      return std::vector<Clause>{};
    default:
      return std::vector<Clause>{{f}};
  }
}

}  // namespace

Formula to_dnf(const Formula& f, std::size_t max_clauses) {
  const auto clauses = dnf_clauses(f, max_clauses);
  if (!clauses) return f;  // budget exceeded: keep the original shape
  Formula out = falsity();
  for (const Clause& clause : *clauses) {
    Formula conj = truth();
    for (const Formula& unit : clause) {
      conj = make_and(std::move(conj), unit);
    }
    out = make_or(std::move(out), std::move(conj));
  }
  return out;
}

std::set<Symbol> atoms(const Formula& f) {
  std::set<Symbol> out;
  const std::function<void(const Formula&)> walk = [&](const Formula& node) {
    if (!node) return;
    if (node->kind() == Kind::kAtom) out.insert(node->symbol());
    walk(node->left());
    walk(node->right());
  };
  walk(f);
  return out;
}

namespace {

// Precedence mirrors the parser's ladder (parser.cpp): `|` binds loosest
// (1), then `&` (2), then the right-associative binary temporals U/R (3),
// then the unary prefixes !/X/N/F/G (4), then atoms (5).  A binary
// temporal's *left* operand sits at unary level -- `a & b U c` parses as
// `a & (b U c)` -- so printing `(a & b) U c` must parenthesize the left.
void print(const Formula& f, const SymbolTable& table, int parent_level,
           std::string& out) {
  const auto wrap = [&](int level, auto&& body) {
    const bool parens = level < parent_level;
    if (parens) out += '(';
    body();
    if (parens) out += ')';
  };
  switch (f->kind()) {
    case Kind::kTrue:
      out += "true";
      break;
    case Kind::kFalse:
      out += "false";
      break;
    case Kind::kEnd:
      out += "end";
      break;
    case Kind::kAtom:
      out += table.name(f->symbol());
      break;
    case Kind::kNot:
      wrap(4, [&] {
        out += '!';
        // NNF keeps `!` on atoms/end only, both at atom level already.
        print(f->left(), table, 5, out);
      });
      break;
    case Kind::kNext:
      wrap(4, [&] {
        out += "X ";
        print(f->left(), table, 4, out);
      });
      break;
    case Kind::kWeakNext:
      wrap(4, [&] {
        out += "N ";
        print(f->left(), table, 4, out);
      });
      break;
    case Kind::kAnd:
      wrap(2, [&] {
        print(f->left(), table, 2, out);
        out += " & ";
        print(f->right(), table, 2, out);
      });
      break;
    case Kind::kOr:
      wrap(1, [&] {
        print(f->left(), table, 1, out);
        out += " | ";
        print(f->right(), table, 1, out);
      });
      break;
    case Kind::kUntil:
      if (f->left()->kind() == Kind::kTrue) {
        wrap(4, [&] {
          out += "F ";
          print(f->right(), table, 4, out);
        });
        break;
      }
      wrap(3, [&] {
        print(f->left(), table, 4, out);
        out += " U ";
        print(f->right(), table, 3, out);  // right-associative chain
      });
      break;
    case Kind::kRelease:
      if (f->left()->kind() == Kind::kFalse) {
        wrap(4, [&] {
          out += "G ";
          print(f->right(), table, 4, out);
        });
        break;
      }
      wrap(3, [&] {
        print(f->left(), table, 4, out);
        out += " R ";
        print(f->right(), table, 3, out);  // right-associative chain
      });
      break;
  }
}

}  // namespace

std::string to_string(const Formula& f, const SymbolTable& table) {
  std::string out;
  print(f, table, 0, out);
  return out;
}

}  // namespace shelley::ltlf
