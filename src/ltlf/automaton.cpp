#include "ltlf/automaton.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "fsm/ops.hpp"
#include "ltlf/eval.hpp"
#include "support/guard.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::ltlf {

fsm::Dfa to_dfa(const Formula& formula, std::vector<Symbol> alphabet,
                std::size_t max_states) {
  support::trace::Span span("ltlf.to_dfa");
  // Global rewrites (F F φ = F φ, ...) shrink the progression state space;
  // language preservation is covered by the simplify tests.
  const Formula rewritten = simplify(formula);
  for (Symbol s : atoms(rewritten)) alphabet.push_back(s);
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());

  struct FormulaLess {
    bool operator()(const Formula& a, const Formula& b) const {
      return structural_compare(a, b) < 0;
    }
  };

  std::map<Formula, fsm::StateId, FormulaLess> ids;
  std::vector<Formula> states;
  const auto get_id = [&](const Formula& f) {
    const auto [it, inserted] =
        ids.emplace(f, static_cast<fsm::StateId>(states.size()));
    if (inserted) {
      states.push_back(f);
      support::guard::check_states(states.size(), "LTLf progression");
      if (states.size() > max_states) {
        throw support::guard::ResourceError(
            support::guard::Resource::kStateBudget, {},
            "ltlf::to_dfa: progression exceeded the state bound");
      }
    }
    return it->second;
  };

  const fsm::StateId start = get_id(to_dnf(rewritten));
  std::vector<std::vector<fsm::StateId>> rows;
  for (fsm::StateId current = 0; current < states.size(); ++current) {
    if ((current & 0xFF) == 0) support::guard::check_deadline("ltlf.to_dfa");
    const Formula state = states[current];
    std::vector<fsm::StateId> row(alphabet.size(), 0);
    for (std::size_t letter = 0; letter < alphabet.size(); ++letter) {
      // Each successor pays a progress + to_dnf, which on pathological
      // formulas (deep U/R nests over wide alphabets) is the expensive
      // step -- the per-state cadence above can leave 256·|Σ| of them
      // between deadline checks, so re-check inside the row too.
      if ((letter & 0xF) == 0xF) {
        support::guard::check_deadline("ltlf.to_dfa");
      }
      // DNF canonicalization is what closes the state space: progression
      // results that are logically equal become structurally equal.
      row[letter] = get_id(to_dnf(progress(state, alphabet[letter])));
    }
    rows.push_back(std::move(row));
  }

  fsm::Dfa dfa(states.size(), alphabet);
  dfa.set_initial(start);
  for (fsm::StateId state = 0; state < states.size(); ++state) {
    dfa.set_accepting(state, eval_empty(states[state]));
    for (std::size_t letter = 0; letter < alphabet.size(); ++letter) {
      dfa.set_transition(state, letter, rows[state][letter]);
    }
  }
  support::metrics::record_ltlf_states(states.size());
  span.arg("states", static_cast<std::uint64_t>(states.size()));
  span.arg("alphabet", static_cast<std::uint64_t>(alphabet.size()));
  return dfa;
}

std::optional<Word> counterexample(const fsm::Dfa& system,
                                   const Formula& formula) {
  support::trace::Span span("ltlf.check");
  // A violation is a word of the system language satisfying ¬φ.
  const fsm::Dfa violations = to_dfa(make_not(formula), system.alphabet());
  std::optional<Word> witness =
      fsm::inclusion_witness(system, fsm::complement(violations));
  span.arg("violated", witness ? std::string_view("true")
                               : std::string_view("false"));
  return witness;
}

}  // namespace shelley::ltlf
