// Linear temporal logic on finite traces (LTLf), the claim language of
// Shelley (§2.2).  Formulas are interpreted over finite words of event
// symbols; an atom `a.open` holds at a position iff that position's event is
// exactly `a.open`.
//
// Primitive connectives: true, false, End (holds exactly on the empty
// remaining trace), atoms, !, &, |, X (strong next), N (weak next),
// U (until), R (release).  Derived: F φ = true U φ;  G φ = false R φ;
// φ W ψ = (φ U ψ) | G φ  (the paper's weak-until definition);  φ -> ψ.
//
// The `make_*` constructors normalize: flatten/sort/dedupe n-ary &,|,
// absorb constants, cancel double negation.  Canonical structure makes the
// progression construction (automaton.hpp) terminate with small state sets.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "support/symbol.hpp"

namespace shelley::ltlf {

enum class Kind : std::uint8_t {
  kTrue,
  kFalse,
  kEnd,   // remaining trace is empty
  kAtom,  // current event equals the symbol
  kNot,
  kAnd,
  kOr,
  kNext,      // strong X
  kWeakNext,  // N
  kUntil,     // U
  kRelease,   // R
};

class Node;
using Formula = std::shared_ptr<const Node>;

class Node {
 public:
  Node(Kind kind, Symbol sym, Formula left, Formula right);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] Symbol symbol() const { return sym_; }
  [[nodiscard]] const Formula& left() const { return left_; }
  [[nodiscard]] const Formula& right() const { return right_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  Kind kind_;
  Symbol sym_;
  Formula left_;
  Formula right_;
  std::size_t size_;
};

// -- Normalizing constructors ------------------------------------------------

[[nodiscard]] Formula truth();
[[nodiscard]] Formula falsity();
[[nodiscard]] Formula end();
[[nodiscard]] Formula atom(Symbol s);
[[nodiscard]] Formula make_not(Formula f);
[[nodiscard]] Formula make_and(Formula a, Formula b);
[[nodiscard]] Formula make_or(Formula a, Formula b);
[[nodiscard]] Formula make_next(Formula f);
[[nodiscard]] Formula make_weak_next(Formula f);
[[nodiscard]] Formula make_until(Formula a, Formula b);
[[nodiscard]] Formula make_release(Formula a, Formula b);

// Derived forms.
[[nodiscard]] Formula make_finally(Formula f);
[[nodiscard]] Formula make_globally(Formula f);
[[nodiscard]] Formula make_weak_until(Formula a, Formula b);
[[nodiscard]] Formula make_implies(Formula a, Formula b);

// -- Queries -----------------------------------------------------------------

[[nodiscard]] int structural_compare(const Formula& a, const Formula& b);
[[nodiscard]] bool structurally_equal(const Formula& a, const Formula& b);

/// Atoms mentioned by the formula.
[[nodiscard]] std::set<Symbol> atoms(const Formula& f);

/// Equivalence-preserving rewriting beyond what the constructors do
/// locally: idempotent/absorption laws on U and R
/// (φ U (φ U ψ) = φ U ψ, G G φ = G φ, F F φ = F φ, X-distribution of &,|),
/// applied bottom-up to a fixed point.  Shrinks progression state spaces.
[[nodiscard]] Formula simplify(const Formula& f);

/// Disjunctive normal form over "units" (anything that is not &/| at the
/// top: literals, end, temporal operators).  The progression construction
/// canonicalizes every state through this: combined with the constructors'
/// absorption it makes logically equal states structurally equal, which is
/// what bounds the state space (alternating &/| nests otherwise grow
/// without ever becoming comparable).  Falls back to the input when the
/// clause count would exceed `max_clauses`.
[[nodiscard]] Formula to_dnf(const Formula& f,
                             std::size_t max_clauses = 4096);

/// Renders with the connective spellings of the paper: `(!a.open) W b.open`
/// prints as `!a.open U b.open | G !a.open` after W-desugaring; parentheses
/// are minimal.
[[nodiscard]] std::string to_string(const Formula& f,
                                    const SymbolTable& table);

}  // namespace shelley::ltlf
