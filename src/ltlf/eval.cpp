#include "ltlf/eval.hpp"

namespace shelley::ltlf {

bool eval_at(const Formula& f, const Word& word, std::size_t pos) {
  const bool at_end = pos >= word.size();
  switch (f->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kEnd:
      return at_end;
    case Kind::kAtom:
      return !at_end && word[pos] == f->symbol();
    case Kind::kNot:
      return !eval_at(f->left(), word, pos);
    case Kind::kAnd:
      return eval_at(f->left(), word, pos) && eval_at(f->right(), word, pos);
    case Kind::kOr:
      return eval_at(f->left(), word, pos) || eval_at(f->right(), word, pos);
    case Kind::kNext:
      // Strong next: a next *event* must exist.
      return pos + 1 < word.size() && eval_at(f->left(), word, pos + 1);
    case Kind::kWeakNext:
      return pos + 1 >= word.size() || eval_at(f->left(), word, pos + 1);
    case Kind::kUntil: {
      for (std::size_t j = pos; j < word.size(); ++j) {
        if (eval_at(f->right(), word, j)) return true;
        if (!eval_at(f->left(), word, j)) return false;
      }
      // Also allow the release point at the very end of the trace (beyond
      // the last event)?  No: U is strong -- ψ must hold at an actual
      // position, and the empty suffix offers none...  except that our
      // positions run to word.size() inclusive conceptually.  We follow the
      // standard LTLf reading: ψ must hold at a position < |word|.
      return false;
    }
    case Kind::kRelease: {
      // ψ holds at every position until and including the first position
      // where φ holds; if φ never holds, ψ must hold at every position.
      for (std::size_t j = pos; j < word.size(); ++j) {
        if (!eval_at(f->right(), word, j)) return false;
        if (eval_at(f->left(), word, j)) return true;
      }
      return true;
    }
  }
  return false;
}

bool eval(const Formula& f, const Word& word) { return eval_at(f, word, 0); }

bool eval_empty(const Formula& f) { return eval_at(f, {}, 0); }

Formula progress(const Formula& f, Symbol a) {
  switch (f->kind()) {
    case Kind::kTrue:
      return truth();
    case Kind::kFalse:
    case Kind::kEnd:  // consuming an event means the trace was not empty
      return falsity();
    case Kind::kAtom:
      return f->symbol() == a ? truth() : falsity();
    case Kind::kNot:
      return make_not(progress(f->left(), a));
    case Kind::kAnd:
      return make_and(progress(f->left(), a), progress(f->right(), a));
    case Kind::kOr:
      return make_or(progress(f->left(), a), progress(f->right(), a));
    case Kind::kNext:
      // a·l ⊨ X φ  iff  l ≠ ε and l ⊨ φ  iff  l ⊨ !end & φ.
      return make_and(make_not(end()), f->left());
    case Kind::kWeakNext:
      // a·l ⊨ N φ  iff  l = ε or l ⊨ φ.
      return make_or(end(), f->left());
    case Kind::kUntil: {
      // φ U ψ = ψ ∨ (φ ∧ X(φ U ψ)).
      Formula keep_going =
          make_and(progress(f->left(), a), make_and(make_not(end()), f));
      return make_or(progress(f->right(), a), std::move(keep_going));
    }
    case Kind::kRelease: {
      // φ R ψ = ψ ∧ (φ ∨ N(φ R ψ)).
      Formula continuation = make_or(end(), f);
      Formula release_now = make_or(progress(f->left(), a),
                                    std::move(continuation));
      return make_and(progress(f->right(), a), std::move(release_now));
    }
  }
  return falsity();
}

}  // namespace shelley::ltlf
