// Formula → DFA via progression.
//
// States are canonical (normalized) formulas; the transition on event `a`
// is progress(q, a); a state accepts iff the empty trace satisfies it.
// Correctness invariant (checked by tests against the eval oracle):
//     word ∈ L(to_dfa(φ, Σ))  iff  word ∈ Σ* and word ⊨ φ.
#pragma once

#include <vector>

#include "fsm/dfa.hpp"
#include "ltlf/formula.hpp"

namespace shelley::ltlf {

/// Translates `formula` into a complete DFA over `alphabet` (which is
/// joined with the formula's own atoms).  Throws std::runtime_error if the
/// construction exceeds `max_states`.  The default bound (64k states) is
/// generous for realistic claims while failing fast -- with bounded memory
/// -- on pathological formulas (e.g. negations of deeply nested temporal
/// subformulas, whose progression closure is doubly exponential).
[[nodiscard]] fsm::Dfa to_dfa(const Formula& formula,
                              std::vector<Symbol> alphabet,
                              std::size_t max_states = 1 << 16);

/// Checks that every word of L(system) satisfies `formula`; returns a
/// shortest violating word otherwise.
[[nodiscard]] std::optional<Word> counterexample(const fsm::Dfa& system,
                                                 const Formula& formula);

}  // namespace shelley::ltlf
