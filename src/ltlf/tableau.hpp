// On-the-fly LTLf tableau solver: checks a formula directly against the
// usage NFA, without ever determinizing either side.
//
// A frame is one obligation pair (S, ψ): S the ε-closed set of NFA states
// some prefix can reach, ψ the canonically progressed remainder of ¬φ that
// the prefix's continuations must satisfy for the prefix to extend into a
// violation.  The solver runs a breadth-first expansion over hash-consed
// frames -- formulas interned by structural identity, state sets stored as
// packed bitset rows in a `support::Arena` -- and stops at the first frame
// where S contains an accepting NFA state and ψ holds on the empty trace:
// the access word of that frame is a violating word of L(system).
//
// Finite traces make the construction simpler than an infinite-trace
// tableau: there is no PRUNE/loop rule because eventualities (X-requests,
// pending U right-hand sides) are exactly the strong operators, which
// eval_empty rejects -- a frame whose ψ still carries one simply is not
// accepting, and the hash-consed frame dedup is the loop check (revisiting
// a frame can never yield a new verdict).  BFS with letters in sorted order
// discovers, like `fsm::inclusion_witness`, the lexicographically least
// shortest witness, so the two engines return *identical* counterexamples
// -- the differential suite pins that, not just verdict agreement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsm/nfa.hpp"
#include "ltlf/formula.hpp"

namespace shelley::ltlf {

enum class TableauVerdict : std::uint8_t {
  kHolds,           // no word of L(system) violates the formula
  kCounterexample,  // `counterexample` is a shortest violating word
  kLimited,         // frame budget exhausted before a verdict
};

struct TableauResult {
  TableauVerdict verdict = TableauVerdict::kHolds;
  Word counterexample;  // meaningful only for kCounterexample
  std::string limit;    // human-readable reason, only for kLimited
  std::size_t frames = 0;  // frames explored (counterexamples exit early)
};

/// Checks that every word of L(system) ∩ alphabet* satisfies `formula`,
/// mirroring `ltlf::counterexample(determinize(system, alphabet), formula)`
/// verdict for verdict and witness for witness -- but on the fly: shallow
/// counterexamples are found after a handful of frames, long before either
/// the subset construction or the formula DFA would have been built.
/// `alphabet` is joined with the formula's own atoms, exactly as to_dfa
/// joins them.  Deadline and state-budget guards (`support::guard`) apply
/// and throw ResourceError; the solver's own `max_frames` cushion returns
/// kLimited instead, so callers with a fallback engine can keep going.
[[nodiscard]] TableauResult check_tableau(const fsm::Nfa& system,
                                          std::vector<Symbol> alphabet,
                                          const Formula& formula,
                                          std::size_t max_frames = 1 << 16);

enum class Satisfiability : std::uint8_t {
  kSatisfiable,
  kUnsatisfiable,
  kUnknown,  // frame budget exhausted
};

/// Is any finite word over `alphabet` a model of `formula`?  Runs the
/// tableau against the one-state universal automaton (Σ*); the claim lints
/// build on this: an unsatisfiable claim can never be met, a claim whose
/// negation is unsatisfiable is trivially true on this alphabet.
[[nodiscard]] Satisfiability satisfiable(const Formula& formula,
                                         std::vector<Symbol> alphabet,
                                         std::size_t max_frames = 1 << 12);

}  // namespace shelley::ltlf
