// Parser for claim formulas, accepting the paper's syntax
// (`(!a.open) W b.open`) plus the usual LTL spellings:
//
//   implies := or [('->' | '<->') implies]
//   or      := and (('|' | '||' | 'or') and)*
//   and     := temporal (('&' | '&&' | 'and') temporal)*
//   temporal:= unary [('U' | 'W' | 'R') temporal]        (right-assoc)
//   unary   := ('!' | '¬' | 'not' | 'X' | 'N' | 'F' | 'G') unary | atom
//   atom    := '(' implies ')' | 'true' | 'false' | 'end' | dotted-name
//
// Atoms are dotted event names (`a.open`) interned into the given table.
// Throws ParseError on malformed input.
#pragma once

#include <string_view>

#include "ltlf/formula.hpp"
#include "support/diagnostics.hpp"
#include "support/symbol.hpp"

namespace shelley::ltlf {

/// `origin` is the position of `text` inside its enclosing file (the
/// @claim annotation that carried it); error locations are reported
/// relative to it, so a claim on line 12 reports line 12.
[[nodiscard]] Formula parse(std::string_view text, SymbolTable& table,
                            SourceLoc origin = {1, 1});

}  // namespace shelley::ltlf
