// The streaming-monitor runtime: a StreamChecker owns the monitor states of
// a whole device fleet and checks batched event streams against one
// compiled class table (fsm/table.hpp) at millions of events per second.
//
// Sharding: every device id is assigned to one shard (hash of its name) at
// first sight, so all of a device's events are checked by the same worker
// in stream order and shards never share mutable state.  A batch is decoded
// on the calling thread (interning devices and operations into dense ids),
// then the per-shard event lists are swept in parallel on the shared
// ThreadPool.  Results are deterministic in the shard count: verdict
// counters are additive and violation reports are merged in global event
// order.
//
// Two wire formats:
//   * NDJSON  -- one {"device": "...", "op": "..."} object per line;
//                undecodable lines are counted (`malformed`), never fatal;
//   * SMEV    -- a length-prefixed binary frame format (see MONITORING.md):
//                "SMEV" | u64 body size | body, where the body is
//                u32 version | device table | op table | u64 event count |
//                (u32 device, u32 op) pairs.  Names are carried once per
//                frame; events are fixed 8-byte records.  Malformed frames
//                throw support::BinaryFormatError (a structured reject,
//                never UB).
//
// Violation reports carry the source-located diagnostics of the batch
// pipeline: operation name and declaration site, device, global event
// index, and the allowed-next set at the point of violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fsm/table.hpp"
#include "support/binary.hpp"
#include "support/source_location.hpp"

namespace shelley::monitor {

/// One rejected event.  `allowed` lists the operations that would have been
/// legal instead, in letter order; `loc` is the declaration site of the
/// offending operation when the caller provided one (unknown operations
/// have none).
struct Violation {
  std::uint64_t event_index = 0;         ///< 0-based index in the stream
  std::uint64_t device_event_index = 0;  ///< 0-based index within the device
  std::string device;
  std::string operation;
  SourceLoc loc;
  std::vector<std::string> allowed;
};

struct StreamStats {
  std::uint64_t events = 0;      ///< decoded events routed to a monitor
  std::uint64_t ok = 0;          ///< events accepted
  std::uint64_t violations = 0;  ///< rejected events (latched repeats too)
  std::uint64_t malformed = 0;   ///< undecodable NDJSON lines
  std::uint64_t devices = 0;     ///< distinct device ids seen
  std::uint64_t violations_dropped = 0;  ///< reports beyond max_violations
};

class StreamChecker {
 public:
  struct Options {
    /// Worker shards; 1 checks on the calling thread.
    std::size_t shards = 1;
    /// Violation reports retained (counting continues past the cap).
    std::size_t max_violations = 1024;
  };

  explicit StreamChecker(fsm::CompiledDfa table);
  StreamChecker(fsm::CompiledDfa table, Options options);

  /// Declaration sites for violation diagnostics, keyed by operation name
  /// (e.g. from ClassSpec::operations).
  void set_source_locations(std::unordered_map<std::string, SourceLoc> locs);

  /// Decodes and checks the complete ('\n'-terminated) NDJSON lines of
  /// `chunk`; returns the bytes consumed, so a chunked caller carries the
  /// trailing partial line into its next read.  (At end of input, append a
  /// final '\n' to flush the last line.)
  std::size_t ingest_ndjson(std::string_view chunk);

  /// Decodes and checks one SMEV frame *body* (everything after the
  /// "SMEV" | u64 size prefix).  Throws support::BinaryFormatError on any
  /// malformation; a throwing frame checks nothing.
  void ingest_binary(std::string_view body);

  /// Routes one already-decoded event (embedding callers, e.g. the daemon's
  /// inline event arrays).  Deferred: nothing is checked until flush() --
  /// or the next ingest_ndjson/ingest_binary call -- runs the batch.
  void ingest_event(std::string_view device, std::string_view op);

  /// Checks every event routed since the last batch.
  void flush();

  /// Per-device verdict latching mirrors core::Monitor: once a device
  /// violates, every later event of that device counts as a violation.
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] const StreamStats& stats() const { return stats_; }

  /// Fleet snapshot: devices whose usage is a valid complete lifecycle
  /// right now / latched violators / started but not completable-stopped.
  [[nodiscard]] std::uint64_t completed_devices() const;
  [[nodiscard]] std::uint64_t violated_devices() const;
  [[nodiscard]] std::uint64_t incomplete_devices() const;

  [[nodiscard]] const fsm::CompiledDfa& table() const { return table_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct DeviceState {
    std::uint32_t state = 0;
    bool violated = false;
    std::uint64_t events = 0;
    std::uint32_t shard = 0;
  };

  /// One decoded event, routed to its device's shard.  `op` indexes
  /// batch_ops_ (per-batch operation table: compiled letter + name).
  struct PendingEvent {
    std::uint32_t device = 0;
    std::uint32_t op = 0;
    std::uint64_t index = 0;
  };

  struct BatchOp {
    fsm::CompiledDfa::Letter letter = fsm::CompiledDfa::kNoLetter;
    std::string name;
  };

  struct ShardResult {
    std::uint64_t ok = 0;
    std::uint64_t violations = 0;
    std::uint64_t new_violators = 0;  ///< devices that latched this batch
    std::vector<Violation> reports;
  };

  std::uint32_t intern_device(std::string_view name);
  std::uint32_t intern_batch_op(std::string_view name);
  void route(std::uint32_t device, std::uint32_t op);
  void check_batch();
  void check_shard(std::size_t shard, ShardResult& result);

  fsm::CompiledDfa table_;
  Options options_;

  std::unordered_map<std::string, std::uint32_t> device_index_;
  std::vector<std::string> device_names_;
  std::vector<DeviceState> devices_;

  std::unordered_map<std::string, SourceLoc> locations_;

  // Per-batch scratch, cleared (capacity kept) after every check.
  std::vector<BatchOp> batch_ops_;
  std::unordered_map<std::string, std::uint32_t> batch_op_index_;
  std::vector<std::vector<PendingEvent>> shards_;
  std::size_t batch_events_ = 0;

  std::vector<Violation> violations_;
  StreamStats stats_;
};

/// Consumes as many complete length-prefixed SMEV frames
/// ("SMEV" | u64 body size | body) as `buffer` holds, feeding each body to
/// `checker`; returns the bytes consumed (a trailing partial frame stays
/// unconsumed for the caller's next read).  Throws BinaryFormatError on a
/// bad magic, an implausible size, or a malformed frame body.
std::size_t ingest_binary_stream(StreamChecker& checker,
                                 std::string_view buffer);

/// Encodes one SMEV frame (prefix included) from parallel device/op index
/// arrays -- the writer half of the wire format, used by the CLI's
/// `--emit-binary` converter, the benchmark, and tests.
[[nodiscard]] std::string encode_binary_frame(
    const std::vector<std::string>& devices,
    const std::vector<std::string>& ops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& events);

}  // namespace shelley::monitor
