#include "monitor/stream.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace shelley::monitor {

namespace {

constexpr char kFrameMagic[4] = {'S', 'M', 'E', 'V'};
constexpr std::uint32_t kFrameVersion = 1;

// Plausibility caps: a corrupted count must fail fast, not allocate.
constexpr std::uint64_t kMaxFrameNames = 1u << 22;
constexpr std::uint64_t kMaxFrameEvents = 1ull << 28;
constexpr std::uint64_t kMaxFrameBytes = 1ull << 32;

std::uint32_t read_u32_le(const char* at) {
  std::uint32_t value = 0;
  std::memcpy(&value, at, 4);
  if constexpr (std::endian::native != std::endian::little) {
    value = __builtin_bswap32(value);
  }
  return value;
}

}  // namespace

StreamChecker::StreamChecker(fsm::CompiledDfa table)
    : StreamChecker(std::move(table), Options{}) {}

StreamChecker::StreamChecker(fsm::CompiledDfa table, Options options)
    : table_(std::move(table)), options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.resize(options_.shards);
}

void StreamChecker::set_source_locations(
    std::unordered_map<std::string, SourceLoc> locs) {
  locations_ = std::move(locs);
}

std::uint32_t StreamChecker::intern_device(std::string_view name) {
  const auto it = device_index_.find(std::string(name));
  if (it != device_index_.end()) return it->second;
  const auto slot = static_cast<std::uint32_t>(devices_.size());
  DeviceState state;
  state.state = table_.initial();
  state.shard = static_cast<std::uint32_t>(
      std::hash<std::string_view>{}(name) % shards_.size());
  devices_.push_back(state);
  device_names_.emplace_back(name);
  device_index_.emplace(device_names_.back(), slot);
  return slot;
}

std::uint32_t StreamChecker::intern_batch_op(std::string_view name) {
  const auto it = batch_op_index_.find(std::string(name));
  if (it != batch_op_index_.end()) return it->second;
  const auto slot = static_cast<std::uint32_t>(batch_ops_.size());
  BatchOp op;
  op.letter = table_.letter_of(name);
  op.name = std::string(name);
  batch_ops_.push_back(std::move(op));
  batch_op_index_.emplace(batch_ops_.back().name, slot);
  return slot;
}

void StreamChecker::route(std::uint32_t device, std::uint32_t op) {
  PendingEvent event;
  event.device = device;
  event.op = op;
  event.index = stats_.events + batch_events_;
  ++batch_events_;
  shards_[devices_[device].shard].push_back(event);
}

std::size_t StreamChecker::ingest_ndjson(std::string_view chunk) {
  std::size_t consumed = 0;
  while (true) {
    const std::size_t newline = chunk.find('\n', consumed);
    if (newline == std::string_view::npos) break;
    const std::string_view line = chunk.substr(consumed, newline - consumed);
    consumed = newline + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    try {
      const JsonValue value = parse_json(line);
      const JsonValue* device = value.find("device");
      const JsonValue* op = value.find("op");
      if (device == nullptr || op == nullptr || !device->is_string() ||
          !op->is_string()) {
        ++stats_.malformed;
        continue;
      }
      route(intern_device(device->as_string()),
            intern_batch_op(op->as_string()));
    } catch (const JsonParseError&) {
      ++stats_.malformed;
    }
  }
  check_batch();
  return consumed;
}

void StreamChecker::ingest_binary(std::string_view body) {
  support::BinaryReader reader(body);
  if (reader.u32() != kFrameVersion) {
    throw support::BinaryFormatError("event frame version unsupported");
  }
  const std::uint64_t device_count = reader.u64();
  if (device_count > kMaxFrameNames) {
    throw support::BinaryFormatError("event frame device count implausible");
  }
  std::vector<std::uint32_t> frame_devices;
  frame_devices.reserve(device_count);
  for (std::uint64_t i = 0; i < device_count; ++i) {
    frame_devices.push_back(intern_device(reader.str()));
  }
  const std::uint64_t op_count = reader.u64();
  if (op_count > kMaxFrameNames) {
    throw support::BinaryFormatError("event frame op count implausible");
  }
  std::vector<std::uint32_t> frame_ops;
  frame_ops.reserve(op_count);
  for (std::uint64_t i = 0; i < op_count; ++i) {
    frame_ops.push_back(intern_batch_op(reader.str()));
  }
  const std::uint64_t event_count = reader.u64();
  if (event_count > kMaxFrameEvents) {
    throw support::BinaryFormatError("event frame event count implausible");
  }
  const std::string_view cells = reader.raw(event_count * 8);
  reader.expect_end();
  // Validate every record before routing the first one, so a malformed
  // frame checks nothing.
  for (std::uint64_t i = 0; i < event_count; ++i) {
    if (read_u32_le(cells.data() + i * 8) >= device_count ||
        read_u32_le(cells.data() + i * 8 + 4) >= op_count) {
      throw support::BinaryFormatError("event frame index out of range");
    }
  }
  for (std::uint64_t i = 0; i < event_count; ++i) {
    route(frame_devices[read_u32_le(cells.data() + i * 8)],
          frame_ops[read_u32_le(cells.data() + i * 8 + 4)]);
  }
  check_batch();
}

void StreamChecker::ingest_event(std::string_view device,
                                 std::string_view op) {
  route(intern_device(device), intern_batch_op(op));
}

void StreamChecker::flush() { check_batch(); }

void StreamChecker::check_shard(std::size_t shard, ShardResult& result) {
  std::vector<fsm::CompiledDfa::Letter> allowed;
  for (const PendingEvent& event : shards_[shard]) {
    DeviceState& device = devices_[event.device];
    const std::uint64_t device_index = device.events++;
    if (device.violated) {
      // Latched, like core::Monitor: every later event of a violated
      // device is a violation but only the latching event is reported.
      ++result.violations;
      continue;
    }
    const BatchOp& op = batch_ops_[event.op];
    const std::uint32_t prev = device.state;
    bool violated = false;
    if (op.letter == fsm::CompiledDfa::kNoLetter) {
      violated = true;  // outside the class alphabet; state does not move
    } else {
      const std::uint32_t next = table_.step(prev, op.letter);
      if (!table_.live(next)) {
        violated = true;
        device.state = next;
      } else {
        device.state = next;
      }
    }
    if (!violated) {
      ++result.ok;
      continue;
    }
    device.violated = true;
    ++result.violations;
    ++result.new_violators;
    // Per-shard report lists are in stream order, so capping each shard at
    // max_violations still reconstructs the exact global first-K after the
    // merge sort (no shard can contribute more than K of the first K).
    if (result.reports.size() < options_.max_violations) {
      Violation report;
      report.event_index = event.index;
      report.device_event_index = device_index;
      report.device = device_names_[event.device];
      report.operation = op.name;
      const auto loc = locations_.find(op.name);
      if (loc != locations_.end()) report.loc = loc->second;
      allowed.clear();
      table_.allowed_letters(prev, allowed);
      report.allowed.reserve(allowed.size());
      for (const fsm::CompiledDfa::Letter letter : allowed) {
        report.allowed.push_back(table_.event_name(letter));
      }
      result.reports.push_back(std::move(report));
    }
  }
}

void StreamChecker::check_batch() {
  if (batch_events_ != 0) {
    std::vector<ShardResult> results(shards_.size());
    support::parallel_for(shards_.size(), shards_.size(),
                          [&](std::size_t shard) {
                            check_shard(shard, results[shard]);
                          });
    std::uint64_t new_violators = 0;
    std::vector<Violation> merged;
    for (ShardResult& result : results) {
      stats_.ok += result.ok;
      stats_.violations += result.violations;
      new_violators += result.new_violators;
      for (Violation& report : result.reports) {
        merged.push_back(std::move(report));
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Violation& a, const Violation& b) {
                return a.event_index < b.event_index;
              });
    std::uint64_t appended = 0;
    for (Violation& report : merged) {
      if (violations_.size() >= options_.max_violations) break;
      violations_.push_back(std::move(report));
      ++appended;
    }
    stats_.violations_dropped += new_violators - appended;
    stats_.events += batch_events_;
  }
  stats_.devices = devices_.size();
  batch_ops_.clear();
  batch_op_index_.clear();
  for (std::vector<PendingEvent>& shard : shards_) shard.clear();
  batch_events_ = 0;
}

std::uint64_t StreamChecker::completed_devices() const {
  std::uint64_t count = 0;
  for (const DeviceState& device : devices_) {
    if (!device.violated && table_.accepting(device.state)) ++count;
  }
  return count;
}

std::uint64_t StreamChecker::violated_devices() const {
  std::uint64_t count = 0;
  for (const DeviceState& device : devices_) {
    if (device.violated) ++count;
  }
  return count;
}

std::uint64_t StreamChecker::incomplete_devices() const {
  std::uint64_t count = 0;
  for (const DeviceState& device : devices_) {
    if (!device.violated && !table_.accepting(device.state)) ++count;
  }
  return count;
}

std::size_t ingest_binary_stream(StreamChecker& checker,
                                 std::string_view buffer) {
  std::size_t consumed = 0;
  while (buffer.size() - consumed >= 12) {
    if (std::memcmp(buffer.data() + consumed, kFrameMagic, 4) != 0) {
      throw support::BinaryFormatError("event frame magic mismatch");
    }
    std::uint64_t body_size = 0;
    std::memcpy(&body_size, buffer.data() + consumed + 4, 8);
    if constexpr (std::endian::native != std::endian::little) {
      body_size = __builtin_bswap64(body_size);
    }
    if (body_size > kMaxFrameBytes) {
      throw support::BinaryFormatError("event frame size implausible");
    }
    if (buffer.size() - consumed - 12 < body_size) break;  // partial frame
    checker.ingest_binary(
        buffer.substr(consumed + 12, static_cast<std::size_t>(body_size)));
    consumed += 12 + static_cast<std::size_t>(body_size);
  }
  return consumed;
}

std::string encode_binary_frame(
    const std::vector<std::string>& devices,
    const std::vector<std::string>& ops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& events) {
  support::BinaryWriter body;
  body.u32(kFrameVersion);
  body.u64(devices.size());
  for (const std::string& device : devices) body.str(device);
  body.u64(ops.size());
  for (const std::string& op : ops) body.str(op);
  body.u64(events.size());
  for (const auto& [device, op] : events) {
    body.u32(device);
    body.u32(op);
  }
  support::BinaryWriter frame;
  frame.raw(std::string_view(kFrameMagic, 4));
  frame.u64(body.bytes().size());
  frame.raw(body.bytes());
  return frame.take();
}

}  // namespace shelley::monitor
