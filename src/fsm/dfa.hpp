// Deterministic finite automata with a dense, always-complete transition
// table over an explicit alphabet.  Produced from Nfa by subset construction
// (ops.hpp); all boolean-algebra operations (product, complement, inclusion)
// work on Dfa.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "fsm/nfa.hpp"
#include "support/symbol.hpp"

namespace shelley::fsm {

class Dfa {
 public:
  /// Creates a DFA with `state_count` states over `alphabet` (sorted,
  /// duplicate-free).  All transitions initially self-loop on state 0;
  /// callers must set every entry they care about.  State 0 is conventionally
  /// the initial state unless changed.
  Dfa(std::size_t state_count, std::vector<Symbol> alphabet);

  /// Builds a DFA from a fully materialized dense table (state-major,
  /// `accepting.size() * alphabet.size()` entries).  Validates that every
  /// target is in range; lets batch algorithms (minimization) skip the
  /// per-cell `set_transition` calls.
  static Dfa from_table(std::vector<Symbol> alphabet,
                        std::vector<StateId> table, std::vector<bool> accepting,
                        StateId initial);

  [[nodiscard]] std::size_t state_count() const { return state_count_; }
  [[nodiscard]] const std::vector<Symbol>& alphabet() const {
    return alphabet_;
  }

  /// Index of `symbol` in the alphabet, if present.
  [[nodiscard]] std::optional<std::size_t> letter_index(Symbol symbol) const;

  void set_initial(StateId state) { initial_ = state; }
  [[nodiscard]] StateId initial() const { return initial_; }

  void set_accepting(StateId state, bool accepting);
  [[nodiscard]] bool is_accepting(StateId state) const {
    return (accepting_words_[state / 64] >> (state % 64)) & 1;
  }

  /// Accepting states as a packed bitmap, one bit per state.  Word-parallel
  /// sweeps (reachability, lazy product search) read this directly.
  [[nodiscard]] const std::uint64_t* accepting_words() const {
    return accepting_words_.data();
  }
  [[nodiscard]] std::size_t accepting_word_count() const {
    return accepting_words_.size();
  }

  void set_transition(StateId from, std::size_t letter, StateId to);
  [[nodiscard]] StateId transition(StateId from, std::size_t letter) const;

  /// Read-only view of the dense table (state-major).  The automata-kernel
  /// fast paths iterate this directly instead of paying an out-of-line
  /// `transition()` call per cell.
  [[nodiscard]] const std::vector<StateId>& transition_table() const {
    return table_;
  }

  /// Runs the word; symbols outside the alphabet reject.
  [[nodiscard]] bool accepts(const Word& word) const;

  /// The state reached after consuming `word` from the initial state, or
  /// nullopt if a symbol is outside the alphabet.
  [[nodiscard]] std::optional<StateId> run(const Word& word) const;

  [[nodiscard]] std::size_t accepting_count() const;

 private:
  std::vector<Symbol> alphabet_;  // sorted
  std::vector<StateId> table_;    // state_count x alphabet size
  // Accepting-state bitmap; bit s of word s/64.  Packed words instead of
  // vector<bool> so kernel sweeps can AND whole words at a time.
  std::vector<std::uint64_t> accepting_words_;
  std::size_t state_count_ = 0;
  StateId initial_ = 0;
};

}  // namespace shelley::fsm
