// Nondeterministic finite automata over interned event symbols, with
// ε-transitions.  This is the executable form of the behavioral models the
// paper extracts: class specifications (§3.1), inferred method behaviors
// (§3.2), and composed system behaviors all compile to Nfa.
//
// Storage is flat and contiguous (docs/KERNEL.md): transitions append to one
// vector (the stable iteration order every renderer depends on), while the
// hot paths read lazily built, cached views -- a per-state CSR of
// symbol-sorted (symbol, target) runs, a separate ε-CSR, a packed ε-closure
// table (one uint64 row per state), an accepting-state bitmap, and a sorted
// alphabet vector.  Every structural mutation invalidates the views; they
// are rebuilt on next use with O(1) large allocations each.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fsm/state_set.hpp"
#include "support/symbol.hpp"

namespace shelley::fsm {

struct Transition {
  StateId from = 0;
  Symbol symbol;  // invalid Symbol means ε
  StateId to = 0;

  [[nodiscard]] bool is_epsilon() const { return !symbol.valid(); }
};

class Nfa {
 public:
  Nfa() = default;

  /// Adds a fresh state and returns its id.
  StateId add_state();
  /// Adds `count` fresh states; returns the first id.
  StateId add_states(std::size_t count);

  void add_transition(StateId from, Symbol symbol, StateId to);
  void add_epsilon(StateId from, StateId to);

  void mark_initial(StateId state);
  void mark_accepting(StateId state);

  [[nodiscard]] std::size_t state_count() const { return state_count_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }
  /// Initial states, sorted ascending.
  [[nodiscard]] const std::vector<StateId>& initial_states() const {
    return initial_;
  }
  /// Accepting states, sorted ascending.
  [[nodiscard]] const std::vector<StateId>& accepting_states() const {
    return accepting_;
  }
  [[nodiscard]] bool is_accepting(StateId state) const;

  /// Every symbol labelling a transition, sorted by id and duplicate-free.
  /// Computed once per automaton and cached (mutations invalidate).
  [[nodiscard]] const std::vector<Symbol>& alphabet() const;

  // Flat views for the automata kernel (ops.cpp).  Built lazily, cached,
  // and invalidated by any structural mutation, so interleaving mutation
  // with queries is valid but wasteful.  Not thread-safe.

  /// Compressed-sparse-row view of the non-ε transitions: state s's run is
  /// symbols[offsets[s]..offsets[s+1]) / targets[...], sorted by symbol id
  /// (ties keep insertion order).
  struct SymbolCsr {
    const std::uint32_t* offsets = nullptr;  // state_count + 1 entries
    const Symbol* symbols = nullptr;
    const StateId* targets = nullptr;
  };
  [[nodiscard]] SymbolCsr symbol_csr() const;

  /// CSR view of the ε-transitions only (no symbols).
  struct EpsilonCsr {
    const std::uint32_t* offsets = nullptr;  // state_count + 1 entries
    const StateId* targets = nullptr;
  };
  [[nodiscard]] EpsilonCsr epsilon_csr() const;

  /// The per-state ε-closure table: row s is `stride` packed uint64 words
  /// (bit t of row s set iff t ∈ closure(s); the self bit is always set).
  struct ClosureTable {
    const std::uint64_t* words = nullptr;  // state_count rows
    std::size_t stride = 0;                // words per row

    [[nodiscard]] const std::uint64_t* row(StateId state) const {
      return words + static_cast<std::size_t>(state) * stride;
    }
  };
  [[nodiscard]] ClosureTable closures() const;

  /// Accepting states as a packed bitmap of `closure stride` words.
  [[nodiscard]] const std::uint64_t* accepting_words() const;

  // Set-valued convenience wrappers over the flat views, used by word
  // simulation and the test suites.

  /// ε-closure of a state set.
  [[nodiscard]] std::set<StateId> epsilon_closure(
      const std::set<StateId>& states) const;

  /// States reachable from `states` through one `symbol` edge (no closure).
  [[nodiscard]] std::set<StateId> step(const std::set<StateId>& states,
                                       Symbol symbol) const;

  /// ε-closure of a bitset of states.
  [[nodiscard]] StateSet epsilon_closure(const StateSet& states) const;

  /// The ε-closed set of initial states.
  [[nodiscard]] StateSet initial_closure() const;

  /// One-symbol successors of a bitset of states (no closure).
  [[nodiscard]] StateSet step(const StateSet& states, Symbol symbol) const;

  /// True when `states` contains an accepting state.
  [[nodiscard]] bool any_accepting(const StateSet& states) const;

  /// Word membership by on-the-fly subset simulation.
  [[nodiscard]] bool accepts(const Word& word) const;

  /// Appends another automaton; returns the state-id offset applied to the
  /// other automaton's states.  Initial/accepting markings of `other` are
  /// NOT imported -- the caller wires the two machines together.
  StateId import_states(const Nfa& other);

 private:
  void check_state(StateId state) const;
  void invalidate() const;
  void ensure_csr() const;
  void ensure_closures() const;

  std::size_t state_count_ = 0;
  std::vector<Transition> transitions_;  // append order
  std::vector<StateId> initial_;         // sorted, duplicate-free
  std::vector<StateId> accepting_;       // sorted, duplicate-free

  // Lazily built flat views (see class comment).
  mutable bool csr_dirty_ = true;
  mutable bool closures_dirty_ = true;
  mutable bool alphabet_dirty_ = true;
  mutable bool accepting_dirty_ = true;
  mutable std::vector<std::uint32_t> csr_off_;   // state_count + 1
  mutable std::vector<Symbol> csr_sym_;
  mutable std::vector<StateId> csr_to_;
  mutable std::vector<std::uint32_t> eps_off_;   // state_count + 1
  mutable std::vector<StateId> eps_to_;
  mutable std::vector<std::uint64_t> closure_words_;    // state_count * stride
  mutable std::vector<std::uint64_t> accepting_words_;  // stride words
  mutable std::size_t stride_ = 0;
  mutable std::vector<Symbol> alphabet_;
};

}  // namespace shelley::fsm
