// Nondeterministic finite automata over interned event symbols, with
// ε-transitions.  This is the executable form of the behavioral models the
// paper extracts: class specifications (§3.1), inferred method behaviors
// (§3.2), and composed system behaviors all compile to Nfa.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fsm/state_set.hpp"
#include "support/symbol.hpp"

namespace shelley::fsm {

struct Transition {
  StateId from = 0;
  Symbol symbol;  // invalid Symbol means ε
  StateId to = 0;

  [[nodiscard]] bool is_epsilon() const { return !symbol.valid(); }
};

class Nfa {
 public:
  Nfa() = default;

  /// Adds a fresh state and returns its id.
  StateId add_state();
  /// Adds `count` fresh states; returns the first id.
  StateId add_states(std::size_t count);

  void add_transition(StateId from, Symbol symbol, StateId to);
  void add_epsilon(StateId from, StateId to);

  void mark_initial(StateId state);
  void mark_accepting(StateId state);

  [[nodiscard]] std::size_t state_count() const { return state_count_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] const std::set<StateId>& initial_states() const {
    return initial_;
  }
  [[nodiscard]] const std::set<StateId>& accepting_states() const {
    return accepting_;
  }
  [[nodiscard]] bool is_accepting(StateId state) const {
    return accepting_.contains(state);
  }

  /// Every symbol labelling a transition.
  [[nodiscard]] std::set<Symbol> alphabet() const;

  /// ε-closure of a state set.
  [[nodiscard]] std::set<StateId> epsilon_closure(
      const std::set<StateId>& states) const;

  /// States reachable from `states` through one `symbol` edge (no closure).
  [[nodiscard]] std::set<StateId> step(const std::set<StateId>& states,
                                       Symbol symbol) const;

  // Bitset variants of the set operations above (see state_set.hpp), used by
  // subset construction and word simulation.  Per-state ε-closures are
  // computed once per automaton and cached; the cache is invalidated by any
  // structural mutation, so interleaving mutation with closure queries is
  // valid but wasteful.  Not thread-safe.

  /// ε-closure of a single state, from the per-state cache.
  [[nodiscard]] const StateSet& state_closure(StateId state) const;

  /// ε-closure of a bitset of states.
  [[nodiscard]] StateSet epsilon_closure(const StateSet& states) const;

  /// The ε-closed set of initial states.
  [[nodiscard]] StateSet initial_closure() const;

  /// One-symbol successors of a bitset of states (no closure).
  [[nodiscard]] StateSet step(const StateSet& states, Symbol symbol) const;

  /// True when `states` contains an accepting state.
  [[nodiscard]] bool any_accepting(const StateSet& states) const;

  /// Word membership by on-the-fly subset simulation.
  [[nodiscard]] bool accepts(const Word& word) const;

  /// Appends another automaton; returns the state-id offset applied to the
  /// other automaton's states.  Initial/accepting markings of `other` are
  /// NOT imported -- the caller wires the two machines together.
  StateId import_states(const Nfa& other);

 private:
  void check_state(StateId state) const;
  void ensure_closures() const;

  std::size_t state_count_ = 0;
  std::vector<Transition> transitions_;
  // Adjacency index: per-state list of indexes into transitions_.
  std::vector<std::vector<std::uint32_t>> out_edges_;
  std::set<StateId> initial_;
  std::set<StateId> accepting_;
  // Lazily computed per-state ε-closures (see state_closure).
  mutable std::vector<StateSet> closures_;
  mutable bool closures_dirty_ = true;
};

}  // namespace shelley::fsm
