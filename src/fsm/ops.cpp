#include "fsm/ops.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <stdexcept>

namespace shelley::fsm {
namespace {

std::vector<Symbol> sorted_union(const std::vector<Symbol>& a,
                                 const std::vector<Symbol>& b) {
  std::vector<Symbol> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

Dfa determinize(const Nfa& nfa, std::vector<Symbol> alphabet) {
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  for (Symbol s : nfa.alphabet()) {
    if (!std::binary_search(alphabet.begin(), alphabet.end(), s)) {
      throw std::invalid_argument(
          "determinize: alphabet does not cover the NFA's labels");
    }
  }

  // Map from NFA state-set to DFA state id; state sets are ε-closed.
  std::map<std::set<StateId>, StateId> ids;
  std::vector<std::set<StateId>> sets;
  const auto get_id = [&](std::set<StateId> set) {
    const auto [it, inserted] =
        ids.emplace(std::move(set), static_cast<StateId>(sets.size()));
    if (inserted) sets.push_back(it->first);
    return it->second;
  };

  const StateId start = get_id(nfa.epsilon_closure(nfa.initial_states()));
  std::vector<std::vector<StateId>> rows;  // per DFA state, per letter
  for (StateId current = 0; current < sets.size(); ++current) {
    std::vector<StateId> row(alphabet.size(), 0);
    for (std::size_t letter = 0; letter < alphabet.size(); ++letter) {
      row[letter] =
          get_id(nfa.epsilon_closure(nfa.step(sets[current], alphabet[letter])));
    }
    rows.push_back(std::move(row));
  }

  Dfa dfa(sets.size(), alphabet);
  dfa.set_initial(start);
  for (StateId state = 0; state < sets.size(); ++state) {
    for (std::size_t letter = 0; letter < alphabet.size(); ++letter) {
      dfa.set_transition(state, letter, rows[state][letter]);
    }
    for (StateId nfa_state : sets[state]) {
      if (nfa.is_accepting(nfa_state)) {
        dfa.set_accepting(state, true);
        break;
      }
    }
  }
  return dfa;
}

Dfa determinize(const Nfa& nfa) {
  const std::set<Symbol> sigma = nfa.alphabet();
  return determinize(nfa, std::vector<Symbol>(sigma.begin(), sigma.end()));
}

Dfa minimize(const Dfa& dfa) {
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();

  // Restrict to reachable states first (unreachable states would distort the
  // partition refinement's block count, though not its correctness).
  std::vector<bool> reachable(n, false);
  {
    std::deque<StateId> work{dfa.initial()};
    reachable[dfa.initial()] = true;
    while (!work.empty()) {
      const StateId s = work.front();
      work.pop_front();
      for (std::size_t letter = 0; letter < k; ++letter) {
        const StateId t = dfa.transition(s, letter);
        if (!reachable[t]) {
          reachable[t] = true;
          work.push_back(t);
        }
      }
    }
  }

  // Moore refinement: start from {accepting, rejecting}, split until stable.
  std::vector<int> block(n, -1);
  for (StateId s = 0; s < n; ++s) {
    if (reachable[s]) block[s] = dfa.is_accepting(s) ? 1 : 0;
  }
  std::size_t block_count = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current block, blocks of successors).
    std::map<std::vector<int>, int> signature_to_block;
    std::vector<int> next_block(n, -1);
    int next_count = 0;
    for (StateId s = 0; s < n; ++s) {
      if (!reachable[s]) continue;
      std::vector<int> signature;
      signature.reserve(k + 1);
      signature.push_back(block[s]);
      for (std::size_t letter = 0; letter < k; ++letter) {
        signature.push_back(block[dfa.transition(s, letter)]);
      }
      const auto [it, inserted] =
          signature_to_block.emplace(std::move(signature), next_count);
      if (inserted) ++next_count;
      next_block[s] = it->second;
    }
    if (static_cast<std::size_t>(next_count) != block_count) changed = true;
    block = std::move(next_block);
    block_count = static_cast<std::size_t>(next_count);
  }

  Dfa out(block_count, dfa.alphabet());
  out.set_initial(static_cast<StateId>(block[dfa.initial()]));
  for (StateId s = 0; s < n; ++s) {
    if (!reachable[s]) continue;
    const auto b = static_cast<StateId>(block[s]);
    if (dfa.is_accepting(s)) out.set_accepting(b, true);
    for (std::size_t letter = 0; letter < k; ++letter) {
      out.set_transition(b, letter,
                         static_cast<StateId>(block[dfa.transition(s, letter)]));
    }
  }
  return out;
}

Nfa reverse(const Nfa& nfa) {
  Nfa out;
  out.add_states(nfa.state_count());
  for (const Transition& t : nfa.transitions()) {
    out.add_transition(t.to, t.symbol, t.from);
  }
  for (StateId s : nfa.accepting_states()) out.mark_initial(s);
  for (StateId s : nfa.initial_states()) out.mark_accepting(s);
  return out;
}

Dfa minimize_brzozowski(const Dfa& dfa) {
  const std::vector<Symbol> alphabet = dfa.alphabet();
  const Dfa reversed = determinize(reverse(to_nfa(dfa)), alphabet);
  return determinize(reverse(to_nfa(reversed)), alphabet);
}

Dfa extend_alphabet(const Dfa& dfa, const std::vector<Symbol>& alphabet) {
  std::vector<Symbol> sigma = alphabet;
  std::sort(sigma.begin(), sigma.end());
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  const std::vector<Symbol> joined = sorted_union(sigma, dfa.alphabet());

  // Fresh rejecting sink for the new letters.
  const std::size_t n = dfa.state_count();
  const StateId sink = static_cast<StateId>(n);
  Dfa out(n + 1, joined);
  out.set_initial(dfa.initial());
  for (StateId s = 0; s < n; ++s) {
    out.set_accepting(s, dfa.is_accepting(s));
  }
  for (StateId s = 0; s <= n; ++s) {
    for (std::size_t letter = 0; letter < joined.size(); ++letter) {
      const auto old_letter = dfa.letter_index(joined[letter]);
      const StateId to = (s == sink || !old_letter)
                             ? sink
                             : dfa.transition(s, *old_letter);
      out.set_transition(s, letter, to);
    }
  }
  return out;
}

Dfa extend_alphabet_ignore(const Dfa& dfa,
                           const std::vector<Symbol>& alphabet) {
  std::vector<Symbol> sigma = alphabet;
  std::sort(sigma.begin(), sigma.end());
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  const std::vector<Symbol> joined = sorted_union(sigma, dfa.alphabet());

  const std::size_t n = dfa.state_count();
  Dfa out(n, joined);
  out.set_initial(dfa.initial());
  for (StateId s = 0; s < n; ++s) {
    out.set_accepting(s, dfa.is_accepting(s));
    for (std::size_t letter = 0; letter < joined.size(); ++letter) {
      const auto old_letter = dfa.letter_index(joined[letter]);
      out.set_transition(s, letter,
                         old_letter ? dfa.transition(s, *old_letter) : s);
    }
  }
  return out;
}

Dfa product(const Dfa& a, const Dfa& b, ProductMode mode) {
  if (a.alphabet() != b.alphabet()) {
    throw std::invalid_argument(
        "product: alphabets differ; call extend_alphabet first");
  }
  const std::size_t k = a.alphabet().size();
  const std::size_t n = a.state_count();
  const std::size_t m = b.state_count();
  Dfa out(n * m, a.alphabet());
  const auto pair_id = [m](StateId x, StateId y) {
    return static_cast<StateId>(x * m + y);
  };
  out.set_initial(pair_id(a.initial(), b.initial()));
  for (StateId x = 0; x < n; ++x) {
    for (StateId y = 0; y < m; ++y) {
      const bool in_a = a.is_accepting(x);
      const bool in_b = b.is_accepting(y);
      bool accepting = false;
      switch (mode) {
        case ProductMode::kIntersection:
          accepting = in_a && in_b;
          break;
        case ProductMode::kUnion:
          accepting = in_a || in_b;
          break;
        case ProductMode::kDifference:
          accepting = in_a && !in_b;
          break;
      }
      out.set_accepting(pair_id(x, y), accepting);
      for (std::size_t letter = 0; letter < k; ++letter) {
        out.set_transition(pair_id(x, y), letter,
                           pair_id(a.transition(x, letter),
                                   b.transition(y, letter)));
      }
    }
  }
  return out;
}

Dfa complement(const Dfa& dfa) {
  Dfa out = dfa;
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    out.set_accepting(s, !dfa.is_accepting(s));
  }
  return out;
}

bool is_empty(const Dfa& dfa) { return !shortest_word(dfa).has_value(); }

std::optional<Word> shortest_word(const Dfa& dfa) {
  const std::size_t k = dfa.alphabet().size();
  struct Parent {
    StateId state = 0;
    std::size_t letter = 0;
    bool has_parent = false;
  };
  std::vector<bool> visited(dfa.state_count(), false);
  std::vector<Parent> parents(dfa.state_count());
  std::deque<StateId> work{dfa.initial()};
  visited[dfa.initial()] = true;

  std::optional<StateId> goal;
  if (dfa.is_accepting(dfa.initial())) goal = dfa.initial();
  while (!goal && !work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (std::size_t letter = 0; letter < k && !goal; ++letter) {
      const StateId t = dfa.transition(s, letter);
      if (visited[t]) continue;
      visited[t] = true;
      parents[t] = Parent{s, letter, true};
      if (dfa.is_accepting(t)) goal = t;
      work.push_back(t);
    }
  }
  if (!goal) return std::nullopt;

  Word word;
  StateId s = *goal;
  while (parents[s].has_parent) {
    word.push_back(dfa.alphabet()[parents[s].letter]);
    s = parents[s].state;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

std::optional<Word> inclusion_witness(const Dfa& a, const Dfa& b) {
  const std::vector<Symbol> joined = sorted_union(a.alphabet(), b.alphabet());
  const Dfa ax = extend_alphabet(a, joined);
  const Dfa bx = extend_alphabet(b, joined);
  return shortest_word(product(ax, bx, ProductMode::kDifference));
}

bool included(const Dfa& a, const Dfa& b) {
  return !inclusion_witness(a, b).has_value();
}

bool equivalent(const Dfa& a, const Dfa& b) {
  return included(a, b) && included(b, a);
}

Nfa map_labels(const Nfa& nfa, const std::function<Symbol(Symbol)>& map) {
  Nfa out;
  out.add_states(nfa.state_count());
  for (const Transition& t : nfa.transitions()) {
    if (t.is_epsilon()) {
      out.add_epsilon(t.from, t.to);
    } else {
      const Symbol mapped = map(t.symbol);
      if (mapped.valid()) {
        out.add_transition(t.from, mapped, t.to);
      } else {
        out.add_epsilon(t.from, t.to);
      }
    }
  }
  for (StateId s : nfa.initial_states()) out.mark_initial(s);
  for (StateId s : nfa.accepting_states()) out.mark_accepting(s);
  return out;
}

Nfa to_nfa(const Dfa& dfa) {
  Nfa out;
  out.add_states(dfa.state_count());
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      out.add_transition(s, dfa.alphabet()[letter],
                         dfa.transition(s, letter));
    }
    if (dfa.is_accepting(s)) out.mark_accepting(s);
  }
  out.mark_initial(dfa.initial());
  return out;
}

std::vector<bool> live_states(const Dfa& dfa) {
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();
  // Reverse adjacency, then BFS from the accepting states.
  std::vector<std::vector<StateId>> predecessors(n);
  for (StateId s = 0; s < n; ++s) {
    for (std::size_t letter = 0; letter < k; ++letter) {
      predecessors[dfa.transition(s, letter)].push_back(s);
    }
  }
  std::vector<bool> live(n, false);
  std::deque<StateId> work;
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_accepting(s)) {
      live[s] = true;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (StateId p : predecessors[s]) {
      if (!live[p]) {
        live[p] = true;
        work.push_back(p);
      }
    }
  }
  return live;
}

std::size_t reachable_count(const Dfa& dfa) {
  std::vector<bool> seen(dfa.state_count(), false);
  std::deque<StateId> work{dfa.initial()};
  seen[dfa.initial()] = true;
  std::size_t count = 1;
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      const StateId t = dfa.transition(s, letter);
      if (!seen[t]) {
        seen[t] = true;
        ++count;
        work.push_back(t);
      }
    }
  }
  return count;
}

}  // namespace shelley::fsm
