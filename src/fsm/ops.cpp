#include "fsm/ops.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "fsm/state_set.hpp"
#include "support/guard.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::fsm {
namespace {

std::vector<Symbol> sorted_union(const std::vector<Symbol>& a,
                                 const std::vector<Symbol>& b) {
  std::vector<Symbol> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

Dfa determinize(const Nfa& nfa, std::vector<Symbol> alphabet) {
  support::trace::Span span("fsm.determinize");
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  for (Symbol s : nfa.alphabet()) {
    if (!std::binary_search(alphabet.begin(), alphabet.end(), s)) {
      throw std::invalid_argument(
          "determinize: alphabet does not cover the NFA's labels");
    }
  }
  const std::size_t n = nfa.state_count();
  const std::size_t k = alphabet.size();
  const auto letter_of = [&](Symbol s) {
    return static_cast<std::size_t>(
        std::lower_bound(alphabet.begin(), alphabet.end(), s) -
        alphabet.begin());
  };

  // Per-NFA-state moves bucketed by letter, so each subset is expanded with
  // one scan over its members' edges instead of one scan per letter.
  std::vector<std::vector<std::pair<std::uint32_t, StateId>>> moves(n);
  for (const Transition& t : nfa.transitions()) {
    if (t.is_epsilon()) continue;
    moves[t.from].emplace_back(
        static_cast<std::uint32_t>(letter_of(t.symbol)), t.to);
  }

  // Hash-cons ε-closed subsets; ids are assigned in discovery order, which
  // matches the order the seed's std::map-based construction explored.
  std::unordered_map<StateSet, StateId, StateSetHash> ids;
  std::vector<const StateSet*> sets;  // id -> key (map nodes are stable)
  const auto get_id = [&](StateSet set) {
    const auto [it, inserted] =
        ids.emplace(std::move(set), static_cast<StateId>(sets.size()));
    if (inserted) sets.push_back(&it->first);
    return it->second;
  };

  const StateId start = get_id(nfa.initial_closure());
  std::vector<std::vector<StateId>> rows;  // per DFA state, per letter
  std::vector<StateSet> succ(k, StateSet(n));
  std::vector<bool> touched(k, false);
  for (StateId current = 0; current < sets.size(); ++current) {
    support::guard::check_states(sets.size(), "determinization");
    if ((current & 0x3FF) == 0) {
      support::guard::check_deadline("fsm.determinize");
    }
    const StateSet& subset = *sets[current];
    subset.for_each([&](StateId s) {
      for (const auto& [letter, to] : moves[s]) {
        succ[letter].unite(nfa.state_closure(to));
        touched[letter] = true;
      }
    });
    std::vector<StateId> row(k, 0);
    for (std::size_t letter = 0; letter < k; ++letter) {
      row[letter] = get_id(touched[letter] ? succ[letter] : StateSet(n));
      if (touched[letter]) {
        succ[letter].clear();
        touched[letter] = false;
      }
    }
    rows.push_back(std::move(row));
  }

  Dfa dfa(sets.size(), alphabet);
  dfa.set_initial(start);
  for (StateId state = 0; state < sets.size(); ++state) {
    for (std::size_t letter = 0; letter < k; ++letter) {
      dfa.set_transition(state, letter, rows[state][letter]);
    }
    if (nfa.any_accepting(*sets[state])) dfa.set_accepting(state, true);
  }
  support::metrics::record_determinize(n, dfa.state_count());
  span.arg("nfa_states", static_cast<std::uint64_t>(n));
  span.arg("dfa_states", static_cast<std::uint64_t>(dfa.state_count()));
  return dfa;
}

Dfa determinize(const Nfa& nfa) {
  const std::set<Symbol> sigma = nfa.alphabet();
  return determinize(nfa, std::vector<Symbol>(sigma.begin(), sigma.end()));
}

Dfa minimize(const Dfa& dfa) { return minimize_hopcroft(dfa); }

Dfa minimize_moore(const Dfa& dfa) {
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();

  // Restrict to reachable states first (unreachable states would distort the
  // partition refinement's block count, though not its correctness).
  std::vector<bool> reachable(n, false);
  {
    std::deque<StateId> work{dfa.initial()};
    reachable[dfa.initial()] = true;
    while (!work.empty()) {
      const StateId s = work.front();
      work.pop_front();
      for (std::size_t letter = 0; letter < k; ++letter) {
        const StateId t = dfa.transition(s, letter);
        if (!reachable[t]) {
          reachable[t] = true;
          work.push_back(t);
        }
      }
    }
  }

  // Moore refinement: start from {accepting, rejecting}, split until stable.
  std::vector<int> block(n, -1);
  for (StateId s = 0; s < n; ++s) {
    if (reachable[s]) block[s] = dfa.is_accepting(s) ? 1 : 0;
  }
  std::size_t block_count = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current block, blocks of successors).
    std::map<std::vector<int>, int> signature_to_block;
    std::vector<int> next_block(n, -1);
    int next_count = 0;
    for (StateId s = 0; s < n; ++s) {
      if (!reachable[s]) continue;
      std::vector<int> signature;
      signature.reserve(k + 1);
      signature.push_back(block[s]);
      for (std::size_t letter = 0; letter < k; ++letter) {
        signature.push_back(block[dfa.transition(s, letter)]);
      }
      const auto [it, inserted] =
          signature_to_block.emplace(std::move(signature), next_count);
      if (inserted) ++next_count;
      next_block[s] = it->second;
    }
    if (static_cast<std::size_t>(next_count) != block_count) changed = true;
    block = std::move(next_block);
    block_count = static_cast<std::size_t>(next_count);
  }

  Dfa out(block_count, dfa.alphabet());
  out.set_initial(static_cast<StateId>(block[dfa.initial()]));
  for (StateId s = 0; s < n; ++s) {
    if (!reachable[s]) continue;
    const auto b = static_cast<StateId>(block[s]);
    if (dfa.is_accepting(s)) out.set_accepting(b, true);
    for (std::size_t letter = 0; letter < k; ++letter) {
      out.set_transition(b, letter,
                         static_cast<StateId>(block[dfa.transition(s, letter)]));
    }
  }
  return out;
}

Dfa minimize_hopcroft(const Dfa& dfa) {
  support::trace::Span span("fsm.minimize");
  const std::size_t k = dfa.alphabet().size();
  const StateId* raw = dfa.transition_table().data();

  // Per-target in-degree counts, kept in four stripes: a high in-degree
  // target (the rejecting sink absorbs almost every edge of a usage
  // automaton) would otherwise serialize the counting pass on one
  // store-to-load-forwarded counter.  Counted during the reachability BFS,
  // which reads every reachable row exactly once anyway; thrown away and
  // redone only if the BFS order turns out not to be the identity.
  std::array<std::vector<std::uint32_t>, 4> stripe;
  for (auto& counts : stripe) counts.assign(dfa.state_count(), 0);

  // Restrict to reachable states, remapped densely in BFS discovery order.
  std::vector<StateId> order;  // new id -> old id
  std::vector<StateId> remap(dfa.state_count(), 0);
  {
    std::vector<bool> seen(dfa.state_count(), false);
    std::deque<StateId> work{dfa.initial()};
    seen[dfa.initial()] = true;
    while (!work.empty()) {
      const StateId s = work.front();
      work.pop_front();
      remap[s] = static_cast<StateId>(order.size());
      order.push_back(s);
      const std::size_t base = static_cast<std::size_t>(s) * k;
      const StateId* row = raw + base;
      for (std::size_t letter = 0; letter < k; ++letter) {
        const StateId t = row[letter];
        // Stripe by flat edge id, matching the CSR fill loop's stripe
        // choice -- the cursors derived from these counts must agree with
        // the fill pass entry for entry.
        ++stripe[(base + letter) & 3][t];
        if (!seen[t]) {
          seen[t] = true;
          work.push_back(t);
        }
      }
    }
  }
  const std::size_t n = order.size();

  // Subset construction already numbers states in BFS discovery order, so
  // the remap is usually the identity -- alias the input table instead of
  // copying it.
  bool identity = n == dfa.state_count();
  for (std::size_t s = 0; identity && s < n; ++s) identity = order[s] == s;
  std::vector<StateId> trans_store;
  if (!identity) {
    trans_store.resize(n * k);
    for (std::size_t s = 0; s < n; ++s) {
      const StateId* row = raw + static_cast<std::size_t>(order[s]) * k;
      for (std::size_t letter = 0; letter < k; ++letter) {
        trans_store[s * k + letter] = remap[row[letter]];
      }
    }
  }
  const StateId* trans = identity ? raw : trans_store.data();
  std::vector<bool> acc(n, false);
  for (std::size_t s = 0; s < n; ++s) acc[s] = dfa.is_accepting(order[s]);

  // Inverse transitions in CSR form, bucketed by target state.  An entry is
  // the flat edge id `from * k + letter` (n·k always fits: a table with 2^32
  // cells would be 16 GB), so one scan over a block's in-edges can group the
  // preimages of *all* letters at once at half the memory traffic of a
  // (from, letter) pair.
  std::vector<std::uint32_t> in_off(n + 1, 0);
  std::vector<std::uint32_t> in_data(n * k);
  {
    if (!identity) {
      // The BFS counted raw state ids; redo the counts in remapped space.
      for (auto& counts : stripe) counts.assign(n, 0);
      for (std::size_t i = 0; i < n * k; ++i) ++stripe[i & 3][trans[i]];
    }
    for (std::size_t t = 0; t < n; ++t) {
      // Turn the per-stripe counts into per-stripe write cursors.
      std::uint32_t base = in_off[t];
      for (auto& counts : stripe) {
        const std::uint32_t count = counts[t];
        counts[t] = base;
        base += count;
      }
      in_off[t + 1] = base;
    }
    for (std::size_t i = 0; i < n * k; ++i) {
      in_data[stripe[i & 3][trans[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Refinable partition: states grouped contiguously in `elems`, one
  // [begin, end) range per block, marks swapped to the front of a block.
  std::vector<int> blk(n, 0);
  std::vector<StateId> elems(n);
  std::vector<std::uint32_t> loc(n);
  std::vector<std::uint32_t> begin_of{0};
  std::vector<std::uint32_t> end_of;
  std::vector<std::uint32_t> marks{0};

  const std::size_t accepting_count =
      static_cast<std::size_t>(std::count(acc.begin(), acc.end(), true));
  if (accepting_count == 0 || accepting_count == n) {
    // A single block: already minimal with respect to acceptance.
    std::iota(elems.begin(), elems.end(), 0);
    end_of.push_back(static_cast<std::uint32_t>(n));
  } else {
    // Block 0 = accepting, block 1 = rejecting, members in state order.
    std::uint32_t next_acc = 0;
    std::uint32_t next_rej = static_cast<std::uint32_t>(accepting_count);
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t pos = acc[s] ? next_acc++ : next_rej++;
      elems[pos] = static_cast<StateId>(s);
      blk[s] = acc[s] ? 0 : 1;
    }
    end_of.push_back(static_cast<std::uint32_t>(accepting_count));
    begin_of.push_back(static_cast<std::uint32_t>(accepting_count));
    end_of.push_back(static_cast<std::uint32_t>(n));
    marks.push_back(0);
  }
  for (std::size_t i = 0; i < n; ++i) loc[elems[i]] = i;

  // The cost of popping a splitter is the number of transitions *into* it,
  // not its member count, so "smaller half" is measured in in-edge mass:
  // weight(B) = Σ_{s∈B} indegree(s).  Either half of a split is a valid
  // pending splitter, and a block's weight at least halves every time it is
  // re-queued, so every edge is scanned O(log E) times.  The cardinality
  // rule is pathological for usage automata: the rejecting sink is a
  // 1-state block carrying ~all of the edges, and seeding with it costs a
  // full Θ(n·k) scan before any refinement happens.
  const auto block_weight = [&](int b) {
    std::uint64_t w = 0;
    for (std::uint32_t i = begin_of[b]; i < end_of[b]; ++i) {
      const StateId s = elems[i];
      w += in_off[s + 1] - in_off[s];
    }
    return w;
  };
  std::vector<std::uint64_t> weight;
  weight.reserve(begin_of.size());
  for (std::size_t b = 0; b < begin_of.size(); ++b) {
    weight.push_back(block_weight(static_cast<int>(b)));
  }

  // Block-level splitter worklist: popping a block processes *all* letters
  // at once by scanning the block's in-edges and bucketing the sources per
  // letter.  Equivalent to the per-(block, letter) formulation but with a
  // k-fold smaller queue -- decisive when the alphabet is as large as the
  // state count (usage automata have one letter per operation) and most
  // letters have an empty preimage at any given block.
  std::vector<int> worklist;
  std::vector<char> in_worklist{0, 0};
  const auto push_splitter = [&](int b) {
    if (in_worklist[b] != 0) return;
    in_worklist[b] = 1;
    worklist.push_back(b);
  };
  if (begin_of.size() == 2) {
    push_splitter(weight[0] <= weight[1] ? 0 : 1);  // the lighter half
  }

  std::vector<std::vector<StateId>> letter_preimage(k);
  std::vector<std::uint32_t> touched_letters;
  std::vector<int> touched;
  while (!worklist.empty()) {
    const int splitter = worklist.back();
    worklist.pop_back();
    in_worklist[splitter] = 0;

    // Snapshot δ⁻¹(splitter, ·) grouped by letter before any swap moves the
    // splitter's members.
    touched_letters.clear();
    for (std::uint32_t i = begin_of[splitter]; i < end_of[splitter]; ++i) {
      const StateId target = elems[i];
      for (std::uint32_t j = in_off[target]; j < in_off[target + 1]; ++j) {
        const std::uint32_t edge = in_data[j];
        const auto letter = static_cast<std::uint32_t>(edge % k);
        std::vector<StateId>& bucket = letter_preimage[letter];
        if (bucket.empty()) touched_letters.push_back(letter);
        bucket.push_back(static_cast<StateId>(edge / k));
      }
    }

    for (const std::uint32_t letter : touched_letters) {
      std::vector<StateId>& preimage = letter_preimage[letter];
      touched.clear();
      for (const StateId s : preimage) {
        const int b = blk[s];
        if (end_of[b] - begin_of[b] == 1) continue;  // singletons never split
        if (marks[b] == 0) touched.push_back(b);
        const std::uint32_t dest = begin_of[b] + marks[b];
        const std::uint32_t pos = loc[s];
        if (pos < dest) continue;  // already marked
        std::swap(elems[pos], elems[dest]);
        loc[elems[pos]] = pos;
        loc[elems[dest]] = dest;
        ++marks[b];
      }
      preimage.clear();

      for (const int b : touched) {
        const std::uint32_t m = marks[b];
        marks[b] = 0;
        const std::uint32_t size = end_of[b] - begin_of[b];
        if (m == size) continue;  // every member hit: no split
        // The marked front half becomes a fresh block; b keeps the rest.
        const int fresh = static_cast<int>(begin_of.size());
        begin_of.push_back(begin_of[b]);
        end_of.push_back(begin_of[b] + m);
        marks.push_back(0);
        in_worklist.push_back(0);
        begin_of[b] += m;
        std::uint64_t fresh_weight = 0;
        for (std::uint32_t i = begin_of[fresh]; i < end_of[fresh]; ++i) {
          const StateId moved = elems[i];
          blk[moved] = fresh;
          fresh_weight += in_off[moved + 1] - in_off[moved];
        }
        weight.push_back(fresh_weight);
        weight[b] -= fresh_weight;
        // Hopcroft's rule: if b is still queued the (shrunk) b remains a
        // pending splitter and the fresh half must join it; otherwise the
        // lighter half alone suffices.
        if (in_worklist[b] != 0) {
          push_splitter(fresh);
        } else {
          push_splitter(weight[fresh] <= weight[b] ? fresh : b);
        }
      }
    }
  }

  // Renumber blocks by first appearance in (reachability-BFS) state order,
  // so the initial state's block is 0 -- mirroring Moore's numbering scheme.
  // One representative per block supplies its row; members are equivalent.
  const std::size_t block_count = begin_of.size();
  std::vector<int> out_id(block_count, -1);
  std::vector<StateId> rep(block_count, 0);
  int next_id = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (out_id[blk[s]] < 0) {
      out_id[blk[s]] = next_id;
      rep[next_id] = static_cast<StateId>(s);
      ++next_id;
    }
  }
  // Per-state output id, precomposed so the row-copy loop below gathers
  // once per cell instead of twice (out_id[blk[t]]).
  std::vector<StateId> new_id(n);
  for (std::size_t s = 0; s < n; ++s) {
    new_id[s] = static_cast<StateId>(out_id[blk[s]]);
  }
  std::vector<StateId> out_table(block_count * k);
  std::vector<bool> out_acc(block_count, false);
  for (std::size_t b = 0; b < block_count; ++b) {
    const StateId r = rep[b];
    out_acc[b] = acc[r];
    const StateId* row = trans + static_cast<std::size_t>(r) * k;
    for (std::size_t letter = 0; letter < k; ++letter) {
      out_table[b * k + letter] = new_id[row[letter]];
    }
  }
  support::metrics::record_minimize(dfa.state_count(), block_count);
  span.arg("states_in", static_cast<std::uint64_t>(dfa.state_count()));
  span.arg("states_out", static_cast<std::uint64_t>(block_count));
  return Dfa::from_table(dfa.alphabet(), std::move(out_table),
                         std::move(out_acc), new_id[0]);
}

Nfa reverse(const Nfa& nfa) {
  Nfa out;
  out.add_states(nfa.state_count());
  for (const Transition& t : nfa.transitions()) {
    out.add_transition(t.to, t.symbol, t.from);
  }
  for (StateId s : nfa.accepting_states()) out.mark_initial(s);
  for (StateId s : nfa.initial_states()) out.mark_accepting(s);
  return out;
}

Dfa minimize_brzozowski(const Dfa& dfa) {
  const std::vector<Symbol> alphabet = dfa.alphabet();
  const Dfa reversed = determinize(reverse(to_nfa(dfa)), alphabet);
  return determinize(reverse(to_nfa(reversed)), alphabet);
}

Dfa extend_alphabet(const Dfa& dfa, const std::vector<Symbol>& alphabet) {
  std::vector<Symbol> sigma = alphabet;
  std::sort(sigma.begin(), sigma.end());
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  const std::vector<Symbol> joined = sorted_union(sigma, dfa.alphabet());

  // Fresh rejecting sink for the new letters.
  const std::size_t n = dfa.state_count();
  const StateId sink = static_cast<StateId>(n);
  Dfa out(n + 1, joined);
  out.set_initial(dfa.initial());
  for (StateId s = 0; s < n; ++s) {
    out.set_accepting(s, dfa.is_accepting(s));
  }
  for (StateId s = 0; s <= n; ++s) {
    for (std::size_t letter = 0; letter < joined.size(); ++letter) {
      const auto old_letter = dfa.letter_index(joined[letter]);
      const StateId to = (s == sink || !old_letter)
                             ? sink
                             : dfa.transition(s, *old_letter);
      out.set_transition(s, letter, to);
    }
  }
  return out;
}

Dfa extend_alphabet_ignore(const Dfa& dfa,
                           const std::vector<Symbol>& alphabet) {
  std::vector<Symbol> sigma = alphabet;
  std::sort(sigma.begin(), sigma.end());
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  const std::vector<Symbol> joined = sorted_union(sigma, dfa.alphabet());

  const std::size_t n = dfa.state_count();
  Dfa out(n, joined);
  out.set_initial(dfa.initial());
  for (StateId s = 0; s < n; ++s) {
    out.set_accepting(s, dfa.is_accepting(s));
    for (std::size_t letter = 0; letter < joined.size(); ++letter) {
      const auto old_letter = dfa.letter_index(joined[letter]);
      out.set_transition(s, letter,
                         old_letter ? dfa.transition(s, *old_letter) : s);
    }
  }
  return out;
}

Dfa product(const Dfa& a, const Dfa& b, ProductMode mode) {
  if (a.alphabet() != b.alphabet()) {
    throw std::invalid_argument(
        "product: alphabets differ; call extend_alphabet first");
  }
  const std::size_t k = a.alphabet().size();
  const std::size_t n = a.state_count();
  const std::size_t m = b.state_count();
  Dfa out(n * m, a.alphabet());
  const auto pair_id = [m](StateId x, StateId y) {
    return static_cast<StateId>(x * m + y);
  };
  out.set_initial(pair_id(a.initial(), b.initial()));
  for (StateId x = 0; x < n; ++x) {
    for (StateId y = 0; y < m; ++y) {
      const bool in_a = a.is_accepting(x);
      const bool in_b = b.is_accepting(y);
      bool accepting = false;
      switch (mode) {
        case ProductMode::kIntersection:
          accepting = in_a && in_b;
          break;
        case ProductMode::kUnion:
          accepting = in_a || in_b;
          break;
        case ProductMode::kDifference:
          accepting = in_a && !in_b;
          break;
      }
      out.set_accepting(pair_id(x, y), accepting);
      for (std::size_t letter = 0; letter < k; ++letter) {
        out.set_transition(pair_id(x, y), letter,
                           pair_id(a.transition(x, letter),
                                   b.transition(y, letter)));
      }
    }
  }
  return out;
}

Dfa complement(const Dfa& dfa) {
  Dfa out = dfa;
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    out.set_accepting(s, !dfa.is_accepting(s));
  }
  return out;
}

bool is_empty(const Dfa& dfa) {
  // Plain reachability with early exit; no parent bookkeeping.
  if (dfa.is_accepting(dfa.initial())) return false;
  const std::size_t k = dfa.alphabet().size();
  std::vector<bool> visited(dfa.state_count(), false);
  std::deque<StateId> work{dfa.initial()};
  visited[dfa.initial()] = true;
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (std::size_t letter = 0; letter < k; ++letter) {
      const StateId t = dfa.transition(s, letter);
      if (visited[t]) continue;
      if (dfa.is_accepting(t)) return false;
      visited[t] = true;
      work.push_back(t);
    }
  }
  return true;
}

std::optional<Word> shortest_word(const Dfa& dfa) {
  const std::size_t k = dfa.alphabet().size();
  struct Parent {
    StateId state = 0;
    std::size_t letter = 0;
    bool has_parent = false;
  };
  std::vector<bool> visited(dfa.state_count(), false);
  std::vector<Parent> parents(dfa.state_count());
  std::deque<StateId> work{dfa.initial()};
  visited[dfa.initial()] = true;

  std::optional<StateId> goal;
  if (dfa.is_accepting(dfa.initial())) goal = dfa.initial();
  while (!goal && !work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (std::size_t letter = 0; letter < k && !goal; ++letter) {
      const StateId t = dfa.transition(s, letter);
      if (visited[t]) continue;
      visited[t] = true;
      parents[t] = Parent{s, letter, true};
      if (dfa.is_accepting(t)) goal = t;
      work.push_back(t);
    }
  }
  if (!goal) return std::nullopt;

  Word word;
  StateId s = *goal;
  while (parents[s].has_parent) {
    word.push_back(dfa.alphabet()[parents[s].letter]);
    s = parents[s].state;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

namespace {

/// Lazy difference-emptiness: BFS over reachable (a, b) pair states looking
/// for a pair accepted by `a` but not by `b`.  Discovery order matches
/// shortest_word(product(a, b, kDifference)) letter for letter, so the
/// returned witness is identical to the eager pipeline's -- it just never
/// materializes the n·m product table.  Both inputs must share an alphabet.
std::optional<Word> lazy_difference_witness(const Dfa& a, const Dfa& b) {
  const std::size_t k = a.alphabet().size();
  const std::uint64_t m = b.state_count();
  const auto key = [m](StateId x, StateId y) {
    return static_cast<std::uint64_t>(x) * m + y;
  };
  constexpr std::uint32_t kRoot = 0xffffffffu;
  struct Prev {
    std::uint64_t from = 0;
    std::uint32_t letter = kRoot;
  };
  // Doubles as the visited set; ~O(reachable pairs) memory.
  std::unordered_map<std::uint64_t, Prev> parents;
  std::deque<std::pair<StateId, StateId>> work;

  const auto is_goal = [&](StateId x, StateId y) {
    return a.is_accepting(x) && !b.is_accepting(y);
  };
  const std::uint64_t start = key(a.initial(), b.initial());
  parents.emplace(start, Prev{});
  work.emplace_back(a.initial(), b.initial());

  std::optional<std::uint64_t> goal;
  if (is_goal(a.initial(), b.initial())) goal = start;
  std::size_t popped = 0;
  while (!goal && !work.empty()) {
    if ((++popped & 0xFFF) == 0) {
      support::guard::check_deadline("fsm.inclusion");
    }
    const auto [x, y] = work.front();
    work.pop_front();
    const std::uint64_t from = key(x, y);
    for (std::size_t letter = 0; letter < k && !goal; ++letter) {
      const StateId tx = a.transition(x, letter);
      const StateId ty = b.transition(y, letter);
      const std::uint64_t to = key(tx, ty);
      const auto [it, inserted] = parents.emplace(
          to, Prev{from, static_cast<std::uint32_t>(letter)});
      if (!inserted) continue;
      if (is_goal(tx, ty)) goal = to;
      work.emplace_back(tx, ty);
    }
  }
  support::metrics::record_product_pairs(parents.size());
  if (!goal) return std::nullopt;

  Word word;
  std::uint64_t at = *goal;
  for (Prev prev = parents.at(at); prev.letter != kRoot;
       at = prev.from, prev = parents.at(at)) {
    word.push_back(a.alphabet()[prev.letter]);
  }
  std::reverse(word.begin(), word.end());
  support::metrics::record_counterexample(word.size());
  return word;
}

}  // namespace

std::optional<Word> inclusion_witness(const Dfa& a, const Dfa& b) {
  support::trace::Span span("fsm.inclusion");
  const std::vector<Symbol> joined = sorted_union(a.alphabet(), b.alphabet());
  const Dfa ax = extend_alphabet(a, joined);
  const Dfa bx = extend_alphabet(b, joined);
  std::optional<Word> witness = lazy_difference_witness(ax, bx);
  span.arg("included", witness ? std::string_view("false")
                               : std::string_view("true"));
  if (witness) {
    span.arg("witness_len", static_cast<std::uint64_t>(witness->size()));
  }
  return witness;
}

bool included(const Dfa& a, const Dfa& b) {
  return !inclusion_witness(a, b).has_value();
}

bool equivalent(const Dfa& a, const Dfa& b) {
  support::trace::Span span("fsm.equivalence");
  const std::vector<Symbol> joined = sorted_union(a.alphabet(), b.alphabet());
  const Dfa ax = extend_alphabet(a, joined);
  const Dfa bx = extend_alphabet(b, joined);
  const std::size_t k = joined.size();
  const std::size_t offset = ax.state_count();

  // Hopcroft–Karp: merge the initial pair, then propagate successor merges;
  // the languages differ iff some merged pair disagrees on acceptance.
  std::vector<std::uint32_t> parent(offset + bx.state_count());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::uint32_t s) {
    while (parent[s] != s) {
      parent[s] = parent[parent[s]];  // path halving
      s = parent[s];
    }
    return s;
  };
  const auto unite = [&](std::uint32_t p, std::uint32_t q) {
    p = find(p);
    q = find(q);
    if (p == q) return false;
    parent[p] = q;
    return true;
  };

  std::vector<std::pair<StateId, StateId>> stack;
  std::uint64_t pairs = 1;
  unite(ax.initial(), static_cast<std::uint32_t>(offset) + bx.initial());
  stack.emplace_back(ax.initial(), bx.initial());
  while (!stack.empty()) {
    const auto [x, y] = stack.back();
    stack.pop_back();
    if (ax.is_accepting(x) != bx.is_accepting(y)) {
      support::metrics::record_product_pairs(pairs);
      span.arg("pairs", pairs);
      return false;
    }
    for (std::size_t letter = 0; letter < k; ++letter) {
      const StateId tx = ax.transition(x, letter);
      const StateId ty = bx.transition(y, letter);
      if (unite(tx, static_cast<std::uint32_t>(offset) + ty)) {
        ++pairs;
        stack.emplace_back(tx, ty);
      }
    }
  }
  support::metrics::record_product_pairs(pairs);
  span.arg("pairs", pairs);
  return true;
}

Nfa map_labels(const Nfa& nfa, const std::function<Symbol(Symbol)>& map) {
  Nfa out;
  out.add_states(nfa.state_count());
  for (const Transition& t : nfa.transitions()) {
    if (t.is_epsilon()) {
      out.add_epsilon(t.from, t.to);
    } else {
      const Symbol mapped = map(t.symbol);
      if (mapped.valid()) {
        out.add_transition(t.from, mapped, t.to);
      } else {
        out.add_epsilon(t.from, t.to);
      }
    }
  }
  for (StateId s : nfa.initial_states()) out.mark_initial(s);
  for (StateId s : nfa.accepting_states()) out.mark_accepting(s);
  return out;
}

Nfa to_nfa(const Dfa& dfa) {
  Nfa out;
  out.add_states(dfa.state_count());
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      out.add_transition(s, dfa.alphabet()[letter],
                         dfa.transition(s, letter));
    }
    if (dfa.is_accepting(s)) out.mark_accepting(s);
  }
  out.mark_initial(dfa.initial());
  return out;
}

std::vector<bool> live_states(const Dfa& dfa) {
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();
  // Reverse adjacency, then BFS from the accepting states.
  std::vector<std::vector<StateId>> predecessors(n);
  for (StateId s = 0; s < n; ++s) {
    for (std::size_t letter = 0; letter < k; ++letter) {
      predecessors[dfa.transition(s, letter)].push_back(s);
    }
  }
  std::vector<bool> live(n, false);
  std::deque<StateId> work;
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_accepting(s)) {
      live[s] = true;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (StateId p : predecessors[s]) {
      if (!live[p]) {
        live[p] = true;
        work.push_back(p);
      }
    }
  }
  return live;
}

std::size_t reachable_count(const Dfa& dfa) {
  std::vector<bool> seen(dfa.state_count(), false);
  std::deque<StateId> work{dfa.initial()};
  seen[dfa.initial()] = true;
  std::size_t count = 1;
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      const StateId t = dfa.transition(s, letter);
      if (!seen[t]) {
        seen[t] = true;
        ++count;
        work.push_back(t);
      }
    }
  }
  return count;
}

}  // namespace shelley::fsm
