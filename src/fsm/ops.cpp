#include "fsm/ops.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "fsm/state_set.hpp"
#include "support/alloc.hpp"
#include "support/arena.hpp"
#include "support/guard.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::fsm {
namespace {

std::vector<Symbol> sorted_union(const std::vector<Symbol>& a,
                                 const std::vector<Symbol>& b) {
  std::vector<Symbol> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Words needed to hold one bit per state.
std::size_t word_stride(std::size_t state_count) {
  return (state_count + 63) / 64;
}

/// The kernel's per-thread scratch arena (see support/arena.hpp).  Every
/// algorithm below borrows it through an ArenaScope, so one call's scratch
/// is released with a single rewind and the chunks stay warm for the next
/// call -- steady state, the kernel performs no heap allocations beyond the
/// automata it returns.
support::Arena& kernel_arena() {
  thread_local support::Arena arena;
  return arena;
}

/// FNV-1a over a packed word row; same function StateSet::hash uses, so the
/// open-addressed subset table behaves like the old unordered_map keying.
std::uint64_t hash_words(const std::uint64_t* words, std::size_t count) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr StateId kNoState = 0xffffffffu;

}  // namespace

Dfa determinize(const Nfa& nfa, std::vector<Symbol> alphabet) {
  support::trace::Span span("fsm.determinize");
  const std::uint64_t allocs_before = support::alloc::allocation_count();
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  for (Symbol s : nfa.alphabet()) {
    if (!std::binary_search(alphabet.begin(), alphabet.end(), s)) {
      throw std::invalid_argument(
          "determinize: alphabet does not cover the NFA's labels");
    }
  }
  const std::size_t n = nfa.state_count();
  const std::size_t k = alphabet.size();
  const std::size_t width = word_stride(n);

  const Nfa::SymbolCsr csr = nfa.symbol_csr();
  const Nfa::ClosureTable closure = nfa.closures();
  const std::uint64_t* acc_words = nfa.accepting_words();

  support::ArenaScope scope(kernel_arena());
  support::Arena& arena = scope.arena();

  // Alphabet index per CSR edge, resolved once so the subset-expansion loop
  // never touches a Symbol again.
  const std::size_t edge_count = csr.offsets[n];
  std::uint32_t* edge_letter = arena.allocate_array<std::uint32_t>(edge_count);
  for (std::size_t e = 0; e < edge_count; ++e) {
    edge_letter[e] = static_cast<std::uint32_t>(
        std::lower_bound(alphabet.begin(), alphabet.end(), csr.symbols[e]) -
        alphabet.begin());
  }

  // Hash-cons ε-closed subsets; ids are assigned in discovery order, which
  // matches the order the seed's std::map-based construction explored.  The
  // subset rows live in the arena; the open-addressed id table replaces the
  // old unordered_map (no per-node allocations).
  thread_local std::vector<const std::uint64_t*> sets;  // id -> subset row
  thread_local std::vector<StateId> rows;               // DFA table, row-major
  thread_local std::vector<char> acc;                   // per DFA state
  sets.clear();
  rows.clear();
  acc.clear();

  std::size_t slot_count = 1024;
  std::uint32_t* slots = arena.allocate_array<std::uint32_t>(slot_count);
  std::fill_n(slots, slot_count, kNoState);

  const auto get_id = [&](const std::uint64_t* row) {
    if ((sets.size() + 1) * 10 >= slot_count * 7) {
      const std::size_t grown = slot_count * 2;
      std::uint32_t* fresh = arena.allocate_array<std::uint32_t>(grown);
      std::fill_n(fresh, grown, kNoState);
      for (std::size_t id = 0; id < sets.size(); ++id) {
        std::size_t at = hash_words(sets[id], width) & (grown - 1);
        while (fresh[at] != kNoState) at = (at + 1) & (grown - 1);
        fresh[at] = static_cast<std::uint32_t>(id);
      }
      slots = fresh;
      slot_count = grown;
    }
    std::size_t at = hash_words(row, width) & (slot_count - 1);
    while (slots[at] != kNoState) {
      const StateId id = slots[at];
      if (std::equal(row, row + width, sets[id])) return id;
      at = (at + 1) & (slot_count - 1);
    }
    std::uint64_t* copy = arena.allocate_array<std::uint64_t>(width);
    std::copy(row, row + width, copy);
    const auto id = static_cast<StateId>(sets.size());
    sets.push_back(copy);
    slots[at] = id;
    return id;
  };

  // Seed with the ε-closed initial set.
  std::uint64_t* seed = arena.allocate_array<std::uint64_t>(width);
  std::fill_n(seed, width, 0);
  for (StateId s : nfa.initial_states()) {
    const std::uint64_t* row = closure.row(s);
    for (std::size_t w = 0; w < width; ++w) seed[w] |= row[w];
  }
  const StateId start = get_id(seed);

  // Per-letter successor accumulators; only letters touched by the current
  // subset are cleared afterwards, so untouched letters cost nothing.
  std::uint64_t* succ = arena.allocate_array<std::uint64_t>(k * width);
  std::fill_n(succ, k * width, 0);
  char* touched = arena.allocate_array<char>(k);
  std::fill_n(touched, k, 0);
  std::uint32_t* touched_letters = arena.allocate_array<std::uint32_t>(k);
  std::size_t touched_count = 0;

  // Every untouched letter leads to the same empty subset: intern it once,
  // lazily, so its discovery order still matches the seed construction.
  StateId empty_id = kNoState;
  std::uint64_t* zero_row = arena.allocate_array<std::uint64_t>(width);
  std::fill_n(zero_row, width, 0);

  for (StateId current = 0; current < sets.size(); ++current) {
    support::guard::check_states(sets.size(), "determinization");
    if ((current & 0x3FF) == 0) {
      support::guard::check_deadline("fsm.determinize");
    }
    const std::uint64_t* subset = sets[current];
    // Expand with one scan over the members' CSR runs, bucketing the ε-closed
    // successors per letter word-parallel.
    for (std::size_t w = 0; w < width; ++w) {
      std::uint64_t bits = subset[w];
      while (bits != 0) {
        const auto s = static_cast<StateId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
        for (std::uint32_t e = csr.offsets[s]; e < csr.offsets[s + 1]; ++e) {
          const std::uint32_t letter = edge_letter[e];
          std::uint64_t* dst = succ + letter * width;
          if (touched[letter] == 0) {
            touched[letter] = 1;
            touched_letters[touched_count++] = letter;
          }
          const std::uint64_t* src = closure.row(csr.targets[e]);
          for (std::size_t v = 0; v < width; ++v) dst[v] |= src[v];
        }
      }
    }
    bool accepting = false;
    for (std::size_t w = 0; w < width && !accepting; ++w) {
      accepting = (subset[w] & acc_words[w]) != 0;
    }
    acc.push_back(accepting ? 1 : 0);
    for (std::size_t letter = 0; letter < k; ++letter) {
      StateId id;
      if (touched[letter] != 0) {
        id = get_id(succ + letter * width);
      } else if (empty_id != kNoState) {
        id = empty_id;
      } else {
        id = empty_id = get_id(zero_row);
      }
      rows.push_back(id);
    }
    for (std::size_t i = 0; i < touched_count; ++i) {
      const std::uint32_t letter = touched_letters[i];
      std::fill_n(succ + letter * width, width, 0);
      touched[letter] = 0;
    }
    touched_count = 0;
  }

  Dfa dfa = Dfa::from_table(std::move(alphabet),
                            std::vector<StateId>(rows.begin(), rows.end()),
                            std::vector<bool>(acc.begin(), acc.end()), start);
  support::metrics::record_determinize(n, dfa.state_count());
  support::metrics::record_determinize_allocs(
      support::alloc::allocation_count() - allocs_before);
  span.arg("nfa_states", static_cast<std::uint64_t>(n));
  span.arg("dfa_states", static_cast<std::uint64_t>(dfa.state_count()));
  return dfa;
}

Dfa determinize(const Nfa& nfa) { return determinize(nfa, nfa.alphabet()); }

Dfa minimize(const Dfa& dfa) { return minimize_hopcroft(dfa); }

Dfa minimize_moore(const Dfa& dfa) {
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();

  // Restrict to reachable states first (unreachable states would distort the
  // partition refinement's block count, though not its correctness).
  std::vector<bool> reachable(n, false);
  {
    std::deque<StateId> work{dfa.initial()};
    reachable[dfa.initial()] = true;
    while (!work.empty()) {
      const StateId s = work.front();
      work.pop_front();
      for (std::size_t letter = 0; letter < k; ++letter) {
        const StateId t = dfa.transition(s, letter);
        if (!reachable[t]) {
          reachable[t] = true;
          work.push_back(t);
        }
      }
    }
  }

  // Moore refinement: start from {accepting, rejecting}, split until stable.
  std::vector<int> block(n, -1);
  for (StateId s = 0; s < n; ++s) {
    if (reachable[s]) block[s] = dfa.is_accepting(s) ? 1 : 0;
  }
  std::size_t block_count = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current block, blocks of successors).
    std::map<std::vector<int>, int> signature_to_block;
    std::vector<int> next_block(n, -1);
    int next_count = 0;
    for (StateId s = 0; s < n; ++s) {
      if (!reachable[s]) continue;
      std::vector<int> signature;
      signature.reserve(k + 1);
      signature.push_back(block[s]);
      for (std::size_t letter = 0; letter < k; ++letter) {
        signature.push_back(block[dfa.transition(s, letter)]);
      }
      const auto [it, inserted] =
          signature_to_block.emplace(std::move(signature), next_count);
      if (inserted) ++next_count;
      next_block[s] = it->second;
    }
    if (static_cast<std::size_t>(next_count) != block_count) changed = true;
    block = std::move(next_block);
    block_count = static_cast<std::size_t>(next_count);
  }

  Dfa out(block_count, dfa.alphabet());
  out.set_initial(static_cast<StateId>(block[dfa.initial()]));
  for (StateId s = 0; s < n; ++s) {
    if (!reachable[s]) continue;
    const auto b = static_cast<StateId>(block[s]);
    if (dfa.is_accepting(s)) out.set_accepting(b, true);
    for (std::size_t letter = 0; letter < k; ++letter) {
      out.set_transition(b, letter,
                         static_cast<StateId>(block[dfa.transition(s, letter)]));
    }
  }
  return out;
}

Dfa minimize_hopcroft(const Dfa& dfa) {
  support::trace::Span span("fsm.minimize");
  const std::uint64_t allocs_before = support::alloc::allocation_count();
  const std::size_t total = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();
  const StateId* raw = dfa.transition_table().data();

  support::ArenaScope scope(kernel_arena());
  support::Arena& arena = scope.arena();

  // Per-target in-degree counts, kept in four stripes: a high in-degree
  // target (the rejecting sink absorbs almost every edge of a usage
  // automaton) would otherwise serialize the counting pass on one
  // store-to-load-forwarded counter.  Counted during the reachability BFS,
  // which reads every reachable row exactly once anyway; thrown away and
  // redone only if the BFS order turns out not to be the identity.
  std::uint32_t* stripe[4];
  for (auto& counts : stripe) {
    counts = arena.allocate_array<std::uint32_t>(total);
    std::fill_n(counts, total, 0);
  }

  // Restrict to reachable states, remapped densely in BFS discovery order.
  StateId* order = arena.allocate_array<StateId>(total);  // new id -> old id
  StateId* remap = arena.allocate_array<StateId>(total);
  std::size_t n = 0;
  {
    char* seen = arena.allocate_array<char>(total);
    std::fill_n(seen, total, 0);
    StateId* work = arena.allocate_array<StateId>(total);
    std::size_t head = 0;
    std::size_t tail = 0;
    work[tail++] = dfa.initial();
    seen[dfa.initial()] = 1;
    while (head < tail) {
      const StateId s = work[head++];
      remap[s] = static_cast<StateId>(n);
      order[n++] = s;
      const std::size_t base = static_cast<std::size_t>(s) * k;
      const StateId* row = raw + base;
      for (std::size_t letter = 0; letter < k; ++letter) {
        const StateId t = row[letter];
        // Stripe by flat edge id, matching the CSR fill loop's stripe
        // choice -- the cursors derived from these counts must agree with
        // the fill pass entry for entry.
        ++stripe[(base + letter) & 3][t];
        if (seen[t] == 0) {
          seen[t] = 1;
          work[tail++] = t;
        }
      }
    }
  }

  // Subset construction already numbers states in BFS discovery order, so
  // the remap is usually the identity -- alias the input table instead of
  // copying it.
  bool identity = n == total;
  for (std::size_t s = 0; identity && s < n; ++s) identity = order[s] == s;
  const StateId* trans = raw;
  if (!identity) {
    StateId* trans_store = arena.allocate_array<StateId>(n * k);
    for (std::size_t s = 0; s < n; ++s) {
      const StateId* row = raw + static_cast<std::size_t>(order[s]) * k;
      for (std::size_t letter = 0; letter < k; ++letter) {
        trans_store[s * k + letter] = remap[row[letter]];
      }
    }
    trans = trans_store;
  }
  char* acc = arena.allocate_array<char>(n);
  for (std::size_t s = 0; s < n; ++s) {
    acc[s] = dfa.is_accepting(order[s]) ? 1 : 0;
  }

  // Inverse transitions in CSR form, bucketed by target state.  An entry is
  // the flat edge id `from * k + letter` (n·k always fits: a table with 2^32
  // cells would be 16 GB), so one scan over a block's in-edges can group the
  // preimages of *all* letters at once at half the memory traffic of a
  // (from, letter) pair.
  std::uint32_t* in_off = arena.allocate_array<std::uint32_t>(n + 1);
  std::uint32_t* in_data = arena.allocate_array<std::uint32_t>(n * k);
  {
    if (!identity) {
      // The BFS counted raw state ids; redo the counts in remapped space.
      for (auto& counts : stripe) std::fill_n(counts, n, 0);
      for (std::size_t i = 0; i < n * k; ++i) ++stripe[i & 3][trans[i]];
    }
    in_off[0] = 0;
    for (std::size_t t = 0; t < n; ++t) {
      // Turn the per-stripe counts into per-stripe write cursors.
      std::uint32_t base = in_off[t];
      for (auto& counts : stripe) {
        const std::uint32_t count = counts[t];
        counts[t] = base;
        base += count;
      }
      in_off[t + 1] = base;
    }
    for (std::size_t i = 0; i < n * k; ++i) {
      in_data[stripe[i & 3][trans[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Refinable partition: states grouped contiguously in `elems`, one
  // [begin, end) range per block, marks swapped to the front of a block.
  // Block counts only grow and never exceed n, so every per-block array is
  // a flat arena slab with a running count.
  int* blk = arena.allocate_array<int>(n);
  StateId* elems = arena.allocate_array<StateId>(n);
  std::uint32_t* loc = arena.allocate_array<std::uint32_t>(n);
  std::uint32_t* begin_of = arena.allocate_array<std::uint32_t>(n + 1);
  std::uint32_t* end_of = arena.allocate_array<std::uint32_t>(n + 1);
  std::uint32_t* marks = arena.allocate_array<std::uint32_t>(n + 1);
  std::uint64_t* weight = arena.allocate_array<std::uint64_t>(n + 1);
  char* in_worklist = arena.allocate_array<char>(n + 1);
  std::size_t blocks = 0;

  std::fill_n(blk, n, 0);
  const std::size_t accepting_count = static_cast<std::size_t>(
      std::count(acc, acc + n, static_cast<char>(1)));
  if (accepting_count == 0 || accepting_count == n) {
    // A single block: already minimal with respect to acceptance.
    std::iota(elems, elems + n, 0);
    begin_of[0] = 0;
    end_of[0] = static_cast<std::uint32_t>(n);
    marks[0] = 0;
    in_worklist[0] = 0;
    blocks = 1;
  } else {
    // Block 0 = accepting, block 1 = rejecting, members in state order.
    std::uint32_t next_acc = 0;
    std::uint32_t next_rej = static_cast<std::uint32_t>(accepting_count);
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t pos = acc[s] != 0 ? next_acc++ : next_rej++;
      elems[pos] = static_cast<StateId>(s);
      blk[s] = acc[s] != 0 ? 0 : 1;
    }
    begin_of[0] = 0;
    end_of[0] = static_cast<std::uint32_t>(accepting_count);
    begin_of[1] = static_cast<std::uint32_t>(accepting_count);
    end_of[1] = static_cast<std::uint32_t>(n);
    marks[0] = 0;
    marks[1] = 0;
    in_worklist[0] = 0;
    in_worklist[1] = 0;
    blocks = 2;
  }
  for (std::size_t i = 0; i < n; ++i) loc[elems[i]] = i;

  // The cost of popping a splitter is the number of transitions *into* it,
  // not its member count, so "smaller half" is measured in in-edge mass:
  // weight(B) = Σ_{s∈B} indegree(s).  Either half of a split is a valid
  // pending splitter, and a block's weight at least halves every time it is
  // re-queued, so every edge is scanned O(log E) times.  The cardinality
  // rule is pathological for usage automata: the rejecting sink is a
  // 1-state block carrying ~all of the edges, and seeding with it costs a
  // full Θ(n·k) scan before any refinement happens.
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t w = 0;
    for (std::uint32_t i = begin_of[b]; i < end_of[b]; ++i) {
      const StateId s = elems[i];
      w += in_off[s + 1] - in_off[s];
    }
    weight[b] = w;
  }

  // Block-level splitter worklist: popping a block processes *all* letters
  // at once by scanning the block's in-edges and bucketing the sources per
  // letter.  Equivalent to the per-(block, letter) formulation but with a
  // k-fold smaller queue -- decisive when the alphabet is as large as the
  // state count (usage automata have one letter per operation) and most
  // letters have an empty preimage at any given block.
  int* worklist = arena.allocate_array<int>(n + 1);
  std::size_t worklist_top = 0;
  const auto push_splitter = [&](int b) {
    if (in_worklist[b] != 0) return;
    in_worklist[b] = 1;
    worklist[worklist_top++] = b;
  };
  if (blocks == 2) {
    push_splitter(weight[0] <= weight[1] ? 0 : 1);  // the lighter half
  }

  // Per-letter preimage buckets as one flat slab: a counting pass over the
  // splitter's in-edges sizes the buckets, a fill pass populates them, and
  // only letters actually touched pay for clearing.
  std::uint32_t* letter_count = arena.allocate_array<std::uint32_t>(k);
  std::fill_n(letter_count, k, 0);
  std::uint32_t* letter_cursor = arena.allocate_array<std::uint32_t>(k);
  std::uint32_t* letter_begin = arena.allocate_array<std::uint32_t>(k);
  std::uint32_t* touched_letters = arena.allocate_array<std::uint32_t>(k);
  StateId* preimage = arena.allocate_array<StateId>(n * k);
  int* touched = arena.allocate_array<int>(n + 1);
  while (worklist_top > 0) {
    const int splitter = worklist[--worklist_top];
    in_worklist[splitter] = 0;

    // Snapshot δ⁻¹(splitter, ·) grouped by letter before any swap moves the
    // splitter's members.
    std::size_t touched_letter_count = 0;
    for (std::uint32_t i = begin_of[splitter]; i < end_of[splitter]; ++i) {
      const StateId target = elems[i];
      for (std::uint32_t j = in_off[target]; j < in_off[target + 1]; ++j) {
        const auto letter = static_cast<std::uint32_t>(in_data[j] % k);
        if (letter_count[letter]++ == 0) {
          touched_letters[touched_letter_count++] = letter;
        }
      }
    }
    std::uint32_t cursor = 0;
    for (std::size_t t = 0; t < touched_letter_count; ++t) {
      const std::uint32_t letter = touched_letters[t];
      letter_begin[t] = cursor;
      letter_cursor[letter] = cursor;
      cursor += letter_count[letter];
    }
    for (std::uint32_t i = begin_of[splitter]; i < end_of[splitter]; ++i) {
      const StateId target = elems[i];
      for (std::uint32_t j = in_off[target]; j < in_off[target + 1]; ++j) {
        const std::uint32_t edge = in_data[j];
        preimage[letter_cursor[edge % k]++] =
            static_cast<StateId>(edge / k);
      }
    }

    for (std::size_t t = 0; t < touched_letter_count; ++t) {
      const std::uint32_t letter = touched_letters[t];
      const std::uint32_t begin = letter_begin[t];
      const std::uint32_t end = begin + letter_count[letter];
      letter_count[letter] = 0;
      std::size_t touched_count = 0;
      for (std::uint32_t i = begin; i < end; ++i) {
        const StateId s = preimage[i];
        const int b = blk[s];
        if (end_of[b] - begin_of[b] == 1) continue;  // singletons never split
        if (marks[b] == 0) touched[touched_count++] = b;
        const std::uint32_t dest = begin_of[b] + marks[b];
        const std::uint32_t pos = loc[s];
        if (pos < dest) continue;  // already marked
        std::swap(elems[pos], elems[dest]);
        loc[elems[pos]] = pos;
        loc[elems[dest]] = dest;
        ++marks[b];
      }

      for (std::size_t i = 0; i < touched_count; ++i) {
        const int b = touched[i];
        const std::uint32_t m = marks[b];
        marks[b] = 0;
        const std::uint32_t size = end_of[b] - begin_of[b];
        if (m == size) continue;  // every member hit: no split
        // The marked front half becomes a fresh block; b keeps the rest.
        const int fresh = static_cast<int>(blocks);
        begin_of[fresh] = begin_of[b];
        end_of[fresh] = begin_of[b] + m;
        marks[fresh] = 0;
        in_worklist[fresh] = 0;
        ++blocks;
        begin_of[b] += m;
        std::uint64_t fresh_weight = 0;
        for (std::uint32_t j = begin_of[fresh]; j < end_of[fresh]; ++j) {
          const StateId moved = elems[j];
          blk[moved] = fresh;
          fresh_weight += in_off[moved + 1] - in_off[moved];
        }
        weight[fresh] = fresh_weight;
        weight[b] -= fresh_weight;
        // Hopcroft's rule: if b is still queued the (shrunk) b remains a
        // pending splitter and the fresh half must join it; otherwise the
        // lighter half alone suffices.
        if (in_worklist[b] != 0) {
          push_splitter(fresh);
        } else {
          push_splitter(weight[fresh] <= weight[b] ? fresh : b);
        }
      }
    }
  }

  // Renumber blocks by first appearance in (reachability-BFS) state order,
  // so the initial state's block is 0 -- mirroring Moore's numbering scheme.
  // One representative per block supplies its row; members are equivalent.
  const std::size_t block_count = blocks;
  int* out_id = arena.allocate_array<int>(block_count);
  std::fill_n(out_id, block_count, -1);
  StateId* rep = arena.allocate_array<StateId>(block_count);
  int next_id = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (out_id[blk[s]] < 0) {
      out_id[blk[s]] = next_id;
      rep[next_id] = static_cast<StateId>(s);
      ++next_id;
    }
  }
  // Per-state output id, precomposed so the row-copy loop below gathers
  // once per cell instead of twice (out_id[blk[t]]).
  StateId* new_id = arena.allocate_array<StateId>(n);
  for (std::size_t s = 0; s < n; ++s) {
    new_id[s] = static_cast<StateId>(out_id[blk[s]]);
  }
  std::vector<StateId> out_table(block_count * k);
  std::vector<bool> out_acc(block_count, false);
  for (std::size_t b = 0; b < block_count; ++b) {
    const StateId r = rep[b];
    out_acc[b] = acc[r] != 0;
    const StateId* row = trans + static_cast<std::size_t>(r) * k;
    for (std::size_t letter = 0; letter < k; ++letter) {
      out_table[b * k + letter] = new_id[row[letter]];
    }
  }
  support::metrics::record_minimize(dfa.state_count(), block_count);
  support::metrics::record_minimize_allocs(
      support::alloc::allocation_count() - allocs_before);
  span.arg("states_in", static_cast<std::uint64_t>(dfa.state_count()));
  span.arg("states_out", static_cast<std::uint64_t>(block_count));
  return Dfa::from_table(dfa.alphabet(), std::move(out_table),
                         std::move(out_acc), new_id[0]);
}

Nfa reverse(const Nfa& nfa) {
  Nfa out;
  out.add_states(nfa.state_count());
  for (const Transition& t : nfa.transitions()) {
    out.add_transition(t.to, t.symbol, t.from);
  }
  for (StateId s : nfa.accepting_states()) out.mark_initial(s);
  for (StateId s : nfa.initial_states()) out.mark_accepting(s);
  return out;
}

Dfa minimize_brzozowski(const Dfa& dfa) {
  const std::vector<Symbol> alphabet = dfa.alphabet();
  const Dfa reversed = determinize(reverse(to_nfa(dfa)), alphabet);
  return determinize(reverse(to_nfa(reversed)), alphabet);
}

Dfa extend_alphabet(const Dfa& dfa, const std::vector<Symbol>& alphabet) {
  std::vector<Symbol> sigma = alphabet;
  std::sort(sigma.begin(), sigma.end());
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  std::vector<Symbol> joined = sorted_union(sigma, dfa.alphabet());

  // Fresh rejecting sink for the new letters.  The whole table is built
  // flat: the per-letter source column is resolved once, then every row is
  // a straight gather from the input table.
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();
  const std::size_t j = joined.size();
  const StateId sink = static_cast<StateId>(n);
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> column(j, kNone);
  for (std::size_t letter = 0; letter < j; ++letter) {
    const auto old_letter = dfa.letter_index(joined[letter]);
    if (old_letter) column[letter] = *old_letter;
  }

  const StateId* raw = dfa.transition_table().data();
  std::vector<StateId> table((n + 1) * j, sink);
  for (std::size_t s = 0; s < n; ++s) {
    const StateId* row = raw + s * k;
    StateId* out_row = table.data() + s * j;
    for (std::size_t letter = 0; letter < j; ++letter) {
      if (column[letter] != kNone) out_row[letter] = row[column[letter]];
    }
  }
  std::vector<bool> acc(n + 1, false);
  for (StateId s = 0; s < n; ++s) acc[s] = dfa.is_accepting(s);
  return Dfa::from_table(std::move(joined), std::move(table), std::move(acc),
                         dfa.initial());
}

Dfa extend_alphabet_ignore(const Dfa& dfa,
                           const std::vector<Symbol>& alphabet) {
  std::vector<Symbol> sigma = alphabet;
  std::sort(sigma.begin(), sigma.end());
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  std::vector<Symbol> joined = sorted_union(sigma, dfa.alphabet());

  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();
  const std::size_t j = joined.size();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> column(j, kNone);
  for (std::size_t letter = 0; letter < j; ++letter) {
    const auto old_letter = dfa.letter_index(joined[letter]);
    if (old_letter) column[letter] = *old_letter;
  }

  const StateId* raw = dfa.transition_table().data();
  std::vector<StateId> table(n * j);
  for (std::size_t s = 0; s < n; ++s) {
    const StateId* row = raw + s * k;
    StateId* out_row = table.data() + s * j;
    for (std::size_t letter = 0; letter < j; ++letter) {
      // New letters are ignored: self-loop.
      out_row[letter] = column[letter] != kNone
                            ? row[column[letter]]
                            : static_cast<StateId>(s);
    }
  }
  std::vector<bool> acc(n, false);
  for (StateId s = 0; s < n; ++s) acc[s] = dfa.is_accepting(s);
  return Dfa::from_table(std::move(joined), std::move(table), std::move(acc),
                         dfa.initial());
}

Dfa product(const Dfa& a, const Dfa& b, ProductMode mode) {
  if (a.alphabet() != b.alphabet()) {
    throw std::invalid_argument(
        "product: alphabets differ; call extend_alphabet first");
  }
  const std::size_t k = a.alphabet().size();
  const std::size_t n = a.state_count();
  const std::size_t m = b.state_count();
  const StateId* ra = a.transition_table().data();
  const StateId* rb = b.transition_table().data();
  std::vector<StateId> table(n * m * k);
  std::vector<bool> acc(n * m, false);
  for (StateId x = 0; x < n; ++x) {
    const bool in_a = a.is_accepting(x);
    const StateId* row_a = ra + static_cast<std::size_t>(x) * k;
    for (StateId y = 0; y < m; ++y) {
      const bool in_b = b.is_accepting(y);
      bool accepting = false;
      switch (mode) {
        case ProductMode::kIntersection:
          accepting = in_a && in_b;
          break;
        case ProductMode::kUnion:
          accepting = in_a || in_b;
          break;
        case ProductMode::kDifference:
          accepting = in_a && !in_b;
          break;
      }
      const std::size_t id = static_cast<std::size_t>(x) * m + y;
      acc[id] = accepting;
      const StateId* row_b = rb + static_cast<std::size_t>(y) * k;
      StateId* out_row = table.data() + id * k;
      for (std::size_t letter = 0; letter < k; ++letter) {
        out_row[letter] = static_cast<StateId>(
            static_cast<std::size_t>(row_a[letter]) * m + row_b[letter]);
      }
    }
  }
  return Dfa::from_table(
      a.alphabet(), std::move(table), std::move(acc),
      static_cast<StateId>(static_cast<std::size_t>(a.initial()) * m +
                           b.initial()));
}

Dfa complement(const Dfa& dfa) {
  Dfa out = dfa;
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    out.set_accepting(s, !dfa.is_accepting(s));
  }
  return out;
}

bool is_empty(const Dfa& dfa) {
  // Reachability with a packed visited bitmap and early exit on the first
  // accepting state.
  if (dfa.is_accepting(dfa.initial())) return false;
  const std::size_t k = dfa.alphabet().size();
  const std::size_t n = dfa.state_count();
  const StateId* raw = dfa.transition_table().data();
  const std::uint64_t* acc = dfa.accepting_words();

  support::ArenaScope scope(kernel_arena());
  support::Arena& arena = scope.arena();
  const std::size_t width = word_stride(n);
  std::uint64_t* visited = arena.allocate_array<std::uint64_t>(width);
  std::fill_n(visited, width, 0);
  StateId* work = arena.allocate_array<StateId>(n);
  std::size_t head = 0;
  std::size_t tail = 0;
  work[tail++] = dfa.initial();
  visited[dfa.initial() / 64] |= std::uint64_t{1} << (dfa.initial() % 64);
  while (head < tail) {
    const StateId s = work[head++];
    const StateId* row = raw + static_cast<std::size_t>(s) * k;
    for (std::size_t letter = 0; letter < k; ++letter) {
      const StateId t = row[letter];
      const std::uint64_t bit = std::uint64_t{1} << (t % 64);
      if ((visited[t / 64] & bit) != 0) continue;
      if ((acc[t / 64] & bit) != 0) return false;
      visited[t / 64] |= bit;
      work[tail++] = t;
    }
  }
  return true;
}

std::optional<Word> shortest_word(const Dfa& dfa) {
  const std::size_t k = dfa.alphabet().size();
  const std::size_t n = dfa.state_count();
  const StateId* raw = dfa.transition_table().data();
  struct Parent {
    StateId state;
    std::uint32_t letter;
    bool has_parent;
  };

  support::ArenaScope scope(kernel_arena());
  support::Arena& arena = scope.arena();
  const std::size_t width = word_stride(n);
  std::uint64_t* visited = arena.allocate_array<std::uint64_t>(width);
  std::fill_n(visited, width, 0);
  Parent* parents = arena.allocate_array<Parent>(n);
  std::fill_n(parents, n, Parent{0, 0, false});
  StateId* work = arena.allocate_array<StateId>(n);
  std::size_t head = 0;
  std::size_t tail = 0;
  work[tail++] = dfa.initial();
  visited[dfa.initial() / 64] |= std::uint64_t{1} << (dfa.initial() % 64);

  std::optional<StateId> goal;
  if (dfa.is_accepting(dfa.initial())) goal = dfa.initial();
  while (!goal && head < tail) {
    const StateId s = work[head++];
    const StateId* row = raw + static_cast<std::size_t>(s) * k;
    for (std::size_t letter = 0; letter < k && !goal; ++letter) {
      const StateId t = row[letter];
      const std::uint64_t bit = std::uint64_t{1} << (t % 64);
      if ((visited[t / 64] & bit) != 0) continue;
      visited[t / 64] |= bit;
      parents[t] = Parent{s, static_cast<std::uint32_t>(letter), true};
      if (dfa.is_accepting(t)) goal = t;
      work[tail++] = t;
    }
  }
  if (!goal) return std::nullopt;

  Word word;
  StateId s = *goal;
  while (parents[s].has_parent) {
    word.push_back(dfa.alphabet()[parents[s].letter]);
    s = parents[s].state;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

namespace {

/// Lazy difference-emptiness: BFS over reachable (a, b) pair states looking
/// for a pair accepted by `a` but not by `b`.  Discovery order matches
/// shortest_word(product(a, b, kDifference)) letter for letter, so the
/// returned witness is identical to the eager pipeline's -- it just never
/// materializes the n·m product table.  Both inputs must share an alphabet.
/// The visited/parent store is a flat open-addressed table keyed by packed
/// pair id (replacing unordered_map: no per-node allocations).
std::optional<Word> lazy_difference_witness(const Dfa& a, const Dfa& b) {
  const std::size_t k = a.alphabet().size();
  const std::uint64_t m = b.state_count();
  const auto key = [m](StateId x, StateId y) {
    return static_cast<std::uint64_t>(x) * m + y;
  };
  constexpr std::uint32_t kRoot = 0xffffffffu;
  constexpr std::uint32_t kFree = 0xfffffffeu;
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t from = 0;
    std::uint32_t letter = kFree;
  };
  const auto mix = [](std::uint64_t x) {
    // splitmix64 finalizer: pair keys are sequential-ish, so spread them.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };

  std::vector<Slot> slots(1024);
  std::size_t count = 0;
  const auto find_slot = [&](std::uint64_t target) -> Slot& {
    std::size_t at = mix(target) & (slots.size() - 1);
    while (slots[at].letter != kFree && slots[at].key != target) {
      at = (at + 1) & (slots.size() - 1);
    }
    return slots[at];
  };
  // Inserts (key -> prev) unless present; returns whether it was fresh.
  const auto try_insert = [&](std::uint64_t target, std::uint64_t from,
                              std::uint32_t letter) {
    if ((count + 1) * 10 >= slots.size() * 7) {
      std::vector<Slot> old(slots.size() * 2);
      old.swap(slots);
      for (const Slot& slot : old) {
        if (slot.letter != kFree) find_slot(slot.key) = slot;
      }
    }
    Slot& slot = find_slot(target);
    if (slot.letter != kFree) return false;
    slot = Slot{target, from, letter};
    ++count;
    return true;
  };

  std::vector<std::pair<StateId, StateId>> work;
  std::size_t head = 0;

  const auto is_goal = [&](StateId x, StateId y) {
    return a.is_accepting(x) && !b.is_accepting(y);
  };
  const std::uint64_t start = key(a.initial(), b.initial());
  try_insert(start, 0, kRoot);
  work.emplace_back(a.initial(), b.initial());

  std::optional<std::uint64_t> goal;
  if (is_goal(a.initial(), b.initial())) goal = start;
  std::size_t popped = 0;
  while (!goal && head < work.size()) {
    if ((++popped & 0xFFF) == 0) {
      support::guard::check_deadline("fsm.inclusion");
    }
    const auto [x, y] = work[head++];
    const std::uint64_t from = key(x, y);
    for (std::size_t letter = 0; letter < k && !goal; ++letter) {
      const StateId tx = a.transition(x, letter);
      const StateId ty = b.transition(y, letter);
      const std::uint64_t to = key(tx, ty);
      if (!try_insert(to, from, static_cast<std::uint32_t>(letter))) continue;
      if (is_goal(tx, ty)) goal = to;
      work.emplace_back(tx, ty);
    }
  }
  support::metrics::record_product_pairs(count);
  if (!goal) return std::nullopt;

  Word word;
  std::uint64_t at = *goal;
  for (Slot prev = find_slot(at); prev.letter != kRoot;
       at = prev.from, prev = find_slot(at)) {
    word.push_back(a.alphabet()[prev.letter]);
  }
  std::reverse(word.begin(), word.end());
  support::metrics::record_counterexample(word.size());
  return word;
}

}  // namespace

std::optional<Word> inclusion_witness(const Dfa& a, const Dfa& b) {
  support::trace::Span span("fsm.inclusion");
  const std::vector<Symbol> joined = sorted_union(a.alphabet(), b.alphabet());
  const Dfa ax = extend_alphabet(a, joined);
  const Dfa bx = extend_alphabet(b, joined);
  std::optional<Word> witness = lazy_difference_witness(ax, bx);
  span.arg("included", witness ? std::string_view("false")
                               : std::string_view("true"));
  if (witness) {
    span.arg("witness_len", static_cast<std::uint64_t>(witness->size()));
  }
  return witness;
}

bool included(const Dfa& a, const Dfa& b) {
  return !inclusion_witness(a, b).has_value();
}

bool equivalent(const Dfa& a, const Dfa& b) {
  support::trace::Span span("fsm.equivalence");
  const std::vector<Symbol> joined = sorted_union(a.alphabet(), b.alphabet());
  const Dfa ax = extend_alphabet(a, joined);
  const Dfa bx = extend_alphabet(b, joined);
  const std::size_t k = joined.size();
  const std::size_t offset = ax.state_count();

  // Hopcroft–Karp: merge the initial pair, then propagate successor merges;
  // the languages differ iff some merged pair disagrees on acceptance.
  std::vector<std::uint32_t> parent(offset + bx.state_count());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::uint32_t s) {
    while (parent[s] != s) {
      parent[s] = parent[parent[s]];  // path halving
      s = parent[s];
    }
    return s;
  };
  const auto unite = [&](std::uint32_t p, std::uint32_t q) {
    p = find(p);
    q = find(q);
    if (p == q) return false;
    parent[p] = q;
    return true;
  };

  std::vector<std::pair<StateId, StateId>> stack;
  std::uint64_t pairs = 1;
  unite(ax.initial(), static_cast<std::uint32_t>(offset) + bx.initial());
  stack.emplace_back(ax.initial(), bx.initial());
  while (!stack.empty()) {
    const auto [x, y] = stack.back();
    stack.pop_back();
    if (ax.is_accepting(x) != bx.is_accepting(y)) {
      support::metrics::record_product_pairs(pairs);
      span.arg("pairs", pairs);
      return false;
    }
    for (std::size_t letter = 0; letter < k; ++letter) {
      const StateId tx = ax.transition(x, letter);
      const StateId ty = bx.transition(y, letter);
      if (unite(tx, static_cast<std::uint32_t>(offset) + ty)) {
        ++pairs;
        stack.emplace_back(tx, ty);
      }
    }
  }
  support::metrics::record_product_pairs(pairs);
  span.arg("pairs", pairs);
  return true;
}

Nfa map_labels(const Nfa& nfa, const std::function<Symbol(Symbol)>& map) {
  Nfa out;
  out.add_states(nfa.state_count());
  for (const Transition& t : nfa.transitions()) {
    if (t.is_epsilon()) {
      out.add_epsilon(t.from, t.to);
    } else {
      const Symbol mapped = map(t.symbol);
      if (mapped.valid()) {
        out.add_transition(t.from, mapped, t.to);
      } else {
        out.add_epsilon(t.from, t.to);
      }
    }
  }
  for (StateId s : nfa.initial_states()) out.mark_initial(s);
  for (StateId s : nfa.accepting_states()) out.mark_accepting(s);
  return out;
}

Nfa to_nfa(const Dfa& dfa) {
  Nfa out;
  out.add_states(dfa.state_count());
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      out.add_transition(s, dfa.alphabet()[letter],
                         dfa.transition(s, letter));
    }
    if (dfa.is_accepting(s)) out.mark_accepting(s);
  }
  out.mark_initial(dfa.initial());
  return out;
}

std::vector<bool> live_states(const Dfa& dfa) {
  const std::size_t n = dfa.state_count();
  const std::size_t k = dfa.alphabet().size();
  const StateId* raw = dfa.transition_table().data();

  support::ArenaScope scope(kernel_arena());
  support::Arena& arena = scope.arena();
  // Reverse adjacency in CSR form (counting sort by target), then BFS
  // backwards from the accepting states.
  std::uint32_t* off = arena.allocate_array<std::uint32_t>(n + 1);
  std::fill_n(off, n + 1, 0);
  for (std::size_t i = 0; i < n * k; ++i) ++off[raw[i] + 1];
  for (std::size_t t = 0; t < n; ++t) off[t + 1] += off[t];
  StateId* preds = arena.allocate_array<StateId>(n * k);
  for (std::size_t i = 0; i < n * k; ++i) {
    preds[off[raw[i]]++] = static_cast<StateId>(i / k);
  }
  for (std::size_t t = n; t > 0; --t) off[t] = off[t - 1];
  off[0] = 0;

  char* live = arena.allocate_array<char>(n);
  std::fill_n(live, n, 0);
  StateId* work = arena.allocate_array<StateId>(n);
  std::size_t head = 0;
  std::size_t tail = 0;
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_accepting(s)) {
      live[s] = 1;
      work[tail++] = s;
    }
  }
  while (head < tail) {
    const StateId s = work[head++];
    for (std::uint32_t i = off[s]; i < off[s + 1]; ++i) {
      const StateId p = preds[i];
      if (live[p] == 0) {
        live[p] = 1;
        work[tail++] = p;
      }
    }
  }
  return std::vector<bool>(live, live + n);
}

std::size_t reachable_count(const Dfa& dfa) {
  const std::size_t k = dfa.alphabet().size();
  const std::size_t n = dfa.state_count();
  const StateId* raw = dfa.transition_table().data();

  support::ArenaScope scope(kernel_arena());
  support::Arena& arena = scope.arena();
  const std::size_t width = word_stride(n);
  std::uint64_t* visited = arena.allocate_array<std::uint64_t>(width);
  std::fill_n(visited, width, 0);
  StateId* work = arena.allocate_array<StateId>(n);
  std::size_t head = 0;
  std::size_t tail = 0;
  work[tail++] = dfa.initial();
  visited[dfa.initial() / 64] |= std::uint64_t{1} << (dfa.initial() % 64);
  while (head < tail) {
    const StateId s = work[head++];
    const StateId* row = raw + static_cast<std::size_t>(s) * k;
    for (std::size_t letter = 0; letter < k; ++letter) {
      const StateId t = row[letter];
      const std::uint64_t bit = std::uint64_t{1} << (t % 64);
      if ((visited[t / 64] & bit) == 0) {
        visited[t / 64] |= bit;
        work[tail++] = t;
      }
    }
  }
  std::size_t count = 0;
  for (std::size_t w = 0; w < width; ++w) {
    count += static_cast<std::size_t>(std::popcount(visited[w]));
  }
  return count;
}

}  // namespace shelley::fsm
