// CompiledDfa: the monitoring-kernel form of a minimal usage DFA -- a dense
// row-major uint32 transition table (states x alphabet) with every dead
// state merged into one appended sink row, packed accepting/live bitmaps,
// and a letter-id event alphabet.  One step() is one bounded load; the
// letter ids double as the wire event ids of the streaming monitor.
//
// The compiled form is a cacheable artifact: serialize()/deserialize()
// define a versioned byte format (stored under its own BehaviorCache kind,
// keyed by the class fingerprint) with the same corruption discipline as
// fsm/serialize.hpp -- any truncation or bit flip decodes to a structured
// BinaryFormatError, never UB.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fsm/dfa.hpp"
#include "support/binary.hpp"
#include "support/symbol.hpp"

namespace shelley::fsm {

class CompiledDfa {
 public:
  /// Event id on the compiled hot path: the index of the event's column in
  /// the transition table.  Letter order is the source DFA's alphabet order
  /// (sorted by symbol id at compile time) and is baked into the table, so
  /// it survives serialization into a process with different interning.
  using Letter = std::uint32_t;
  static constexpr Letter kNoLetter = 0xffffffffu;

  CompiledDfa() = default;

  /// Compiles a minimal usage DFA: computes live states, appends a sink row,
  /// redirects every dead target to the sink, and packs accepting/live
  /// bitmaps.  `table` resolves alphabet symbols to their event names.
  [[nodiscard]] static CompiledDfa compile(const Dfa& dfa,
                                           const SymbolTable& table);

  /// Rows in the compiled table (source states plus the sink row).
  [[nodiscard]] std::uint32_t state_count() const { return states_; }
  [[nodiscard]] std::uint32_t letter_count() const { return letters_; }
  [[nodiscard]] std::uint32_t initial() const { return initial_; }
  /// The merged dead state: self-loops on every letter, never accepting,
  /// never live.  Entering it is what the monitor reports as a violation.
  [[nodiscard]] std::uint32_t sink() const { return sink_; }

  /// One monitor step: a single bounded load.  `state` and `letter` must be
  /// in range (the decoders and compile() guarantee every stored target is).
  [[nodiscard]] std::uint32_t step(std::uint32_t state, Letter letter) const {
    return table_[static_cast<std::size_t>(state) * letters_ + letter];
  }

  [[nodiscard]] bool accepting(std::uint32_t state) const {
    return (accepting_[state / 64] >> (state % 64)) & 1;
  }
  /// True iff some continuation from `state` reaches an accepting state.
  /// The sink is never live.
  [[nodiscard]] bool live(std::uint32_t state) const {
    return (live_[state / 64] >> (state % 64)) & 1;
  }

  /// Letter of an event name / interned symbol; kNoLetter when the event is
  /// not in the class alphabet (a violation for the monitor).
  [[nodiscard]] Letter letter_of(std::string_view event) const;
  [[nodiscard]] Letter letter_of(Symbol symbol) const;

  /// Event name of a letter (reports, allowed-next sets).
  [[nodiscard]] const std::string& event_name(Letter letter) const {
    return names_[letter];
  }
  /// Letter-order event names (serialization order).
  [[nodiscard]] const std::vector<std::string>& event_names() const {
    return names_;
  }
  /// The letter's symbol in the table this instance was compiled against
  /// (or deserialized into).
  [[nodiscard]] Symbol event_symbol(Letter letter) const {
    return symbols_[letter];
  }

  /// Appends (without clearing) the letters allowed next from `state` --
  /// those whose target is live -- in letter order.  The no-allocation
  /// allowed-next path: callers reuse `out` across events.
  void allowed_letters(std::uint32_t state, std::vector<Letter>& out) const;

  /// Raw row-major cells (states x letters), for tests and sweeps.
  [[nodiscard]] const std::vector<std::uint32_t>& cells() const {
    return table_;
  }

  // -- Versioned byte format ------------------------------------------------
  void serialize(support::BinaryWriter& writer) const;
  [[nodiscard]] std::string to_bytes() const;
  /// Decodes and fully validates one compiled table, interning event names
  /// into `table`.  Throws support::BinaryFormatError on any malformation:
  /// version skew, implausible sizes, out-of-range targets, bitmap tail
  /// bits, a corrupted sink row, or a live-target inconsistency.
  [[nodiscard]] static CompiledDfa deserialize(support::BinaryReader& reader,
                                               SymbolTable& table);
  [[nodiscard]] static CompiledDfa from_bytes(std::string_view bytes,
                                              SymbolTable& table);

 private:
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };

  void index_letters();

  std::uint32_t letters_ = 0;
  std::uint32_t states_ = 0;  // includes the sink row
  std::uint32_t initial_ = 0;
  std::uint32_t sink_ = 0;
  std::vector<std::uint32_t> table_;       // states_ x letters_, row-major
  std::vector<std::uint64_t> accepting_;   // packed, bit s of word s/64
  std::vector<std::uint64_t> live_;        // packed, sink bit always 0
  std::vector<std::string> names_;         // letter -> event name
  std::vector<Symbol> symbols_;            // letter -> local symbol
  std::unordered_map<Symbol, Letter> by_symbol_;
  std::unordered_map<std::string, Letter, NameHash, std::equal_to<>> by_name_;
};

/// Version tag of the compiled-table byte format; bumped on layout changes
/// so stale cache entries decode to a structured failure, not garbage.
inline constexpr std::uint32_t kCompiledDfaFormatVersion = 1;

}  // namespace shelley::fsm
