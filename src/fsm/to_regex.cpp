#include "fsm/to_regex.hpp"

#include <map>
#include <utility>
#include <vector>

#include "fsm/ops.hpp"
#include "rex/derivative.hpp"

namespace shelley::fsm {
namespace {

// Generalized NFA: single initial state, single accepting state, at most
// one regex edge between any ordered state pair.
class Gnfa {
 public:
  explicit Gnfa(const Nfa& nfa) {
    // States 0..n-1 are the NFA's; n is the fresh start, n+1 the fresh end.
    const std::size_t n = nfa.state_count();
    start_ = n;
    end_ = n + 1;
    for (const Transition& t : nfa.transitions()) {
      add_edge(t.from, t.to,
               t.is_epsilon() ? rex::epsilon() : rex::symbol(t.symbol));
    }
    for (StateId s : nfa.initial_states()) {
      add_edge(start_, s, rex::epsilon());
    }
    for (StateId s : nfa.accepting_states()) {
      add_edge(s, end_, rex::epsilon());
    }
    state_count_ = n + 2;
  }

  /// Eliminates every interior state; returns the start->end regex.
  rex::Regex eliminate() {
    for (std::size_t victim = 0; victim < state_count_; ++victim) {
      if (victim == start_ || victim == end_) continue;
      eliminate_state(victim);
    }
    const auto it = edges_.find({start_, end_});
    return it == edges_.end() ? rex::empty() : it->second;
  }

 private:
  void add_edge(std::size_t from, std::size_t to, rex::Regex r) {
    auto [it, inserted] = edges_.emplace(std::make_pair(from, to), r);
    if (!inserted) it->second = rex::smart_alt(it->second, std::move(r));
  }

  void eliminate_state(std::size_t victim) {
    // Self loop on the victim (if any) becomes a star in every bypass.
    rex::Regex loop = rex::epsilon();
    if (const auto self = edges_.find({victim, victim});
        self != edges_.end()) {
      loop = rex::smart_star(self->second);
    }
    // Collect in/out edges of the victim.
    std::vector<std::pair<std::size_t, rex::Regex>> incoming;
    std::vector<std::pair<std::size_t, rex::Regex>> outgoing;
    for (const auto& [key, regex] : edges_) {
      const auto& [from, to] = key;
      if (to == victim && from != victim) incoming.emplace_back(from, regex);
      if (from == victim && to != victim) outgoing.emplace_back(to, regex);
    }
    // Remove all edges touching the victim.
    for (auto it = edges_.begin(); it != edges_.end();) {
      if (it->first.first == victim || it->first.second == victim) {
        it = edges_.erase(it);
      } else {
        ++it;
      }
    }
    // Bypass: from --in·loop*·out--> to.
    for (const auto& [from, in] : incoming) {
      for (const auto& [to, out] : outgoing) {
        add_edge(from, to,
                 rex::smart_concat(in, rex::smart_concat(loop, out)));
      }
    }
  }

  std::map<std::pair<std::size_t, std::size_t>, rex::Regex> edges_;
  std::size_t start_ = 0;
  std::size_t end_ = 0;
  std::size_t state_count_ = 0;
};

}  // namespace

rex::Regex to_regex(const Nfa& nfa) { return Gnfa(nfa).eliminate(); }

rex::Regex to_regex(const Dfa& dfa) { return to_regex(to_nfa(dfa)); }

}  // namespace shelley::fsm
