#include "fsm/thompson.hpp"

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::fsm {

std::pair<StateId, StateId> add_fragment(Nfa& nfa, const rex::Regex& r) {
  using rex::Kind;
  switch (r->kind()) {
    case Kind::kEmpty: {
      // Two disconnected states: nothing reaches the exit.
      const StateId entry = nfa.add_state();
      const StateId exit = nfa.add_state();
      return {entry, exit};
    }
    case Kind::kEpsilon: {
      const StateId entry = nfa.add_state();
      const StateId exit = nfa.add_state();
      nfa.add_epsilon(entry, exit);
      return {entry, exit};
    }
    case Kind::kSymbol: {
      const StateId entry = nfa.add_state();
      const StateId exit = nfa.add_state();
      nfa.add_transition(entry, r->symbol(), exit);
      return {entry, exit};
    }
    case Kind::kConcat: {
      const auto [entry1, exit1] = add_fragment(nfa, r->left());
      const auto [entry2, exit2] = add_fragment(nfa, r->right());
      nfa.add_epsilon(exit1, entry2);
      return {entry1, exit2};
    }
    case Kind::kUnion: {
      const StateId entry = nfa.add_state();
      const StateId exit = nfa.add_state();
      const auto [entry1, exit1] = add_fragment(nfa, r->left());
      const auto [entry2, exit2] = add_fragment(nfa, r->right());
      nfa.add_epsilon(entry, entry1);
      nfa.add_epsilon(entry, entry2);
      nfa.add_epsilon(exit1, exit);
      nfa.add_epsilon(exit2, exit);
      return {entry, exit};
    }
    case Kind::kStar: {
      const StateId entry = nfa.add_state();
      const StateId exit = nfa.add_state();
      const auto [body_entry, body_exit] = add_fragment(nfa, r->left());
      nfa.add_epsilon(entry, exit);
      nfa.add_epsilon(entry, body_entry);
      nfa.add_epsilon(body_exit, body_entry);
      nfa.add_epsilon(body_exit, exit);
      return {entry, exit};
    }
  }
  // Unreachable; keep the compiler satisfied.
  const StateId entry = nfa.add_state();
  return {entry, entry};
}

Nfa from_regex(const rex::Regex& r) {
  support::trace::Span span("fsm.thompson");
  Nfa nfa;
  const auto [entry, exit] = add_fragment(nfa, r);
  nfa.mark_initial(entry);
  nfa.mark_accepting(exit);
  support::metrics::record_nfa_states(nfa.state_count());
  span.arg("regex_nodes", static_cast<std::uint64_t>(r->size()));
  span.arg("nfa_states", static_cast<std::uint64_t>(nfa.state_count()));
  return nfa;
}

}  // namespace shelley::fsm
