#include "fsm/nfa.hpp"

#include <algorithm>
#include <stdexcept>

namespace shelley::fsm {

namespace {

/// Words needed to hold one bit per state.
std::size_t word_stride(std::size_t state_count) {
  return (state_count + 63) / 64;
}

/// Inserts `state` into a sorted duplicate-free vector.
void insert_sorted(std::vector<StateId>& states, StateId state) {
  const auto it = std::lower_bound(states.begin(), states.end(), state);
  if (it == states.end() || *it != state) states.insert(it, state);
}

}  // namespace

StateId Nfa::add_state() {
  invalidate();
  return static_cast<StateId>(state_count_++);
}

StateId Nfa::add_states(std::size_t count) {
  const auto first = static_cast<StateId>(state_count_);
  invalidate();
  state_count_ += count;
  return first;
}

void Nfa::check_state(StateId state) const {
  if (state >= state_count_) {
    throw std::out_of_range("Nfa: state id out of range");
  }
}

void Nfa::invalidate() const {
  csr_dirty_ = true;
  closures_dirty_ = true;
  alphabet_dirty_ = true;
  accepting_dirty_ = true;
}

void Nfa::add_transition(StateId from, Symbol symbol, StateId to) {
  check_state(from);
  check_state(to);
  transitions_.push_back(Transition{from, symbol, to});
  csr_dirty_ = true;
  if (symbol.valid()) {
    alphabet_dirty_ = true;
  } else {
    closures_dirty_ = true;
  }
}

void Nfa::add_epsilon(StateId from, StateId to) {
  add_transition(from, Symbol{}, to);
}

void Nfa::mark_initial(StateId state) {
  check_state(state);
  insert_sorted(initial_, state);
}

void Nfa::mark_accepting(StateId state) {
  check_state(state);
  insert_sorted(accepting_, state);
  accepting_dirty_ = true;
}

bool Nfa::is_accepting(StateId state) const {
  return std::binary_search(accepting_.begin(), accepting_.end(), state);
}

const std::vector<Symbol>& Nfa::alphabet() const {
  if (alphabet_dirty_) {
    alphabet_.clear();
    for (const Transition& t : transitions_) {
      if (!t.is_epsilon()) alphabet_.push_back(t.symbol);
    }
    std::sort(alphabet_.begin(), alphabet_.end());
    alphabet_.erase(std::unique(alphabet_.begin(), alphabet_.end()),
                    alphabet_.end());
    alphabet_dirty_ = false;
  }
  return alphabet_;
}

void Nfa::ensure_csr() const {
  if (!csr_dirty_) return;
  const std::size_t n = state_count_;

  // Counting sort of the transitions by source state, ε and non-ε streams
  // kept separate.  A second pass insertion-sorts each state's non-ε run by
  // symbol id; insertion sort is stable, so equal symbols keep their append
  // order, and runs are short in practice.
  csr_off_.assign(n + 1, 0);
  eps_off_.assign(n + 1, 0);
  std::size_t sym_edges = 0;
  std::size_t eps_edges = 0;
  for (const Transition& t : transitions_) {
    if (t.is_epsilon()) {
      ++eps_off_[t.from + 1];
      ++eps_edges;
    } else {
      ++csr_off_[t.from + 1];
      ++sym_edges;
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    csr_off_[s + 1] += csr_off_[s];
    eps_off_[s + 1] += eps_off_[s];
  }

  csr_sym_.resize(sym_edges);
  csr_to_.resize(sym_edges);
  eps_to_.resize(eps_edges);
  // Scatter using the offsets as running cursors, then shift them back.
  for (const Transition& t : transitions_) {
    if (t.is_epsilon()) {
      eps_to_[eps_off_[t.from]++] = t.to;
    } else {
      const std::uint32_t at = csr_off_[t.from]++;
      csr_sym_[at] = t.symbol;
      csr_to_[at] = t.to;
    }
  }
  for (std::size_t s = n; s > 0; --s) {
    csr_off_[s] = csr_off_[s - 1];
    eps_off_[s] = eps_off_[s - 1];
  }
  if (n > 0) {
    csr_off_[0] = 0;
    eps_off_[0] = 0;
  }

  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t begin = csr_off_[s];
    const std::uint32_t end = csr_off_[s + 1];
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      const Symbol sym = csr_sym_[i];
      const StateId to = csr_to_[i];
      std::uint32_t j = i;
      while (j > begin && sym < csr_sym_[j - 1]) {
        csr_sym_[j] = csr_sym_[j - 1];
        csr_to_[j] = csr_to_[j - 1];
        --j;
      }
      csr_sym_[j] = sym;
      csr_to_[j] = to;
    }
  }
  csr_dirty_ = false;
}

Nfa::SymbolCsr Nfa::symbol_csr() const {
  ensure_csr();
  return SymbolCsr{csr_off_.data(), csr_sym_.data(), csr_to_.data()};
}

Nfa::EpsilonCsr Nfa::epsilon_csr() const {
  ensure_csr();
  return EpsilonCsr{eps_off_.data(), eps_to_.data()};
}

void Nfa::ensure_closures() const {
  if (!closures_dirty_) return;
  ensure_csr();
  const std::size_t n = state_count_;
  stride_ = word_stride(n);
  closure_words_.assign(n * stride_, 0);
  for (std::size_t s = 0; s < n; ++s) {
    closure_words_[s * stride_ + s / 64] |= std::uint64_t{1} << (s % 64);
  }
  // Fixpoint over ε-edges: row(s) ⊇ row(t) for every s --ε--> t, with
  // word-parallel row unions.  Sweeps alternate direction so chains aligned
  // either way converge in two passes; ε-cycles converge without an SCC
  // pass in O(diameter) sweeps.
  bool changed = true;
  bool forward = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = forward ? i : n - 1 - i;
      std::uint64_t* row = closure_words_.data() + s * stride_;
      for (std::uint32_t e = eps_off_[s]; e < eps_off_[s + 1]; ++e) {
        const std::uint64_t* src =
            closure_words_.data() + std::size_t{eps_to_[e]} * stride_;
        for (std::size_t w = 0; w < stride_; ++w) {
          const std::uint64_t merged = row[w] | src[w];
          changed = changed || merged != row[w];
          row[w] = merged;
        }
      }
    }
    forward = !forward;
  }
  closures_dirty_ = false;
}

Nfa::ClosureTable Nfa::closures() const {
  ensure_closures();
  return ClosureTable{closure_words_.data(), stride_};
}

const std::uint64_t* Nfa::accepting_words() const {
  if (accepting_dirty_) {
    accepting_words_.assign(word_stride(state_count_), 0);
    for (StateId s : accepting_) {
      accepting_words_[s / 64] |= std::uint64_t{1} << (s % 64);
    }
    accepting_dirty_ = false;
  }
  return accepting_words_.data();
}

StateSet Nfa::epsilon_closure(const StateSet& states) const {
  const ClosureTable table = closures();
  StateSet out(state_count_);
  states.for_each([&](StateId s) { out.unite_row(table.row(s)); });
  return out;
}

StateSet Nfa::initial_closure() const {
  StateSet seed(state_count_);
  for (StateId s : initial_) seed.insert(s);
  return epsilon_closure(seed);
}

StateSet Nfa::step(const StateSet& states, Symbol symbol) const {
  const SymbolCsr csr = symbol_csr();
  StateSet out(state_count_);
  states.for_each([&](StateId s) {
    const Symbol* begin = csr.symbols + csr.offsets[s];
    const Symbol* end = csr.symbols + csr.offsets[s + 1];
    const Symbol* hit = std::lower_bound(begin, end, symbol);
    for (; hit != end && *hit == symbol; ++hit) {
      out.insert(csr.targets[hit - csr.symbols]);
    }
  });
  return out;
}

bool Nfa::any_accepting(const StateSet& states) const {
  const std::uint64_t* acc = accepting_words();
  const std::size_t words =
      std::min(states.word_count(), word_stride(state_count_));
  for (std::size_t w = 0; w < words; ++w) {
    if ((states.words()[w] & acc[w]) != 0) return true;
  }
  return false;
}

std::set<StateId> Nfa::epsilon_closure(const std::set<StateId>& states) const {
  StateSet seed(state_count_);
  for (StateId s : states) seed.insert(s);
  const StateSet closed = epsilon_closure(seed);
  std::set<StateId> out;
  closed.for_each([&](StateId s) { out.insert(s); });
  return out;
}

std::set<StateId> Nfa::step(const std::set<StateId>& states,
                            Symbol symbol) const {
  StateSet seed(state_count_);
  for (StateId s : states) seed.insert(s);
  const StateSet stepped = step(seed, symbol);
  std::set<StateId> out;
  stepped.for_each([&](StateId s) { out.insert(s); });
  return out;
}

bool Nfa::accepts(const Word& word) const {
  StateSet current = initial_closure();
  for (Symbol s : word) {
    current = epsilon_closure(step(current, s));
    if (current.empty()) return false;
  }
  return any_accepting(current);
}

StateId Nfa::import_states(const Nfa& other) {
  const auto offset = static_cast<StateId>(state_count_);
  add_states(other.state_count());
  for (const Transition& t : other.transitions()) {
    add_transition(t.from + offset, t.symbol, t.to + offset);
  }
  return offset;
}

}  // namespace shelley::fsm
