#include "fsm/nfa.hpp"

#include <deque>
#include <stdexcept>

namespace shelley::fsm {

StateId Nfa::add_state() {
  out_edges_.emplace_back();
  closures_dirty_ = true;
  return static_cast<StateId>(state_count_++);
}

StateId Nfa::add_states(std::size_t count) {
  const auto first = static_cast<StateId>(state_count_);
  for (std::size_t i = 0; i < count; ++i) add_state();
  return first;
}

void Nfa::check_state(StateId state) const {
  if (state >= state_count_) {
    throw std::out_of_range("Nfa: state id out of range");
  }
}

void Nfa::add_transition(StateId from, Symbol symbol, StateId to) {
  check_state(from);
  check_state(to);
  const auto index = static_cast<std::uint32_t>(transitions_.size());
  transitions_.push_back(Transition{from, symbol, to});
  out_edges_[from].push_back(index);
  if (!symbol.valid()) closures_dirty_ = true;
}

void Nfa::add_epsilon(StateId from, StateId to) {
  add_transition(from, Symbol{}, to);
}

void Nfa::mark_initial(StateId state) {
  check_state(state);
  initial_.insert(state);
}

void Nfa::mark_accepting(StateId state) {
  check_state(state);
  accepting_.insert(state);
}

std::set<Symbol> Nfa::alphabet() const {
  std::set<Symbol> out;
  for (const Transition& t : transitions_) {
    if (!t.is_epsilon()) out.insert(t.symbol);
  }
  return out;
}

void Nfa::ensure_closures() const {
  if (!closures_dirty_) return;
  closures_.assign(state_count_, StateSet(state_count_));
  for (StateId s = 0; s < state_count_; ++s) closures_[s].insert(s);
  // Fixpoint over ε-edges: closure(s) ⊇ closure(t) for every s --ε--> t.
  // Handles ε-cycles without an SCC pass; converges in O(diameter) sweeps.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : transitions_) {
      if (t.is_epsilon() && closures_[t.from].unite(closures_[t.to])) {
        changed = true;
      }
    }
  }
  closures_dirty_ = false;
}

const StateSet& Nfa::state_closure(StateId state) const {
  check_state(state);
  ensure_closures();
  return closures_[state];
}

StateSet Nfa::epsilon_closure(const StateSet& states) const {
  ensure_closures();
  StateSet out(state_count_);
  states.for_each([&](StateId s) { out.unite(closures_[s]); });
  return out;
}

StateSet Nfa::initial_closure() const {
  StateSet seed(state_count_);
  for (StateId s : initial_) seed.insert(s);
  return epsilon_closure(seed);
}

StateSet Nfa::step(const StateSet& states, Symbol symbol) const {
  StateSet out(state_count_);
  states.for_each([&](StateId s) {
    for (std::uint32_t edge : out_edges_[s]) {
      const Transition& t = transitions_[edge];
      if (!t.is_epsilon() && t.symbol == symbol) out.insert(t.to);
    }
  });
  return out;
}

bool Nfa::any_accepting(const StateSet& states) const {
  for (StateId s : accepting_) {
    if (states.contains(s)) return true;
  }
  return false;
}

std::set<StateId> Nfa::epsilon_closure(const std::set<StateId>& states) const {
  StateSet seed(state_count_);
  for (StateId s : states) seed.insert(s);
  const StateSet closed = epsilon_closure(seed);
  std::set<StateId> out;
  closed.for_each([&](StateId s) { out.insert(s); });
  return out;
}

std::set<StateId> Nfa::step(const std::set<StateId>& states,
                            Symbol symbol) const {
  std::set<StateId> out;
  for (StateId state : states) {
    for (std::uint32_t edge : out_edges_[state]) {
      const Transition& t = transitions_[edge];
      if (!t.is_epsilon() && t.symbol == symbol) out.insert(t.to);
    }
  }
  return out;
}

bool Nfa::accepts(const Word& word) const {
  StateSet current = initial_closure();
  for (Symbol s : word) {
    current = epsilon_closure(step(current, s));
    if (current.empty()) return false;
  }
  return any_accepting(current);
}

StateId Nfa::import_states(const Nfa& other) {
  const auto offset = static_cast<StateId>(state_count_);
  add_states(other.state_count());
  for (const Transition& t : other.transitions()) {
    add_transition(t.from + offset, t.symbol, t.to + offset);
  }
  return offset;
}

}  // namespace shelley::fsm
