#include "fsm/nfa.hpp"

#include <deque>
#include <stdexcept>

namespace shelley::fsm {

StateId Nfa::add_state() {
  out_edges_.emplace_back();
  return static_cast<StateId>(state_count_++);
}

StateId Nfa::add_states(std::size_t count) {
  const auto first = static_cast<StateId>(state_count_);
  for (std::size_t i = 0; i < count; ++i) add_state();
  return first;
}

void Nfa::check_state(StateId state) const {
  if (state >= state_count_) {
    throw std::out_of_range("Nfa: state id out of range");
  }
}

void Nfa::add_transition(StateId from, Symbol symbol, StateId to) {
  check_state(from);
  check_state(to);
  const auto index = static_cast<std::uint32_t>(transitions_.size());
  transitions_.push_back(Transition{from, symbol, to});
  out_edges_[from].push_back(index);
}

void Nfa::add_epsilon(StateId from, StateId to) {
  add_transition(from, Symbol{}, to);
}

void Nfa::mark_initial(StateId state) {
  check_state(state);
  initial_.insert(state);
}

void Nfa::mark_accepting(StateId state) {
  check_state(state);
  accepting_.insert(state);
}

std::set<Symbol> Nfa::alphabet() const {
  std::set<Symbol> out;
  for (const Transition& t : transitions_) {
    if (!t.is_epsilon()) out.insert(t.symbol);
  }
  return out;
}

std::set<StateId> Nfa::epsilon_closure(const std::set<StateId>& states) const {
  std::set<StateId> closure = states;
  std::deque<StateId> work(states.begin(), states.end());
  while (!work.empty()) {
    const StateId state = work.front();
    work.pop_front();
    for (std::uint32_t edge : out_edges_[state]) {
      const Transition& t = transitions_[edge];
      if (t.is_epsilon() && closure.insert(t.to).second) {
        work.push_back(t.to);
      }
    }
  }
  return closure;
}

std::set<StateId> Nfa::step(const std::set<StateId>& states,
                            Symbol symbol) const {
  std::set<StateId> out;
  for (StateId state : states) {
    for (std::uint32_t edge : out_edges_[state]) {
      const Transition& t = transitions_[edge];
      if (!t.is_epsilon() && t.symbol == symbol) out.insert(t.to);
    }
  }
  return out;
}

bool Nfa::accepts(const Word& word) const {
  std::set<StateId> current = epsilon_closure(initial_);
  for (Symbol s : word) {
    current = epsilon_closure(step(current, s));
    if (current.empty()) return false;
  }
  for (StateId state : current) {
    if (accepting_.contains(state)) return true;
  }
  return false;
}

StateId Nfa::import_states(const Nfa& other) {
  const auto offset = static_cast<StateId>(state_count_);
  add_states(other.state_count());
  for (const Transition& t : other.transitions()) {
    add_transition(t.from + offset, t.symbol, t.to + offset);
  }
  return offset;
}

}  // namespace shelley::fsm
