#include "fsm/table.hpp"

#include <bit>
#include <cstring>

#include "fsm/ops.hpp"

namespace shelley::fsm {

namespace {

// Same plausibility caps as fsm/serialize.cpp: a corrupted size field must
// fail bounds checks before it can allocate gigabytes.
constexpr std::uint64_t kMaxStates = 1u << 24;
constexpr std::uint64_t kMaxAlphabet = 1u << 20;

constexpr std::size_t bitmap_words(std::uint64_t states) {
  return static_cast<std::size_t>((states + 63) / 64);
}

void set_bit(std::vector<std::uint64_t>& words, std::uint64_t index) {
  words[index / 64] |= std::uint64_t{1} << (index % 64);
}

}  // namespace

void CompiledDfa::index_letters() {
  by_symbol_.clear();
  by_name_.clear();
  by_symbol_.reserve(letters_);
  by_name_.reserve(letters_);
  for (Letter letter = 0; letter < letters_; ++letter) {
    by_symbol_.emplace(symbols_[letter], letter);
    by_name_.emplace(names_[letter], letter);
  }
}

CompiledDfa CompiledDfa::compile(const Dfa& dfa, const SymbolTable& table) {
  CompiledDfa out;
  const std::size_t n = dfa.state_count();
  out.letters_ = static_cast<std::uint32_t>(dfa.alphabet().size());
  out.states_ = static_cast<std::uint32_t>(n + 1);  // + sink row
  out.initial_ = dfa.initial();
  out.sink_ = static_cast<std::uint32_t>(n);

  const std::vector<bool> live = live_states(dfa);
  out.table_.assign(static_cast<std::size_t>(out.states_) * out.letters_,
                    out.sink_);
  const std::vector<StateId>& source = dfa.transition_table();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t l = 0; l < out.letters_; ++l) {
      const StateId target = source[s * out.letters_ + l];
      // Every dead target folds into the sink; dead rows become all-sink
      // automatically (every successor of a dead state is dead).
      out.table_[s * out.letters_ + l] = live[target] ? target : out.sink_;
    }
  }
  // The sink row self-loops (pre-filled by the assign above).

  out.accepting_.assign(bitmap_words(out.states_), 0);
  out.live_.assign(bitmap_words(out.states_), 0);
  for (std::size_t s = 0; s < n; ++s) {
    if (dfa.is_accepting(s)) set_bit(out.accepting_, s);
    if (live[s]) set_bit(out.live_, s);
  }

  out.names_.reserve(out.letters_);
  out.symbols_.reserve(out.letters_);
  for (const Symbol symbol : dfa.alphabet()) {
    out.names_.push_back(table.name(symbol));
    out.symbols_.push_back(symbol);
  }
  out.index_letters();
  return out;
}

CompiledDfa::Letter CompiledDfa::letter_of(std::string_view event) const {
  const auto it = by_name_.find(event);
  return it == by_name_.end() ? kNoLetter : it->second;
}

CompiledDfa::Letter CompiledDfa::letter_of(Symbol symbol) const {
  const auto it = by_symbol_.find(symbol);
  return it == by_symbol_.end() ? kNoLetter : it->second;
}

void CompiledDfa::allowed_letters(std::uint32_t state,
                                  std::vector<Letter>& out) const {
  const std::uint32_t* row =
      table_.data() + static_cast<std::size_t>(state) * letters_;
  for (Letter letter = 0; letter < letters_; ++letter) {
    if (live(row[letter])) out.push_back(letter);
  }
}

void CompiledDfa::serialize(support::BinaryWriter& writer) const {
  writer.u32(kCompiledDfaFormatVersion);
  writer.u32(letters_);
  writer.u32(states_);
  writer.u32(initial_);
  writer.u32(sink_);
  for (const std::string& name : names_) writer.str(name);
  for (const std::uint64_t word : accepting_) writer.u64(word);
  for (const std::uint64_t word : live_) writer.u64(word);
  for (const std::uint32_t cell : table_) writer.u32(cell);
}

std::string CompiledDfa::to_bytes() const {
  support::BinaryWriter writer;
  serialize(writer);
  return writer.take();
}

namespace {

std::vector<std::uint64_t> read_bitmap(support::BinaryReader& reader,
                                       std::uint64_t states,
                                       const char* what) {
  std::vector<std::uint64_t> words(bitmap_words(states));
  for (std::uint64_t& word : words) word = reader.u64();
  // Bits above the state count are corruption: the writer never sets them,
  // and tolerating them would make equal tables compare unequal as bytes.
  const std::uint64_t tail = states % 64;
  if (tail != 0 && (words.back() >> tail) != 0) {
    throw support::BinaryFormatError(std::string("compiled table ") + what +
                                     " bitmap has tail bits set");
  }
  return words;
}

}  // namespace

CompiledDfa CompiledDfa::deserialize(support::BinaryReader& reader,
                                     SymbolTable& table) {
  const std::uint32_t version = reader.u32();
  if (version != kCompiledDfaFormatVersion) {
    throw support::BinaryFormatError("compiled table version unsupported");
  }
  CompiledDfa out;
  out.letters_ = reader.u32();
  out.states_ = reader.u32();
  out.initial_ = reader.u32();
  out.sink_ = reader.u32();
  if (out.letters_ > kMaxAlphabet) {
    throw support::BinaryFormatError("compiled table alphabet implausible");
  }
  if (out.states_ < 1 || out.states_ > kMaxStates + 1) {
    throw support::BinaryFormatError("compiled table state count implausible");
  }
  if (out.initial_ >= out.states_ || out.sink_ >= out.states_) {
    throw support::BinaryFormatError("compiled table state ids out of range");
  }

  out.names_.reserve(out.letters_);
  out.symbols_.reserve(out.letters_);
  for (Letter letter = 0; letter < out.letters_; ++letter) {
    out.names_.push_back(reader.str());
    out.symbols_.push_back(table.intern(out.names_.back()));
  }
  out.index_letters();
  if (out.by_name_.size() != out.names_.size()) {
    throw support::BinaryFormatError("compiled table has duplicate events");
  }

  out.accepting_ = read_bitmap(reader, out.states_, "accepting");
  out.live_ = read_bitmap(reader, out.states_, "live");
  if (out.accepting(out.sink_) || out.live(out.sink_)) {
    throw support::BinaryFormatError("compiled table sink marked live");
  }

  const std::size_t cells =
      static_cast<std::size_t>(out.states_) * out.letters_;
  const std::string_view cell_bytes = reader.raw(cells * 4);
  out.table_.resize(cells);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.table_.data(), cell_bytes.data(), cells * 4);
  } else {
    for (std::size_t i = 0; i < cells; ++i) {
      const auto* at =
          reinterpret_cast<const std::uint8_t*>(cell_bytes.data()) + i * 4;
      out.table_[i] = static_cast<std::uint32_t>(at[0]) |
                      static_cast<std::uint32_t>(at[1]) << 8 |
                      static_cast<std::uint32_t>(at[2]) << 16 |
                      static_cast<std::uint32_t>(at[3]) << 24;
    }
  }
  // Structural invariants the monitor's unchecked step() relies on: every
  // target in range and either live or the sink, and the sink self-looping.
  for (const std::uint32_t target : out.table_) {
    if (target >= out.states_) {
      throw support::BinaryFormatError("compiled table target out of range");
    }
    if (target != out.sink_ && !out.live(target)) {
      throw support::BinaryFormatError("compiled table targets a dead state");
    }
  }
  const std::uint32_t* sink_row =
      out.table_.data() + static_cast<std::size_t>(out.sink_) * out.letters_;
  for (Letter letter = 0; letter < out.letters_; ++letter) {
    if (sink_row[letter] != out.sink_) {
      throw support::BinaryFormatError("compiled table sink row corrupted");
    }
  }
  return out;
}

CompiledDfa CompiledDfa::from_bytes(std::string_view bytes,
                                    SymbolTable& table) {
  support::BinaryReader reader(bytes);
  CompiledDfa out = deserialize(reader, table);
  reader.expect_end();
  return out;
}

}  // namespace shelley::fsm
