#include "fsm/dfa.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace shelley::fsm {

Dfa::Dfa(std::size_t state_count, std::vector<Symbol> alphabet)
    : alphabet_(std::move(alphabet)),
      table_(state_count * alphabet_.size(), 0),
      accepting_words_((state_count + 63) / 64, 0),
      state_count_(state_count) {
  assert(std::is_sorted(alphabet_.begin(), alphabet_.end()));
  assert(std::adjacent_find(alphabet_.begin(), alphabet_.end()) ==
         alphabet_.end());
  if (state_count == 0) {
    throw std::invalid_argument("Dfa requires at least one state");
  }
}

Dfa Dfa::from_table(std::vector<Symbol> alphabet, std::vector<StateId> table,
                    std::vector<bool> accepting, StateId initial) {
  Dfa out(accepting.size(), std::move(alphabet));
  if (table.size() != accepting.size() * out.alphabet_.size()) {
    throw std::invalid_argument("Dfa::from_table: table size mismatch");
  }
  const auto n = static_cast<StateId>(accepting.size());
  if (initial >= n ||
      std::any_of(table.begin(), table.end(),
                  [n](StateId target) { return target >= n; })) {
    throw std::out_of_range("Dfa::from_table: state out of range");
  }
  out.table_ = std::move(table);
  for (StateId s = 0; s < n; ++s) {
    if (accepting[s]) {
      out.accepting_words_[s / 64] |= std::uint64_t{1} << (s % 64);
    }
  }
  out.initial_ = initial;
  return out;
}

std::optional<std::size_t> Dfa::letter_index(Symbol symbol) const {
  const auto it =
      std::lower_bound(alphabet_.begin(), alphabet_.end(), symbol);
  if (it == alphabet_.end() || *it != symbol) return std::nullopt;
  return static_cast<std::size_t>(it - alphabet_.begin());
}

void Dfa::set_accepting(StateId state, bool accepting) {
  if (state >= state_count_) {
    throw std::out_of_range("Dfa::set_accepting out of range");
  }
  const std::uint64_t bit = std::uint64_t{1} << (state % 64);
  if (accepting) {
    accepting_words_[state / 64] |= bit;
  } else {
    accepting_words_[state / 64] &= ~bit;
  }
}

void Dfa::set_transition(StateId from, std::size_t letter, StateId to) {
  if (from >= state_count() || to >= state_count() ||
      letter >= alphabet_.size()) {
    throw std::out_of_range("Dfa::set_transition out of range");
  }
  table_[from * alphabet_.size() + letter] = to;
}

StateId Dfa::transition(StateId from, std::size_t letter) const {
  return table_[from * alphabet_.size() + letter];
}

std::optional<StateId> Dfa::run(const Word& word) const {
  StateId state = initial_;
  for (Symbol s : word) {
    const auto letter = letter_index(s);
    if (!letter) return std::nullopt;
    state = transition(state, *letter);
  }
  return state;
}

bool Dfa::accepts(const Word& word) const {
  const auto state = run(word);
  return state.has_value() && is_accepting(*state);
}

std::size_t Dfa::accepting_count() const {
  std::size_t total = 0;
  for (std::uint64_t word : accepting_words_) total += std::popcount(word);
  return total;
}

}  // namespace shelley::fsm
