#include "fsm/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace shelley::fsm {

namespace {

// Caps keep a corrupted size field from allocating gigabytes before the
// bounds checks notice the buffer is short.  Real automata in this pipeline
// are far below both.
constexpr std::uint64_t kMaxStates = 1u << 24;
constexpr std::uint64_t kMaxAlphabet = 1u << 20;

}  // namespace

void write_dfa(const Dfa& dfa, const SymbolTable& table,
               support::BinaryWriter& writer) {
  writer.u64(dfa.alphabet().size());
  for (const Symbol symbol : dfa.alphabet()) {
    writer.str(table.name(symbol));
  }
  writer.u64(dfa.state_count());
  writer.u32(dfa.initial());
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    writer.u8(dfa.is_accepting(s) ? 1 : 0);
  }
  for (const StateId target : dfa.transition_table()) {
    writer.u32(target);
  }
}

std::string dfa_to_bytes(const Dfa& dfa, const SymbolTable& table) {
  support::BinaryWriter writer;
  write_dfa(dfa, table, writer);
  return writer.take();
}

Dfa read_dfa(support::BinaryReader& reader, SymbolTable& table) {
  const std::uint64_t letters = reader.u64();
  if (letters > kMaxAlphabet) {
    throw support::BinaryFormatError("DFA alphabet size implausible");
  }
  std::vector<Symbol> stored_alphabet;
  stored_alphabet.reserve(letters);
  std::unordered_set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < letters; ++i) {
    const Symbol symbol = table.intern(reader.str());
    if (!seen.insert(symbol.id()).second) {
      throw support::BinaryFormatError("DFA alphabet has duplicate symbols");
    }
    stored_alphabet.push_back(symbol);
  }

  const std::uint64_t states = reader.u64();
  if (states == 0 || states > kMaxStates) {
    throw support::BinaryFormatError("DFA state count implausible");
  }
  const std::uint32_t initial = reader.u32();
  if (initial >= states) {
    throw support::BinaryFormatError("DFA initial state out of range");
  }
  // Accepting flags arrive as one contiguous byte run: a single bounded
  // raw() copy, validated eight flags per word (any bit above bit 0 set in
  // any byte is malformed).
  const std::string_view flag_bytes = reader.raw(states);
  {
    std::size_t i = 0;
    for (; i + 8 <= states; i += 8) {
      std::uint64_t chunk = 0;
      std::memcpy(&chunk, flag_bytes.data() + i, 8);
      if ((chunk & ~0x0101010101010101ull) != 0) {
        throw support::BinaryFormatError("DFA accepting flag malformed");
      }
    }
    for (; i < states; ++i) {
      if (static_cast<std::uint8_t>(flag_bytes[i]) > 1) {
        throw support::BinaryFormatError("DFA accepting flag malformed");
      }
    }
  }
  std::vector<bool> accepting(states);
  for (std::uint64_t s = 0; s < states; ++s) {
    accepting[s] = flag_bytes[s] != 0;
  }

  // The transition cells are likewise one contiguous little-endian u32 run:
  // a single bounded raw() fetch, then (on little-endian hosts) one memcpy
  // into the flat table followed by a range-check sweep.
  const std::size_t cells = states * stored_alphabet.size();
  const std::string_view cell_bytes = reader.raw(cells * 4);
  std::vector<StateId> table_cells(cells);
  if constexpr (std::endian::native == std::endian::little) {
    static_assert(sizeof(StateId) == 4);
    std::memcpy(table_cells.data(), cell_bytes.data(), cells * 4);
  } else {
    for (std::size_t i = 0; i < cells; ++i) {
      const auto* at =
          reinterpret_cast<const std::uint8_t*>(cell_bytes.data()) + i * 4;
      table_cells[i] = static_cast<std::uint32_t>(at[0]) |
                       static_cast<std::uint32_t>(at[1]) << 8 |
                       static_cast<std::uint32_t>(at[2]) << 16 |
                       static_cast<std::uint32_t>(at[3]) << 24;
    }
  }
  for (const StateId target : table_cells) {
    if (target >= states) {
      throw support::BinaryFormatError("DFA transition out of range");
    }
  }

  // The destination table may hand the names ids in any relative order, but
  // Dfa requires its alphabet sorted by id: when the stored order is already
  // sorted (the common case -- the writer emits sorted columns), the decoded
  // table is used as-is; otherwise the columns are permuted into position.
  std::vector<std::size_t> order(stored_alphabet.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return stored_alphabet[a] < stored_alphabet[b];
  });
  const bool identity =
      std::is_sorted(order.begin(), order.end());
  if (identity) {
    return Dfa::from_table(std::move(stored_alphabet), std::move(table_cells),
                           std::move(accepting), initial);
  }

  std::vector<Symbol> alphabet(stored_alphabet.size());
  std::vector<StateId> sorted_cells(table_cells.size());
  for (std::size_t letter = 0; letter < order.size(); ++letter) {
    alphabet[letter] = stored_alphabet[order[letter]];
    for (std::uint64_t s = 0; s < states; ++s) {
      sorted_cells[s * order.size() + letter] =
          table_cells[s * order.size() + order[letter]];
    }
  }

  return Dfa::from_table(std::move(alphabet), std::move(sorted_cells),
                         std::move(accepting), initial);
}

Dfa dfa_from_bytes(std::string_view bytes, SymbolTable& table) {
  support::BinaryReader reader(bytes);
  Dfa dfa = read_dfa(reader, table);
  reader.expect_end();
  return dfa;
}

}  // namespace shelley::fsm
