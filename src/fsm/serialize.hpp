// Binary round-trip of DFAs for the behavior cache: symbols are stored by
// *name* (ids are table-local and never leave the process), and the reader
// restores the Dfa invariant that the alphabet is sorted by symbol id even
// when the destination table interns the names in a different order.
#pragma once

#include <string>
#include <string_view>

#include "fsm/dfa.hpp"
#include "support/binary.hpp"
#include "support/symbol.hpp"

namespace shelley::fsm {

/// Appends a self-contained encoding of `dfa` to `writer`: alphabet size,
/// symbol names (alphabet order), state count, initial state, accepting
/// set, and the dense transition table.
void write_dfa(const Dfa& dfa, const SymbolTable& table,
               support::BinaryWriter& writer);

/// One-shot encode.
[[nodiscard]] std::string dfa_to_bytes(const Dfa& dfa,
                                       const SymbolTable& table);

/// Reads one DFA, interning its symbol names into `table`.  Throws
/// support::BinaryFormatError on truncated/malformed input (out-of-range
/// states, duplicate alphabet names, impossible sizes).
[[nodiscard]] Dfa read_dfa(support::BinaryReader& reader, SymbolTable& table);

/// One-shot decode; requires `bytes` to contain exactly one DFA.
[[nodiscard]] Dfa dfa_from_bytes(std::string_view bytes, SymbolTable& table);

}  // namespace shelley::fsm
