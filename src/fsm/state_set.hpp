// Fixed-capacity bitset over NFA state ids.
//
// Subset construction and ε-closure manipulate sets of states millions of
// times; a packed word array makes union / membership O(n/64) and gives the
// sets a cheap hash so closed subsets can be hash-consed in an unordered_map
// (the seed implementation keyed a std::map on std::set<StateId>).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace shelley::fsm {

using StateId = std::uint32_t;

class StateSet {
 public:
  StateSet() = default;
  /// An empty set able to hold states 0..capacity-1.
  explicit StateSet(std::size_t capacity)
      : words_((capacity + kBits - 1) / kBits, 0) {}

  /// Number of states this set can hold (a multiple of 64).
  [[nodiscard]] std::size_t capacity() const { return words_.size() * kBits; }

  /// Adds `state`; returns true when it was not present yet.
  bool insert(StateId state) {
    std::uint64_t& word = words_[state / kBits];
    const std::uint64_t bit = std::uint64_t{1} << (state % kBits);
    const bool fresh = (word & bit) == 0;
    word |= bit;
    return fresh;
  }

  [[nodiscard]] bool contains(StateId state) const {
    const std::size_t index = state / kBits;
    if (index >= words_.size()) return false;
    return (words_[index] >> (state % kBits)) & 1;
  }

  /// In-place union; returns true when any bit was added.  Both sets must
  /// have the same capacity.
  bool unite(const StateSet& other) {
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | other.words_[i];
      changed = changed || merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  /// In-place union with a raw word row of the same width (a row of the
  /// NFA's flat closure table); returns true when any bit was added.
  bool unite_row(const std::uint64_t* row) {
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | row[i];
      changed = changed || merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  /// Raw packed words (little-end-first, state s lives in bit s%64 of word
  /// s/64).  The word-parallel kernel sweeps operate on these directly.
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  /// Removes every member; capacity is unchanged.
  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  [[nodiscard]] bool empty() const {
    for (std::uint64_t word : words_) {
      if (word != 0) return false;
    }
    return true;
  }

  /// True when the two sets share at least one state.
  [[nodiscard]] bool intersects(const StateSet& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (std::uint64_t word : words_) total += std::popcount(word);
    return total;
  }

  /// Calls `fn(StateId)` for every member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t word = words_[i];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<StateId>(i * kBits + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const StateSet& a, const StateSet& b) {
    return a.words_ == b.words_;
  }

  [[nodiscard]] std::size_t hash() const {
    // FNV-1a over the words; good enough to keep the hash-cons map flat.
    std::size_t h = 1469598103934665603ull;
    for (std::uint64_t word : words_) {
      h ^= static_cast<std::size_t>(word);
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  static constexpr std::size_t kBits = 64;
  std::vector<std::uint64_t> words_;
};

struct StateSetHash {
  std::size_t operator()(const StateSet& set) const { return set.hash(); }
};

}  // namespace shelley::fsm
