// Automata algorithms: subset construction (bitset-based, hash-consed),
// minimization (Hopcroft by default; Moore and Brzozowski as differential
// oracles), boolean products, complement, emptiness, shortest witnesses,
// lazy on-the-fly language inclusion, union-find equivalence, alphabet
// extension, and label homomorphisms (projection).
#pragma once

#include <functional>
#include <optional>

#include "fsm/dfa.hpp"
#include "fsm/nfa.hpp"

namespace shelley::fsm {

/// Subset construction.  The result is complete over `alphabet` (a sink is
/// added when needed).  `alphabet` must cover at least the NFA's own
/// alphabet; extra letters simply lead to the sink.
[[nodiscard]] Dfa determinize(const Nfa& nfa, std::vector<Symbol> alphabet);

/// Determinizes over the NFA's own alphabet.
[[nodiscard]] Dfa determinize(const Nfa& nfa);

/// Minimization (keeps the alphabet).  Dispatches to minimize_hopcroft.
[[nodiscard]] Dfa minimize(const Dfa& dfa);

/// Hopcroft's O(n·k·log n) partition refinement with the "smaller half"
/// splitter queue.  The default minimizer.
[[nodiscard]] Dfa minimize_hopcroft(const Dfa& dfa);

/// Moore's O(n²·k) partition refinement.  Kept as an independently
/// implemented oracle for differential testing (tests/props) and as the
/// ablation baseline in bench_scaling.
[[nodiscard]] Dfa minimize_moore(const Dfa& dfa);

/// Brzozowski's minimization: reverse -> determinize -> reverse ->
/// determinize.  Same result as `minimize` up to isomorphism; kept as an
/// independently implemented oracle (the ablation bench compares the two).
[[nodiscard]] Dfa minimize_brzozowski(const Dfa& dfa);

/// Reverses an NFA: every edge flips, initial and accepting states swap.
[[nodiscard]] Nfa reverse(const Nfa& nfa);

/// Rebuilds `dfa` over a larger alphabet; letters not previously in the
/// alphabet go to a (possibly fresh) rejecting sink.
[[nodiscard]] Dfa extend_alphabet(const Dfa& dfa,
                                  const std::vector<Symbol>& alphabet);

/// Rebuilds `dfa` over a larger alphabet where the new letters are *ignored*
/// (self-loops on every state).  The result accepts exactly the words whose
/// projection onto the original alphabet is accepted by `dfa` -- the monitor
/// construction used for subsystem-usage checking.
[[nodiscard]] Dfa extend_alphabet_ignore(const Dfa& dfa,
                                         const std::vector<Symbol>& alphabet);

enum class ProductMode { kIntersection, kUnion, kDifference };

/// Synchronous product.  Both inputs must share the same alphabet (use
/// extend_alphabet first).
[[nodiscard]] Dfa product(const Dfa& a, const Dfa& b, ProductMode mode);

/// Complement (flips acceptance; input must be complete, which Dfa is by
/// construction).
[[nodiscard]] Dfa complement(const Dfa& dfa);

/// True iff the DFA accepts no word.
[[nodiscard]] bool is_empty(const Dfa& dfa);

/// A shortest accepted word (BFS), or nullopt when the language is empty.
[[nodiscard]] std::optional<Word> shortest_word(const Dfa& dfa);

/// A shortest word in L(a) \ L(b), i.e. a witness that L(a) ⊄ L(b);
/// nullopt when L(a) ⊆ L(b).  Alphabets are joined automatically.
/// Runs a lazy on-the-fly BFS over *reachable* pair states only (early exit
/// on the first witness) instead of materializing the n·m product; the
/// witness is identical to what `shortest_word(product(...))` would return.
[[nodiscard]] std::optional<Word> inclusion_witness(const Dfa& a,
                                                    const Dfa& b);

/// True iff L(a) ⊆ L(b).
[[nodiscard]] bool included(const Dfa& a, const Dfa& b);

/// True iff L(a) = L(b).  Hopcroft–Karp union-find bisimulation check:
/// near-linear in the number of reachable pair states, with no product
/// automaton and no witness bookkeeping (use inclusion_witness when a
/// counterexample is needed).
[[nodiscard]] bool equivalent(const Dfa& a, const Dfa& b);

/// Rewrites transition labels.  The map returns: the replacement symbol, or
/// an invalid Symbol to turn the edge into ε (projection/erasure).
[[nodiscard]] Nfa map_labels(const Nfa& nfa,
                             const std::function<Symbol(Symbol)>& map);

/// Converts a DFA back into an NFA (for composition).
[[nodiscard]] Nfa to_nfa(const Dfa& dfa);

/// Number of states reachable from the initial state (diagnostic metric).
[[nodiscard]] std::size_t reachable_count(const Dfa& dfa);

/// live[s] is true iff an accepting state is reachable from s.  A word that
/// drives the DFA into a dead state can never be extended to an accepted
/// one -- used to pinpoint the offending step in a counterexample.
[[nodiscard]] std::vector<bool> live_states(const Dfa& dfa);

}  // namespace shelley::fsm
