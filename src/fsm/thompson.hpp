// Thompson construction: compiles a regular expression (rex) into an Nfa
// with one initial and one accepting state.  Together with ops.hpp this
// realizes Corollary 1 executably: the inferred behavior of any program is a
// regular language recognized by a finite automaton.
#pragma once

#include "fsm/nfa.hpp"
#include "rex/regex.hpp"

namespace shelley::fsm {

/// Builds an NFA recognizing L(r).
[[nodiscard]] Nfa from_regex(const rex::Regex& r);

/// Appends a Thompson fragment for `r` to `nfa`; returns the fragment's
/// (entry, exit) states.  Neither state is marked initial/accepting.
[[nodiscard]] std::pair<StateId, StateId> add_fragment(Nfa& nfa,
                                                       const rex::Regex& r);

}  // namespace shelley::fsm
