// DFA/NFA -> regular expression by state elimination (Kleene's theorem).
// Together with thompson.hpp this closes the loop of Corollary 1: behaviors
// round-trip between automata and regular expressions.  Used to *display*
// the valid-usage language of a class specification as a regex.
#pragma once

#include "fsm/dfa.hpp"
#include "fsm/nfa.hpp"
#include "rex/regex.hpp"

namespace shelley::fsm {

/// Returns a regular expression with L(r) = L(nfa).  The result is built
/// with the simplifying constructors but is not guaranteed minimal.
[[nodiscard]] rex::Regex to_regex(const Nfa& nfa);

/// Convenience overload.
[[nodiscard]] rex::Regex to_regex(const Dfa& dfa);

}  // namespace shelley::fsm
