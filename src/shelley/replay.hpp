// The capture half of the verdict replay protocol: turning a verified
// ClassReport (plus the diagnostics it appended to a sink) into the
// CachedVerdict encoding that Verifier::replay_verdict can later turn back
// into a byte-identical report.  Shared by the on-disk BehaviorCache tier
// (verifier) and the in-memory memo tier of the query engine (src/engine),
// so every cache layer stores and replays through exactly one code path.
#pragma once

#include <cstddef>

#include "shelley/cache.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {

/// Builds the cacheable encoding of `report`: counters, subsystem/claim
/// errors with counterexample symbols spelled out as names, and the
/// diagnostics `sink` holds from index `diags_begin` on (the slice this
/// class's verification appended).  The caller must not capture reports
/// with resource_errors > 0 -- an aborted run is not a result.
[[nodiscard]] CachedVerdict capture_verdict(const ClassReport& report,
                                            const DiagnosticEngine& sink,
                                            std::size_t diags_begin,
                                            const SymbolTable& table);

}  // namespace shelley::core
