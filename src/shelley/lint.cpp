#include "shelley/lint.hpp"

#include <algorithm>
#include <set>

#include "fsm/ops.hpp"
#include "shelley/automata.hpp"
#include "shelley/graph.hpp"
#include "support/strings.hpp"

namespace shelley::core {
namespace {

std::size_t lint_reachability(const ClassSpec& spec,
                              DiagnosticEngine& diagnostics) {
  DiagnosticEngine scratch;  // graph errors are reported elsewhere
  const DependencyGraph graph = DependencyGraph::build(spec, scratch);
  const auto reachable_list = graph.reachable_operations(spec);
  const std::set<std::string> reachable(reachable_list.begin(),
                                        reachable_list.end());
  std::size_t findings = 0;
  for (const Operation& op : spec.operations) {
    if (!reachable.contains(op.name)) {
      diagnostics.warning(op.loc,
                          "operation '" + op.name +
                              "' is unreachable from the initial operations");
      ++findings;
    }
  }
  return findings;
}

std::size_t lint_exits(const ClassSpec& spec,
                       DiagnosticEngine& diagnostics) {
  std::size_t findings = 0;
  for (const Operation& op : spec.operations) {
    for (const ExitPoint& exit : op.exits) {
      if (exit.successors.empty() && !op.final) {
        diagnostics.warning(
            exit.loc, "operation '" + op.name +
                          "' is not final but this exit allows no "
                          "successor: runs taking it can never complete");
        ++findings;
      }
      std::set<std::string> seen;
      for (const std::string& successor : exit.successors) {
        if (!seen.insert(successor).second) {
          diagnostics.warning(exit.loc,
                              "operation '" + op.name +
                                  "': successor '" + successor +
                                  "' is listed more than once");
          ++findings;
        }
      }
    }
  }
  return findings;
}

std::size_t lint_finality(const ClassSpec& spec,
                          DiagnosticEngine& diagnostics) {
  if (spec.operations.empty() || !spec.final_operations().empty()) return 0;
  diagnostics.warning(spec.loc,
                      "class '" + spec.name +
                          "' declares no @op_final operation; no usage of "
                          "an instance can ever complete");
  return 1;
}

std::size_t lint_completability(const ClassSpec& spec, SymbolTable& table,
                                DiagnosticEngine& diagnostics) {
  if (spec.operations.empty()) return 0;
  // Work on the subset construction directly: a *valid* prefix is one whose
  // subset state is non-empty; the lint fires when a valid prefix's subset
  // is dead (cannot reach acceptance).  The empty subset -- reached by
  // undeclared call sequences -- is legitimately dead and must not fire.
  const fsm::Nfa usage = usage_nfa(spec, table);
  const std::vector<Symbol>& sigma = usage.alphabet();
  const fsm::Dfa dfa = fsm::determinize(usage, sigma);
  const std::vector<bool> live = fsm::live_states(dfa);

  // Identify the empty-subset sink: replay each DFA state's subset via the
  // NFA.  Cheaper: a state is the empty sink iff it is dead, non-accepting,
  // and every transition self-loops.  A stuck-but-valid state either has an
  // edge to a different (sink) state or differs in acceptance.
  const auto is_empty_sink = [&](fsm::StateId s) {
    if (live[s] || dfa.is_accepting(s)) return false;
    for (std::size_t letter = 0; letter < sigma.size(); ++letter) {
      if (dfa.transition(s, letter) != s) return false;
    }
    return true;
  };

  struct Parent {
    fsm::StateId state = 0;
    std::size_t letter = 0;
    bool has_parent = false;
  };
  std::vector<bool> visited(dfa.state_count(), false);
  std::vector<Parent> parents(dfa.state_count());
  std::vector<fsm::StateId> queue{dfa.initial()};
  visited[dfa.initial()] = true;
  std::optional<fsm::StateId> stuck;
  if (!live[dfa.initial()] && !is_empty_sink(dfa.initial())) {
    stuck = dfa.initial();
  }
  for (std::size_t head = 0; head < queue.size() && !stuck; ++head) {
    const fsm::StateId s = queue[head];
    if (!live[s]) continue;  // don't search past dead states
    for (std::size_t letter = 0; letter < sigma.size(); ++letter) {
      const fsm::StateId t = dfa.transition(s, letter);
      if (visited[t]) continue;
      visited[t] = true;
      parents[t] = Parent{s, letter, true};
      if (!live[t] && !is_empty_sink(t)) {
        stuck = t;
        break;
      }
      queue.push_back(t);
    }
  }
  if (!stuck) return 0;

  Word witness;
  for (fsm::StateId s = *stuck; parents[s].has_parent;
       s = parents[s].state) {
    witness.push_back(sigma[parents[s].letter]);
  }
  std::reverse(witness.begin(), witness.end());
  diagnostics.warning(
      spec.loc, "class '" + spec.name + "': the call sequence [" +
                    to_string(witness, table) +
                    "] can never be completed (no final operation is "
                    "reachable from there)");
  return 1;
}

}  // namespace

std::size_t lint_class(const ClassSpec& spec, SymbolTable& table,
                       DiagnosticEngine& diagnostics) {
  std::size_t findings = 0;
  findings += lint_reachability(spec, diagnostics);
  findings += lint_exits(spec, diagnostics);
  findings += lint_finality(spec, diagnostics);
  findings += lint_completability(spec, table, diagnostics);
  return findings;
}

std::size_t lint_state_budget(const ClassSpec& spec,
                              const support::metrics::AutomataStats& stats,
                              const LintOptions& options,
                              DiagnosticEngine& diagnostics) {
  if (options.dfa_state_budget == 0 || !stats.collected) return 0;
  // dfa_states_after is the largest minimized DFA seen while verifying the
  // class; fall back to the raw subset-construction size when no minimizer
  // ran (base classes without claims never minimize).
  const std::uint64_t states = stats.dfa_states_after != 0
                                   ? stats.dfa_states_after
                                   : stats.dfa_states_before;
  if (states <= options.dfa_state_budget) return 0;
  diagnostics.warning(
      spec.loc, "class '" + spec.name + "': inferred automaton has " +
                    std::to_string(states) +
                    " states, exceeding the configured budget of " +
                    std::to_string(options.dfa_state_budget) +
                    " (consider splitting the specification)");
  return 1;
}

}  // namespace shelley::core
