// Method-dependency extraction (§3.1): a directed graph whose nodes are the
// entry point of each operation and every exit point (one per return), and
// whose arcs are the ordering constraints:
//
//   * entry(op)   -> exit(op, k)          for each of op's exits
//   * exit(op, k) -> entry(m)             for each successor m of that exit
//
// Figure 3 of the paper renders exactly this graph for class Sector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shelley/spec.hpp"

namespace shelley::core {

struct DependencyNode {
  enum class Type { kEntry, kExit };
  Type type = Type::kEntry;
  std::string operation;
  std::size_t exit_id = 0;  // meaningful for kExit

  [[nodiscard]] std::string label() const;
};

struct DependencyEdge {
  std::size_t from = 0;
  std::size_t to = 0;
};

class DependencyGraph {
 public:
  /// Builds the graph for `spec`.  Successor names that do not resolve to an
  /// operation of the class are reported and skipped.
  static DependencyGraph build(const ClassSpec& spec,
                               DiagnosticEngine& diagnostics);

  [[nodiscard]] const std::vector<DependencyNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<DependencyEdge>& edges() const {
    return edges_;
  }

  /// Index of the entry node of `operation`, or npos.
  [[nodiscard]] std::size_t entry_of(std::string_view operation) const;

  /// Indexes of all exit nodes of `operation`.
  [[nodiscard]] std::vector<std::size_t> exits_of(
      std::string_view operation) const;

  /// Operations reachable (via arcs) from the initial operations.
  [[nodiscard]] std::vector<std::string> reachable_operations(
      const ClassSpec& spec) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<DependencyNode> nodes_;
  std::vector<DependencyEdge> edges_;
};

}  // namespace shelley::core
