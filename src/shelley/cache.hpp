// The content-addressed, on-disk behavior cache behind incremental
// verification (shelleyc --cache DIR).
//
// One file per (key, kind): `<32-hex-digest>.<kind>.shc` inside the cache
// directory.  Every file is
//
//   "SHLC" | u32 format version | u8 kind | 16-byte key |
//   u64 payload size | payload | 16-byte FNV-128 digest of the payload
//
// written atomically (temp file + rename), so readers never observe a
// partial entry.  Loads verify magic, version, kind, embedded key, and the
// payload digest; ANY mismatch -- truncation, bit flips, version skew, a
// renamed file -- is counted as an invalidation and degrades to a miss,
// never a crash and never a stale hit.
//
// Four entry kinds:
//   * verdict  -- a class's full verification outcome (report counters,
//                 subsystem/claim errors with counterexamples as symbol
//                 NAMES, and the diagnostics verification emitted), enough
//                 to replay verify_spec byte-for-byte;
//   * dfa      -- a behavior DFA (fsm/serialize.hpp round-trip), used to
//                 skip usage-automaton construction in monitor mode;
//   * artifact -- opaque output bytes (e.g. the emitted SMV model), keyed
//                 by the same dependency-closure class key;
//   * table    -- a compiled monitoring table (fsm/table.hpp), the
//                 streaming monitor's warm-start artifact.
//
// Verdicts for classes that hit a resource limit (timeout, state budget)
// are never stored: an aborted run is not a result.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fsm/dfa.hpp"
#include "fsm/table.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/symbol.hpp"

namespace shelley::core {

/// Bumped whenever the entry encoding changes; older files become
/// invalidations (counted, then treated as misses).
inline constexpr std::uint32_t kCacheFormatVersion = 1;

/// A subsystem-usage failure, symbols spelled out as names.
struct CachedSubsystemError {
  std::string field;
  std::string class_name;
  std::vector<std::string> counterexample;
  std::string detail;
};

struct CachedClaimError {
  std::string formula;
  std::vector<std::string> counterexample;
};

struct CachedDiagnostic {
  std::uint8_t severity = 0;  // Severity enum value
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::string message;
};

/// Everything needed to replay one class's verification.
struct CachedVerdict {
  std::string class_name;
  bool is_composite = false;
  std::uint64_t invocation_errors = 0;
  std::uint64_t lint_findings = 0;
  std::vector<CachedSubsystemError> subsystem_errors;
  std::vector<CachedClaimError> claim_errors;
  std::vector<CachedDiagnostic> diagnostics;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< entry absent
  std::uint64_t invalidations = 0;   ///< entry present but rejected
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;  ///< I/O errors while writing
};

class BehaviorCache {
 public:
  enum class Kind : std::uint8_t {
    kVerdict = 1,
    kDfa = 2,
    kArtifact = 3,
    kTable = 4,
  };

  /// Opens (and creates, if needed) the cache directory.  Throws
  /// std::runtime_error when the directory cannot be created.
  explicit BehaviorCache(std::string directory);

  [[nodiscard]] const std::string& directory() const { return directory_; }

  [[nodiscard]] std::optional<CachedVerdict> load_verdict(
      const support::Digest128& key);
  bool store_verdict(const support::Digest128& key,
                     const CachedVerdict& verdict);

  [[nodiscard]] std::optional<fsm::Dfa> load_dfa(
      const support::Digest128& key, SymbolTable& table);
  bool store_dfa(const support::Digest128& key, const fsm::Dfa& dfa,
                 const SymbolTable& table);

  [[nodiscard]] std::optional<std::string> load_artifact(
      const support::Digest128& key);
  bool store_artifact(const support::Digest128& key,
                      std::string_view artifact);

  [[nodiscard]] std::optional<fsm::CompiledDfa> load_table(
      const support::Digest128& key, SymbolTable& table);
  bool store_table(const support::Digest128& key,
                   const fsm::CompiledDfa& compiled);

  /// A consistent snapshot of the counters (safe while workers run).
  [[nodiscard]] CacheStats stats() const;

  /// The file path an entry would use (exposed for tests).
  [[nodiscard]] std::string entry_path(const support::Digest128& key,
                                       Kind kind) const;

  // -- Stateless encode/decode, exposed for tests and the fuzz harness. ----

  /// Wraps `payload` in the framing described above.
  [[nodiscard]] static std::string encode_file(const support::Digest128& key,
                                               Kind kind,
                                               std::string_view payload);

  /// Unwraps a file image; nullopt on any framing violation or when the
  /// embedded key/kind disagree with the expected ones.
  [[nodiscard]] static std::optional<std::string> decode_file(
      std::string_view bytes, const support::Digest128& expected_key,
      Kind expected_kind);

  [[nodiscard]] static std::string encode_verdict(
      const CachedVerdict& verdict);

  /// Decodes a verdict payload; nullopt on malformed input.  Total: never
  /// throws, never crashes -- this is the surface the fuzzer drives.
  [[nodiscard]] static std::optional<CachedVerdict> decode_verdict(
      std::string_view payload);

 private:
  [[nodiscard]] std::optional<std::string> load_payload(
      const support::Digest128& key, Kind kind);
  bool store_payload(const support::Digest128& key, Kind kind,
                     std::string_view payload);

  std::string directory_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> store_failures_{0};
  std::atomic<std::uint64_t> temp_serial_{0};
};

/// Converts a replayed verdict into report fields (verifier.cpp) -- the
/// counterexample names are interned into `table`, which by construction
/// only *finds* symbols because the verifier warms the table first.
[[nodiscard]] Word intern_word(const std::vector<std::string>& names,
                               SymbolTable& table);

}  // namespace shelley::core
