#include "shelley/checker.hpp"

#include <algorithm>

#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/parser.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace shelley::core {

std::string CheckResult::render(const SymbolTable& table) const {
  std::string out;
  for (const SubsystemError& error : subsystem_errors) {
    if (!out.empty()) out += '\n';
    out += "Error in specification: INVALID SUBSYSTEM USAGE\n";
    out += "Counter example: " + to_string(error.counterexample, table) + "\n";
    out += "Subsystems errors:\n";
    out += "  * " + error.class_name + " '" + error.field +
           "': " + error.detail + "\n";
  }
  for (const ClaimError& error : claim_errors) {
    if (!out.empty()) out += '\n';
    out += "Error in specification: FAIL TO MEET REQUIREMENT\n";
    out += "Formula: " + error.formula + "\n";
    out += "Counter example: " + to_string(error.counterexample, table) + "\n";
  }
  return out;
}

std::string diagnose_subsystem_usage(const ClassSpec& spec,
                                     std::string_view field,
                                     const Word& projected,
                                     SymbolTable& table) {
  const std::string prefix = std::string(field) + ".";
  const fsm::Dfa usage =
      fsm::minimize(fsm::determinize(usage_nfa(spec, table, prefix)));
  const std::vector<bool> live = fsm::live_states(usage);

  // Simulate step by step; mark the first step that kills the run, or the
  // last step when the word ends in a non-accepting (but live) state.
  std::vector<std::string> rendered;
  fsm::StateId state = usage.initial();
  std::optional<std::string> verdict;
  for (std::size_t i = 0; i < projected.size(); ++i) {
    const std::string& qualified = table.name(projected[i]);
    std::string op = qualified;
    if (op.starts_with(prefix)) op = op.substr(prefix.size());
    const auto letter = usage.letter_index(projected[i]);
    if (!letter) {
      rendered.push_back(">" + op + "<");
      verdict = "(undeclared operation)";
      break;
    }
    state = usage.transition(state, *letter);
    if (!live[state]) {
      rendered.push_back(">" + op + "<");
      verdict = "(not allowed)";
      break;
    }
    rendered.push_back(op);
  }
  if (!verdict) {
    if (usage.is_accepting(state)) return join(rendered, ", ");  // valid
    if (!rendered.empty()) {
      rendered.back() = ">" + rendered.back() + "<";
    }
    verdict = "(not final)";
  }
  return join(rendered, ", ") + " " + *verdict;
}

namespace {

/// Projects `word` onto the symbols that start with `prefix`.
Word project_word(const Word& word, std::string_view prefix,
                  const SymbolTable& table) {
  Word out;
  for (Symbol s : word) {
    if (starts_with(table.name(s), prefix)) out.push_back(s);
  }
  return out;
}

}  // namespace

std::optional<Word> unrealizable_usage(const ClassSpec& composite,
                                       const SystemModel& model,
                                       SymbolTable& table) {
  // Project the system language onto the composite's own op labels; by
  // construction it is included in the declared usage language, so only
  // the reverse inclusion needs a witness.
  std::set<Symbol> op_labels(model.op_symbols.begin(),
                             model.op_symbols.end());
  const fsm::Nfa projected = fsm::map_labels(
      model.nfa,
      [&](Symbol s) { return op_labels.contains(s) ? s : Symbol{}; });
  const fsm::Dfa realizable = fsm::determinize(
      projected, std::vector<Symbol>(op_labels.begin(), op_labels.end()));
  const fsm::Dfa declared =
      fsm::determinize(usage_nfa(composite, table));
  return fsm::inclusion_witness(declared, realizable);
}

CheckResult check_base_claims(const ClassSpec& spec, SymbolTable& table,
                              DiagnosticEngine& diagnostics) {
  CheckResult result;
  if (spec.claims.empty()) return result;
  support::trace::Span span("shelley.check_base_claims");
  span.arg("class", spec.name);
  span.arg("claims", static_cast<std::uint64_t>(spec.claims.size()));
  const fsm::Dfa usage =
      fsm::minimize(fsm::determinize(usage_nfa(spec, table)));
  for (const Claim& claim : spec.claims) {
    support::trace::Span claim_span("shelley.claim");
    claim_span.arg("formula", claim.text);
    ltlf::Formula formula;
    try {
      formula = ltlf::parse(claim.text, table, claim.loc);
    } catch (const ParseError& error) {
      diagnostics.error(error.loc(), "class '" + spec.name +
                                       "': cannot parse claim \"" +
                                       claim.text + "\": " + error.what());
      continue;
    }
    const auto witness = ltlf::counterexample(usage, formula);
    if (!witness) continue;
    result.claim_errors.push_back(ClaimError{claim.text, *witness});
  }
  return result;
}

CheckResult check_composite(const ClassSpec& composite,
                            const ClassLookup& lookup, SymbolTable& table,
                            DiagnosticEngine& diagnostics) {
  CheckResult result;
  support::trace::Span span("shelley.check_composite");
  span.arg("class", composite.name);

  const auto behaviors = extract_behaviors(composite, table, diagnostics);
  const SystemModel model =
      build_system_model(composite, behaviors, table, diagnostics);
  const std::vector<Symbol> alphabet = model.full_alphabet();
  const fsm::Dfa system =
      fsm::minimize(fsm::determinize(model.nfa, alphabet));

  // Realizability of the declared op-level contract (warning only).
  if (const auto witness = unrealizable_usage(composite, model, table)) {
    diagnostics.warning(
        composite.loc,
        "class '" + composite.name + "': the declared usage [" +
            to_string(*witness, table) +
            "] cannot be realized by any execution of the method bodies");
  }

  // -- Subsystem usage ---------------------------------------------------
  for (const SubsystemDecl& subsystem : composite.subsystems) {
    support::trace::Span sub_span("shelley.subsystem");
    sub_span.arg("field", subsystem.field);
    sub_span.arg("class", subsystem.class_name);
    const ClassSpec* sub_spec = lookup(subsystem.class_name);
    if (sub_spec == nullptr) {
      diagnostics.error(subsystem.loc,
                        "class '" + composite.name + "': subsystem '" +
                            subsystem.field + "' has unknown class '" +
                            subsystem.class_name + "'");
      continue;
    }
    const std::string prefix = subsystem.field + ".";
    const fsm::Dfa usage =
        fsm::minimize(fsm::determinize(usage_nfa(*sub_spec, table, prefix)));
    // Monitor: accepts system words whose projection onto this subsystem is
    // a valid complete usage; foreign letters are ignored via self-loops.
    const fsm::Dfa monitor = fsm::extend_alphabet_ignore(usage, alphabet);
    const auto witness = fsm::inclusion_witness(system, monitor);
    if (!witness) continue;
    SubsystemError error;
    error.field = subsystem.field;
    error.class_name = subsystem.class_name;
    error.counterexample = *witness;
    error.detail = diagnose_subsystem_usage(
        *sub_spec, subsystem.field,
        project_word(*witness, prefix, table), table);
    result.subsystem_errors.push_back(std::move(error));
  }

  // -- Temporal claims -----------------------------------------------------
  if (!composite.claims.empty()) {
    // Claims usually speak about subsystem events (`a.open`); claims whose
    // atoms mention the composite's own operation labels are checked
    // against the unprojected system language instead.
    std::set<Symbol> op_labels(model.op_symbols.begin(),
                               model.op_symbols.end());
    const fsm::Nfa projected =
        fsm::map_labels(model.nfa, [&](Symbol s) {
          return op_labels.contains(s) ? Symbol{} : s;
        });
    const fsm::Dfa projected_dfa =
        fsm::minimize(fsm::determinize(projected, model.event_symbols));
    std::optional<fsm::Dfa> full_dfa;  // built lazily

    for (const Claim& claim : composite.claims) {
      support::trace::Span claim_span("shelley.claim");
      claim_span.arg("formula", claim.text);
      ltlf::Formula formula;
      try {
        formula = ltlf::parse(claim.text, table, claim.loc);
      } catch (const ParseError& error) {
        diagnostics.error(error.loc(), "class '" + composite.name +
                                         "': cannot parse claim \"" +
                                         claim.text + "\": " + error.what());
        continue;
      }
      bool mentions_ops = false;
      for (Symbol atom : ltlf::atoms(formula)) {
        if (op_labels.contains(atom)) mentions_ops = true;
      }
      const fsm::Dfa* target = &projected_dfa;
      if (mentions_ops) {
        if (!full_dfa) {
          full_dfa = fsm::minimize(
              fsm::determinize(model.nfa, model.full_alphabet()));
        }
        target = &*full_dfa;
      }
      const auto witness = ltlf::counterexample(*target, formula);
      if (!witness) continue;
      result.claim_errors.push_back(ClaimError{claim.text, *witness});
    }
  }
  return result;
}

}  // namespace shelley::core
