#include "shelley/checker.hpp"

#include <algorithm>
#include <atomic>
#include <functional>

#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "ltlf/tableau.hpp"
#include "support/guard.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace shelley::core {

namespace {
std::atomic<bool> g_force_ltlf_disagreement{false};
}  // namespace

namespace testing {
void force_ltlf_disagreement(bool force) {
  g_force_ltlf_disagreement.store(force, std::memory_order_relaxed);
}
}  // namespace testing

std::string CheckResult::render(const SymbolTable& table) const {
  std::string out;
  for (const SubsystemError& error : subsystem_errors) {
    if (!out.empty()) out += '\n';
    out += "Error in specification: INVALID SUBSYSTEM USAGE\n";
    out += "Counter example: " + to_string(error.counterexample, table) + "\n";
    out += "Subsystems errors:\n";
    out += "  * " + error.class_name + " '" + error.field +
           "': " + error.detail + "\n";
  }
  for (const ClaimError& error : claim_errors) {
    if (!out.empty()) out += '\n';
    out += "Error in specification: FAIL TO MEET REQUIREMENT\n";
    out += "Formula: " + error.formula + "\n";
    out += "Counter example: " + to_string(error.counterexample, table) + "\n";
  }
  return out;
}

std::string diagnose_subsystem_usage(const ClassSpec& spec,
                                     std::string_view field,
                                     const Word& projected,
                                     SymbolTable& table) {
  const std::string prefix = std::string(field) + ".";
  const fsm::Dfa usage =
      fsm::minimize(fsm::determinize(usage_nfa(spec, table, prefix)));
  const std::vector<bool> live = fsm::live_states(usage);

  // Simulate step by step; mark the first step that kills the run, or the
  // last step when the word ends in a non-accepting (but live) state.
  std::vector<std::string> rendered;
  fsm::StateId state = usage.initial();
  std::optional<std::string> verdict;
  for (std::size_t i = 0; i < projected.size(); ++i) {
    const std::string& qualified = table.name(projected[i]);
    std::string op = qualified;
    if (op.starts_with(prefix)) op = op.substr(prefix.size());
    const auto letter = usage.letter_index(projected[i]);
    if (!letter) {
      rendered.push_back(">" + op + "<");
      verdict = "(undeclared operation)";
      break;
    }
    state = usage.transition(state, *letter);
    if (!live[state]) {
      rendered.push_back(">" + op + "<");
      verdict = "(not allowed)";
      break;
    }
    rendered.push_back(op);
  }
  if (!verdict) {
    if (usage.is_accepting(state)) return join(rendered, ", ");  // valid
    if (!rendered.empty()) {
      rendered.back() = ">" + rendered.back() + "<";
    }
    verdict = "(not final)";
  }
  return join(rendered, ", ") + " " + *verdict;
}

namespace {

/// Projects `word` onto the symbols that start with `prefix`.
Word project_word(const Word& word, std::string_view prefix,
                  const SymbolTable& table) {
  Word out;
  for (Symbol s : word) {
    if (starts_with(table.name(s), prefix)) out.push_back(s);
  }
  return out;
}

/// Answers one claim with the configured engine(s).  `system` and `alphabet`
/// feed the tableau; `system_dfa` lazily builds the determinized system for
/// the oracle path, so kTableau never pays for a subset construction.
std::optional<Word> claim_counterexample(
    const fsm::Nfa& system, const std::vector<Symbol>& alphabet,
    const std::function<const fsm::Dfa&()>& system_dfa,
    const ltlf::Formula& formula, const std::string& claim_text,
    LtlfEngine engine) {
  if (engine == LtlfEngine::kDfa) {
    return ltlf::counterexample(system_dfa(), formula);
  }
  ltlf::TableauResult tableau = ltlf::check_tableau(system, alphabet, formula);
  if (tableau.verdict == ltlf::TableauVerdict::kLimited) {
    if (engine == LtlfEngine::kTableau) {
      // Surfaced exactly like the DFA path's budget trips, so verify_spec's
      // resource accounting treats both engines alike.
      throw support::guard::ResourceError(
          support::guard::Resource::kStateBudget, {},
          "ltlf::check_tableau: " + tableau.limit);
    }
    return ltlf::counterexample(system_dfa(), formula);  // oracle decides
  }
  std::optional<Word> witness;
  if (tableau.verdict == ltlf::TableauVerdict::kCounterexample) {
    witness = std::move(tableau.counterexample);
  }
  if (engine == LtlfEngine::kTableau) return witness;

  // kBoth: the tableau answers, the DFA oracle audits.  Verdicts must
  // match, witnesses must be byte-identical (both engines find the
  // lexicographically least shortest violation), and the witness must
  // *independently* check out -- a word of L(system) that eval rejects.
  const std::optional<Word> oracle =
      ltlf::counterexample(system_dfa(), formula);
  std::string mismatch;
  if (g_force_ltlf_disagreement.exchange(false, std::memory_order_relaxed)) {
    mismatch = "disagreement injected by testing hook";
  } else if (witness.has_value() != oracle.has_value()) {
    mismatch = witness ? "tableau found a counterexample, oracle proved the "
                         "claim"
                       : "oracle found a counterexample, tableau proved the "
                         "claim";
  } else if (witness && *witness != *oracle) {
    mismatch = "engines found different counterexamples";
  } else if (witness && !system.accepts(*witness)) {
    mismatch = "counterexample is not a word of the system language";
  } else if (witness && ltlf::eval(formula, *witness)) {
    mismatch = "counterexample does not violate the formula";
  }
  if (!mismatch.empty()) {
    throw EngineDisagreement("LTLf engine disagreement on claim \"" +
                             claim_text + "\": " + mismatch);
  }
  return oracle;
}

/// --lint-claims: warn on claims no trace can meet and claims every trace
/// meets; either way the claim is not constraining what the author thinks.
void lint_claim(const ltlf::Formula& formula,
                const std::vector<Symbol>& alphabet, const ClassSpec& spec,
                const Claim& claim, DiagnosticEngine& diagnostics,
                CheckResult& result) {
  using ltlf::Satisfiability;
  if (ltlf::satisfiable(formula, alphabet) == Satisfiability::kUnsatisfiable) {
    diagnostics.warning(
        claim.loc, "class '" + spec.name + "': claim \"" + claim.text +
                       "\" is unsatisfiable -- no finite trace over this "
                       "alphabet can meet it");
    ++result.claim_lints;
    return;
  }
  if (ltlf::satisfiable(ltlf::make_not(formula), alphabet) ==
      Satisfiability::kUnsatisfiable) {
    diagnostics.warning(
        claim.loc, "class '" + spec.name + "': claim \"" + claim.text +
                       "\" is trivially true on this alphabet -- every "
                       "finite trace satisfies it");
    ++result.claim_lints;
  }
}

}  // namespace

std::optional<Word> unrealizable_usage(const ClassSpec& composite,
                                       const SystemModel& model,
                                       SymbolTable& table) {
  // Project the system language onto the composite's own op labels; by
  // construction it is included in the declared usage language, so only
  // the reverse inclusion needs a witness.
  std::set<Symbol> op_labels(model.op_symbols.begin(),
                             model.op_symbols.end());
  const fsm::Nfa projected = fsm::map_labels(
      model.nfa,
      [&](Symbol s) { return op_labels.contains(s) ? s : Symbol{}; });
  const fsm::Dfa realizable = fsm::determinize(
      projected, std::vector<Symbol>(op_labels.begin(), op_labels.end()));
  const fsm::Dfa declared =
      fsm::determinize(usage_nfa(composite, table));
  return fsm::inclusion_witness(declared, realizable);
}

CheckResult check_base_claims(const ClassSpec& spec, SymbolTable& table,
                              DiagnosticEngine& diagnostics,
                              const CheckOptions& options) {
  CheckResult result;
  if (spec.claims.empty()) return result;
  support::trace::Span span("shelley.check_base_claims");
  span.arg("class", spec.name);
  span.arg("claims", static_cast<std::uint64_t>(spec.claims.size()));
  const fsm::Nfa usage = usage_nfa(spec, table);
  const std::vector<Symbol>& alphabet = usage.alphabet();
  std::optional<fsm::Dfa> usage_dfa;  // only the oracle path pays for it
  const auto get_dfa = [&]() -> const fsm::Dfa& {
    if (!usage_dfa) usage_dfa = fsm::minimize(fsm::determinize(usage));
    return *usage_dfa;
  };
  for (const Claim& claim : spec.claims) {
    support::trace::Span claim_span("shelley.claim");
    claim_span.arg("formula", claim.text);
    ltlf::Formula formula;
    try {
      formula = ltlf::parse(claim.text, table, claim.loc);
    } catch (const ParseError& error) {
      diagnostics.error(error.loc(), "class '" + spec.name +
                                       "': cannot parse claim \"" +
                                       claim.text + "\": " + error.what());
      continue;
    }
    if (options.lint_claims) {
      lint_claim(formula, alphabet, spec, claim, diagnostics, result);
    }
    const auto witness = claim_counterexample(
        usage, alphabet, get_dfa, formula, claim.text, options.ltlf_engine);
    if (!witness) continue;
    result.claim_errors.push_back(ClaimError{claim.text, *witness});
  }
  return result;
}

CheckResult check_composite(const ClassSpec& composite,
                            const ClassLookup& lookup, SymbolTable& table,
                            DiagnosticEngine& diagnostics,
                            const CheckOptions& options) {
  CheckResult result;
  support::trace::Span span("shelley.check_composite");
  span.arg("class", composite.name);

  const auto behaviors = extract_behaviors(composite, table, diagnostics);
  const SystemModel model =
      build_system_model(composite, behaviors, table, diagnostics);
  const std::vector<Symbol> alphabet = model.full_alphabet();
  const fsm::Dfa system =
      fsm::minimize(fsm::determinize(model.nfa, alphabet));

  // Realizability of the declared op-level contract (warning only).
  if (const auto witness = unrealizable_usage(composite, model, table)) {
    diagnostics.warning(
        composite.loc,
        "class '" + composite.name + "': the declared usage [" +
            to_string(*witness, table) +
            "] cannot be realized by any execution of the method bodies");
  }

  // -- Subsystem usage ---------------------------------------------------
  for (const SubsystemDecl& subsystem : composite.subsystems) {
    support::trace::Span sub_span("shelley.subsystem");
    sub_span.arg("field", subsystem.field);
    sub_span.arg("class", subsystem.class_name);
    const ClassSpec* sub_spec = lookup(subsystem.class_name);
    if (sub_spec == nullptr) {
      diagnostics.error(subsystem.loc,
                        "class '" + composite.name + "': subsystem '" +
                            subsystem.field + "' has unknown class '" +
                            subsystem.class_name + "'");
      continue;
    }
    const std::string prefix = subsystem.field + ".";
    const fsm::Dfa usage =
        fsm::minimize(fsm::determinize(usage_nfa(*sub_spec, table, prefix)));
    // Monitor: accepts system words whose projection onto this subsystem is
    // a valid complete usage; foreign letters are ignored via self-loops.
    const fsm::Dfa monitor = fsm::extend_alphabet_ignore(usage, alphabet);
    const auto witness = fsm::inclusion_witness(system, monitor);
    if (!witness) continue;
    SubsystemError error;
    error.field = subsystem.field;
    error.class_name = subsystem.class_name;
    error.counterexample = *witness;
    error.detail = diagnose_subsystem_usage(
        *sub_spec, subsystem.field,
        project_word(*witness, prefix, table), table);
    result.subsystem_errors.push_back(std::move(error));
  }

  // -- Temporal claims -----------------------------------------------------
  if (!composite.claims.empty()) {
    // Claims usually speak about subsystem events (`a.open`); claims whose
    // atoms mention the composite's own operation labels are checked
    // against the unprojected system language instead.
    std::set<Symbol> op_labels(model.op_symbols.begin(),
                               model.op_symbols.end());
    const fsm::Nfa projected =
        fsm::map_labels(model.nfa, [&](Symbol s) {
          return op_labels.contains(s) ? Symbol{} : s;
        });
    // Both determinizations are lazy: the tableau engine runs straight on
    // the NFAs and never needs them.
    std::optional<fsm::Dfa> projected_dfa;
    const auto get_projected_dfa = [&]() -> const fsm::Dfa& {
      if (!projected_dfa) {
        projected_dfa =
            fsm::minimize(fsm::determinize(projected, model.event_symbols));
      }
      return *projected_dfa;
    };
    std::optional<fsm::Dfa> full_dfa;
    const auto get_full_dfa = [&]() -> const fsm::Dfa& {
      if (!full_dfa) {
        full_dfa = fsm::minimize(fsm::determinize(model.nfa, alphabet));
      }
      return *full_dfa;
    };

    for (const Claim& claim : composite.claims) {
      support::trace::Span claim_span("shelley.claim");
      claim_span.arg("formula", claim.text);
      ltlf::Formula formula;
      try {
        formula = ltlf::parse(claim.text, table, claim.loc);
      } catch (const ParseError& error) {
        diagnostics.error(error.loc(), "class '" + composite.name +
                                         "': cannot parse claim \"" +
                                         claim.text + "\": " + error.what());
        continue;
      }
      bool mentions_ops = false;
      for (Symbol atom : ltlf::atoms(formula)) {
        if (op_labels.contains(atom)) mentions_ops = true;
      }
      const fsm::Nfa& target = mentions_ops ? model.nfa : projected;
      const std::vector<Symbol>& claim_alphabet =
          mentions_ops ? alphabet : model.event_symbols;
      if (options.lint_claims) {
        lint_claim(formula, claim_alphabet, composite, claim, diagnostics,
                   result);
      }
      const auto witness = claim_counterexample(
          target, claim_alphabet,
          mentions_ops ? std::function<const fsm::Dfa&()>(get_full_dfa)
                       : std::function<const fsm::Dfa&()>(get_projected_dfa),
          formula, claim.text, options.ltlf_engine);
      if (!witness) continue;
      result.claim_errors.push_back(ClaimError{claim.text, *witness});
    }
  }
  return result;
}

}  // namespace shelley::core
