// Compilation of class specifications into automata:
//
//  * usage_nfa    -- the valid-usage language of one instance: every word of
//                    operation names that starts with an initial operation,
//                    follows the successor sets of the exits taken, and ends
//                    after a final operation (or is empty: an instance may
//                    be constructed and never used).
//
//  * extract_behaviors -- per-operation method-behavior extraction (§3.2):
//                    lower the body to the IR, run the inference of Fig. 4,
//                    and keep the returned behaviors routed to their exits.
//
//  * build_system_model -- the composite-system automaton: each composite
//                    operation contributes its own label followed by its
//                    body behavior over subsystem events, so counterexamples
//                    read like the paper's `open_a, a.test, a.open`.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "fsm/nfa.hpp"
#include "ir/inference.hpp"
#include "ir/program.hpp"
#include "shelley/spec.hpp"
#include "support/symbol.hpp"

namespace shelley::core {

/// Builds the valid-usage NFA of `spec` over symbols `<prefix><op>`.
/// States: a fresh state (initial, accepting) and one state per exit point;
/// invoking an operation consumes its symbol and lands nondeterministically
/// on one of its exits; exits of final operations accept.
[[nodiscard]] fsm::Nfa usage_nfa(const ClassSpec& spec, SymbolTable& table,
                                 std::string_view prefix = "");

/// The analyzed body of one operation.
struct OperationBehavior {
  ir::Program program;        // lowered IR with exit-tagged returns
  ir::Behavior behavior;      // ⟦p⟧ = (ongoing, returned)
  rex::Regex inferred;        // infer(p), simplified
  bool falls_off_end = false; // L(ongoing) is non-empty: some path never
                              // reaches a return statement
};

/// Lowers and analyzes every operation body of `spec`, tracking calls on
/// the class's subsystem fields.
[[nodiscard]] std::map<std::string, OperationBehavior> extract_behaviors(
    const ClassSpec& spec, SymbolTable& table, DiagnosticEngine& diagnostics);

/// The composite-system automaton and its split alphabet.
struct SystemModel {
  fsm::Nfa nfa;
  std::vector<Symbol> op_symbols;     // labels of the composite's operations
  std::vector<Symbol> event_symbols;  // subsystem calls `field.method`

  [[nodiscard]] std::vector<Symbol> full_alphabet() const;
};

/// Builds the system model of a composite class from its spec and the
/// extracted behaviors.  Operations that may fall off the end without
/// returning get an implicit exit with no successors (and a warning).
[[nodiscard]] SystemModel build_system_model(
    const ClassSpec& spec,
    const std::map<std::string, OperationBehavior>& behaviors,
    SymbolTable& table, DiagnosticEngine& diagnostics);

}  // namespace shelley::core
