#include "shelley/verifier.hpp"

#include "shelley/graph.hpp"
#include "shelley/invocation.hpp"
#include "shelley/lint.hpp"
#include "upy/parser.hpp"

namespace shelley::core {

bool Report::ok() const {
  for (const ClassReport& report : classes) {
    if (!report.ok()) return false;
  }
  return true;
}

std::string Report::render(const SymbolTable& table) const {
  std::string out;
  for (const ClassReport& report : classes) {
    const std::string block = report.check.render(table);
    if (block.empty()) continue;
    if (!out.empty()) out += '\n';
    out += block;
  }
  return out;
}

void Verifier::add_source(std::string_view source) {
  const upy::Module module = upy::parse_module(source);
  for (const upy::ClassDef& cls : module.classes) {
    add_class(cls);
  }
}

void Verifier::add_class(const upy::ClassDef& cls) {
  if (find_class(cls.name) != nullptr) {
    diagnostics_.error(cls.loc,
                       "class '" + cls.name + "' is defined more than once");
    return;
  }
  specs_.push_back(extract_class_spec(cls, diagnostics_));
}

const ClassSpec* Verifier::find_class(std::string_view name) const {
  for (const ClassSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ClassLookup Verifier::lookup() const {
  return [this](const std::string& name) { return find_class(name); };
}

ClassReport Verifier::verify_spec(const ClassSpec& spec) {
  ClassReport report;
  report.class_name = spec.name;
  report.is_composite = spec.is_composite;

  // Step 1 -- method dependency extraction validates successor references.
  (void)DependencyGraph::build(spec, diagnostics_);

  // Step 3 -- method invocation analysis.
  report.invocation_errors =
      analyze_invocations(spec, lookup(), diagnostics_);

  // Specification lints (warnings only).
  report.lint_findings = lint_class(spec, table_, diagnostics_);

  // Step 2 plus the composite checks of §2.2 (behavior extraction happens
  // inside check_composite).  Base classes still get their claims checked
  // against the valid-usage language.
  if (spec.is_composite) {
    report.check = check_composite(spec, lookup(), table_, diagnostics_);
  } else {
    report.check = check_base_claims(spec, table_, diagnostics_);
  }
  return report;
}

ClassReport Verifier::verify_class(std::string_view name) {
  const ClassSpec* spec = find_class(name);
  if (spec == nullptr) {
    diagnostics_.error({},
                       "cannot verify unknown class '" + std::string(name) +
                           "'");
    ClassReport report;
    report.class_name = std::string(name);
    report.invocation_errors = 1;
    return report;
  }
  return verify_spec(*spec);
}

Report Verifier::verify_all() {
  Report report;
  for (const ClassSpec& spec : specs_) {
    if (!spec.is_system) continue;
    report.classes.push_back(verify_spec(spec));
  }
  return report;
}

}  // namespace shelley::core
