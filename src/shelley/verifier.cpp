#include "shelley/verifier.hpp"

#include <chrono>
#include <exception>
#include <optional>
#include <vector>

#include "ir/lowering.hpp"
#include "ltlf/parser.hpp"
#include "shelley/cache.hpp"
#include "shelley/fingerprint.hpp"
#include "shelley/graph.hpp"
#include "shelley/invocation.hpp"
#include "shelley/lint.hpp"
#include "support/guard.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "upy/parser.hpp"

namespace shelley::core {

bool Report::ok() const {
  for (const ClassReport& report : classes) {
    if (!report.ok()) return false;
  }
  return true;
}

std::string Report::render(const SymbolTable& table) const {
  std::string out;
  for (const ClassReport& report : classes) {
    const std::string block = report.check.render(table);
    if (block.empty()) continue;
    if (!out.empty()) out += '\n';
    out += block;
  }
  return out;
}

void Verifier::add_source(std::string_view source) {
  const upy::Module module = upy::parse_module(source);
  for (const upy::ClassDef& cls : module.classes) {
    add_class(cls);
  }
}

std::size_t Verifier::add_source_recover(std::string_view source) {
  const std::size_t errors_before = diagnostics_.error_count();
  try {
    const upy::Module module = upy::parse_module(source, diagnostics_);
    for (const upy::ClassDef& cls : module.classes) {
      add_class(cls);
    }
  } catch (const support::guard::ResourceError& error) {
    // Resource limits abort the whole source (the parse state is gone),
    // but they still land as a diagnostic rather than an exception.
    diagnostics_.error(error.loc(), error.message());
  }
  return diagnostics_.error_count() - errors_before;
}

void Verifier::add_class(const upy::ClassDef& cls) {
  if (find_class(cls.name) != nullptr) {
    diagnostics_.error(cls.loc,
                       "class '" + cls.name + "' is defined more than once");
    return;
  }
  specs_.push_back(extract_class_spec(cls, diagnostics_));
  index_.emplace(specs_.back().name, specs_.size() - 1);
}

const ClassSpec* Verifier::find_class(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return nullptr;
  return &specs_[it->second];
}

ClassLookup Verifier::lookup() const {
  return [this](const std::string& name) { return find_class(name); };
}

ClassReport Verifier::verify_spec(const ClassSpec& spec,
                                  DiagnosticEngine& sink) {
  ClassReport report;
  report.class_name = spec.name;
  report.is_composite = spec.is_composite;

  support::trace::Span span("shelley.verify");
  span.arg("class", spec.name);
  const std::size_t diags_before = sink.diagnostics().size();

  // Collect per-class automata statistics when anyone will consume them:
  // the metrics registry (--stats / --trace-out / SHELLEY_TRACE=1) or the
  // DFA state-budget lint.  Otherwise the sink stays unset and every
  // record_* call in the pipeline below stays on its two-load fast path.
  std::optional<support::metrics::ScopedSink> stats_guard;
  const bool want_stats = support::metrics::enabled() ||
                          lint_options_.dfa_state_budget > 0;
  if (want_stats) stats_guard.emplace(&report.stats);
  const auto started = std::chrono::steady_clock::now();

  try {
    // Step 1 -- method dependency extraction validates successor references.
    support::guard::check_deadline("verify.dependencies");
    (void)DependencyGraph::build(spec, sink);

    // Step 3 -- method invocation analysis.
    support::guard::check_deadline("verify.invocations");
    report.invocation_errors = analyze_invocations(spec, lookup(), sink);

    // Specification lints (warnings only).
    report.lint_findings = lint_class(spec, table_, sink);

    // Step 2 plus the composite checks of §2.2 (behavior extraction happens
    // inside check_composite).  Base classes still get their claims checked
    // against the valid-usage language.
    support::guard::check_deadline("verify.check");
    if (spec.is_composite) {
      report.check = check_composite(spec, lookup(), table_, sink);
    } else {
      report.check = check_base_claims(spec, table_, sink);
    }
  } catch (const support::guard::ResourceError& error) {
    // One class blowing its state budget / deadline must not take down the
    // whole run: record it (fails ok()) and let verify_all keep going.
    ++report.resource_errors;
    sink.error(error.loc(), "verification of '" + spec.name +
                                "' aborted: " + error.message());
  }

  if (want_stats) {
    report.stats.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    stats_guard.reset();  // stop attributing before the lint reads stats
    report.lint_findings +=
        lint_state_budget(spec, report.stats, lint_options_, sink);
  }

  span.arg("ok", report.ok() ? std::string_view("true")
                             : std::string_view("false"));
  if (support::trace::enabled()) {
    // Surface the first diagnostic this class produced as span metadata, so
    // a red span in the trace viewer explains itself.
    const auto& diags = sink.diagnostics();
    if (diags.size() > diags_before) {
      const Diagnostic& first = diags[diags_before];
      span.arg("first_diagnostic", first.message);
      span.arg("first_diagnostic_loc", to_string(first.loc));
    }
    if (report.stats.collected) {
      span.arg("dfa_states", report.stats.dfa_states_after);
      support::trace::counter(
          "automata/" + spec.name,
          {support::trace::Arg("nfa_states", report.stats.nfa_states),
           support::trace::Arg("dfa_states_before",
                               report.stats.dfa_states_before),
           support::trace::Arg("dfa_states_after",
                               report.stats.dfa_states_after),
           support::trace::Arg("product_pairs",
                               report.stats.product_pairs),
           support::trace::Arg("ltlf_states", report.stats.ltlf_states),
           support::trace::Arg("counterexample_len",
                               report.stats.counterexample_len)});
    }
  }
  return report;
}

void Verifier::warm_symbols(const ClassSpec& spec) {
  // Mirrors the intern calls of verify_spec exactly, in order.  The first
  // table touch is lint_completability's usage_nfa(spec, table): one bare
  // operation name per operation.
  if (!spec.operations.empty()) {
    for (const Operation& op : spec.operations) {
      (void)table_.intern(op.name);
    }
  }

  if (spec.is_composite) {
    // check_composite: extract_behaviors lowers every operation body and
    // interns one `field.method` symbol per tracked call, in source order.
    ir::LoweringContext context;
    for (const SubsystemDecl& subsystem : spec.subsystems) {
      context.tracked_fields.insert(subsystem.field);
    }
    context.symbols = &table_;  // diagnostics/next_return_id stay null
    for (const Operation& op : spec.operations) {
      (void)ir::lower_block(op.body, context);
    }
    // build_system_model + unrealizable_usage re-intern the bare operation
    // names (no-ops by now); the per-subsystem monitors intern the
    // prefix-qualified names of each subsystem class's operations.
    for (const SubsystemDecl& subsystem : spec.subsystems) {
      const ClassSpec* sub_spec = find_class(subsystem.class_name);
      if (sub_spec == nullptr) continue;
      const std::string prefix = subsystem.field + ".";
      for (const Operation& op : sub_spec->operations) {
        (void)table_.intern(prefix + op.name);
      }
    }
  } else if (spec.claims.empty()) {
    return;  // check_base_claims bails out before touching the table
  }

  // Claim atoms are interned while parsing, left to right.  Malformed
  // claims intern whatever atoms precede the error, then throw; the real
  // verification pass reports that error into its own sink.
  for (const Claim& claim : spec.claims) {
    try {
      (void)ltlf::parse(claim.text, table_);
    } catch (const ParseError&) {
      // ignored here; verify_spec diagnoses it
    }
  }
}

support::Digest128 Verifier::cache_key(const ClassSpec& spec) const {
  FingerprintOptions options;
  options.dfa_state_budget = lint_options_.dfa_state_budget;
  options.max_states = support::guard::limits().max_states;
  return class_key(spec, lookup(), options);
}

ClassReport Verifier::verify_or_replay(const ClassSpec& spec,
                                       DiagnosticEngine& sink) {
  if (cache_ == nullptr) return verify_spec(spec, sink);

  const support::Digest128 key = cache_key(spec);
  std::optional<CachedVerdict> cached = cache_->load_verdict(key);
  // The key embeds the class name, so a mismatch means a colliding or
  // tampered entry: discard it rather than replaying a foreign verdict.
  if (cached && cached->class_name != spec.name) cached.reset();
  if (cached) {
    // Intern everything the real verification would intern, in the same
    // order, so downstream (missing) classes see identical symbol ids and
    // produce byte-identical witnesses.  Every counterexample symbol below
    // is part of that warmed set.
    warm_symbols(spec);
    ClassReport report;
    report.class_name = spec.name;
    report.is_composite = cached->is_composite;
    report.invocation_errors = cached->invocation_errors;
    report.lint_findings = cached->lint_findings;
    for (CachedSubsystemError& error : cached->subsystem_errors) {
      report.check.subsystem_errors.push_back(SubsystemError{
          std::move(error.field), std::move(error.class_name),
          intern_word(error.counterexample, table_),
          std::move(error.detail)});
    }
    for (CachedClaimError& error : cached->claim_errors) {
      report.check.claim_errors.push_back(
          ClaimError{std::move(error.formula),
                     intern_word(error.counterexample, table_)});
    }
    for (CachedDiagnostic& diag : cached->diagnostics) {
      sink.report(static_cast<Severity>(diag.severity),
                  SourceLoc{diag.line, diag.column},
                  std::move(diag.message));
    }
    if (support::trace::enabled()) {
      support::trace::instant("cache.hit/" + spec.name);
    }
    return report;
  }

  // Miss: verify into a private sink so exactly this class's diagnostics
  // can be stored alongside the verdict, then merge them back (appending
  // preserves the serial order).
  DiagnosticEngine local;
  const std::size_t diags_before = local.diagnostics().size();
  ClassReport report = verify_spec(spec, local);
  sink.append(local);
  if (report.resource_errors > 0) return report;  // aborted, not a result

  CachedVerdict verdict;
  verdict.class_name = report.class_name;
  verdict.is_composite = report.is_composite;
  verdict.invocation_errors = report.invocation_errors;
  verdict.lint_findings = report.lint_findings;
  for (const SubsystemError& error : report.check.subsystem_errors) {
    CachedSubsystemError cached_error;
    cached_error.field = error.field;
    cached_error.class_name = error.class_name;
    for (const Symbol symbol : error.counterexample) {
      cached_error.counterexample.push_back(table_.name(symbol));
    }
    cached_error.detail = error.detail;
    verdict.subsystem_errors.push_back(std::move(cached_error));
  }
  for (const ClaimError& error : report.check.claim_errors) {
    CachedClaimError cached_error;
    cached_error.formula = error.formula;
    for (const Symbol symbol : error.counterexample) {
      cached_error.counterexample.push_back(table_.name(symbol));
    }
    verdict.claim_errors.push_back(std::move(cached_error));
  }
  const auto& diags = local.diagnostics();
  for (std::size_t i = diags_before; i < diags.size(); ++i) {
    verdict.diagnostics.push_back(CachedDiagnostic{
        static_cast<std::uint8_t>(diags[i].severity), diags[i].loc.line,
        diags[i].loc.column, diags[i].message});
  }
  cache_->store_verdict(key, verdict);
  return report;
}

ClassReport Verifier::verify_class(std::string_view name) {
  const ClassSpec* spec = find_class(name);
  if (spec == nullptr) {
    diagnostics_.error({},
                       "cannot verify unknown class '" + std::string(name) +
                           "'");
    ClassReport report;
    report.class_name = std::string(name);
    report.invocation_errors = 1;
    return report;
  }
  return verify_or_replay(*spec, diagnostics_);
}

Report Verifier::verify_all() {
  Report report;
  for (const ClassSpec& spec : specs_) {
    if (!spec.is_system) continue;
    report.classes.push_back(verify_or_replay(spec, diagnostics_));
  }
  return report;
}

Report Verifier::verify_all(std::size_t jobs) {
  if (jobs <= 1) return verify_all();  // the serial path, untouched

  std::vector<const ClassSpec*> work;
  for (const ClassSpec& spec : specs_) {
    if (spec.is_system) work.push_back(&spec);
  }
  if (work.size() <= 1) return verify_all();

  // Symbol ids leak into the output: alphabets are sorted by id and witness
  // searches break ties in alphabet order.  Pre-intern every symbol in the
  // order the serial pass would create it, so worker-side interning (under
  // the table's lock) only ever *finds* symbols and ids are identical to a
  // serial run.
  for (const ClassSpec* spec : work) warm_symbols(*spec);

  std::vector<ClassReport> reports(work.size());
  std::vector<DiagnosticEngine> sinks(work.size());
  std::vector<std::exception_ptr> errors(work.size());
  support::parallel_for(work.size(), jobs, [&](std::size_t i) {
    try {
      reports[i] = verify_or_replay(*work[i], sinks[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });

  // Merge in registration order so diagnostics and the report are stable
  // regardless of worker scheduling.
  Report report;
  for (std::size_t i = 0; i < work.size(); ++i) {
    diagnostics_.append(sinks[i]);
    if (errors[i]) std::rethrow_exception(errors[i]);
    report.classes.push_back(std::move(reports[i]));
  }
  return report;
}

}  // namespace shelley::core
