// Class registration and the verify_class/verify_all drivers.  The §3
// pipeline itself lives in verify_spec.cpp and the cache/replay protocol in
// replay.cpp; this file owns the spec registry and the deterministic
// serial/parallel orchestration.
#include "shelley/verifier.hpp"

#include <exception>
#include <vector>

#include "shelley/cache.hpp"
#include "support/guard.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "upy/parser.hpp"

namespace shelley::core {

bool Report::ok() const {
  for (const ClassReport& report : classes) {
    if (!report.ok()) return false;
  }
  return true;
}

std::string Report::render(const SymbolTable& table) const {
  std::string out;
  for (const ClassReport& report : classes) {
    const std::string block = report.check.render(table);
    if (block.empty()) continue;
    if (!out.empty()) out += '\n';
    out += block;
  }
  return out;
}

void Verifier::add_source(std::string_view source) {
  const upy::Module module = upy::parse_module(source);
  for (const upy::ClassDef& cls : module.classes) {
    add_class(cls);
  }
}

std::size_t Verifier::add_source_recover(std::string_view source) {
  const std::size_t errors_before = diagnostics_.error_count();
  try {
    const upy::Module module = upy::parse_module(source, diagnostics_);
    for (const upy::ClassDef& cls : module.classes) {
      add_class(cls);
    }
  } catch (const support::guard::ResourceError& error) {
    // Resource limits abort the whole source (the parse state is gone),
    // but they still land as a diagnostic rather than an exception.
    diagnostics_.error(error.loc(), error.message());
  }
  return diagnostics_.error_count() - errors_before;
}

void Verifier::add_class(const upy::ClassDef& cls) {
  if (find_class(cls.name) != nullptr) {
    diagnostics_.error(cls.loc,
                       "class '" + cls.name + "' is defined more than once");
    return;
  }
  specs_.push_back(extract_class_spec(cls, diagnostics_));
  index_.emplace(specs_.back().name, specs_.size() - 1);
}

const ClassSpec* Verifier::find_class(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return nullptr;
  return &specs_[it->second];
}

ClassLookup Verifier::lookup() const {
  return [this](const std::string& name) { return find_class(name); };
}

ClassReport Verifier::verify_class(std::string_view name) {
  const ClassSpec* spec = find_class(name);
  if (spec == nullptr) {
    diagnostics_.error({},
                       "cannot verify unknown class '" + std::string(name) +
                           "'");
    ClassReport report;
    report.class_name = std::string(name);
    report.invocation_errors = 1;
    return report;
  }
  return verify_or_replay(*spec, diagnostics_);
}

Report Verifier::verify_all() {
  support::trace::Span span("shelley.verify_all");
  Report report;
  for (const ClassSpec& spec : specs_) {
    if (!spec.is_system) continue;
    report.classes.push_back(verify_or_replay(spec, diagnostics_));
  }
  span.arg("classes", static_cast<std::uint64_t>(report.classes.size()));
  return report;
}

Report Verifier::verify_all(std::size_t jobs) {
  if (jobs <= 1) return verify_all();  // the serial path, untouched

  std::vector<const ClassSpec*> work;
  for (const ClassSpec& spec : specs_) {
    if (spec.is_system) work.push_back(&spec);
  }
  if (work.size() <= 1) return verify_all();

  // The parallel root span opens after the serial delegations above, so a
  // top-level call produces exactly one "shelley.verify_all" root.  Every
  // per-class pipeline span lands under it: parallel_for submits through
  // ThreadPool::submit, which carries this thread's trace context (now
  // pointing at this span) onto the workers -- the fix for the orphan
  // worker spans that used to show up as parentless roots in timelines.
  support::trace::Span span("shelley.verify_all");
  span.arg("jobs", static_cast<std::uint64_t>(jobs));
  span.arg("classes", static_cast<std::uint64_t>(work.size()));

  // Symbol ids leak into the output: alphabets are sorted by id and witness
  // searches break ties in alphabet order.  Pre-intern every symbol in the
  // order the serial pass would create it, so worker-side interning (under
  // the table's lock) only ever *finds* symbols and ids are identical to a
  // serial run.
  for (const ClassSpec* spec : work) warm_symbols(*spec);

  std::vector<ClassReport> reports(work.size());
  std::vector<DiagnosticEngine> sinks(work.size());
  std::vector<std::exception_ptr> errors(work.size());
  support::parallel_for(work.size(), jobs, [&](std::size_t i) {
    try {
      reports[i] = verify_or_replay(*work[i], sinks[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });

  // Merge in registration order so diagnostics and the report are stable
  // regardless of worker scheduling.
  Report report;
  for (std::size_t i = 0; i < work.size(); ++i) {
    diagnostics_.append(sinks[i]);
    if (errors[i]) std::rethrow_exception(errors[i]);
    report.classes.push_back(std::move(reports[i]));
  }
  return report;
}

}  // namespace shelley::core
