#include "shelley/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fsm/serialize.hpp"
#include "support/binary.hpp"
#include "support/metrics.hpp"

namespace shelley::core {

namespace {

constexpr char kMagic[4] = {'S', 'H', 'L', 'C'};

// Corrupted length fields must not allocate unbounded memory before the
// digest check rejects them.
constexpr std::uint64_t kMaxReasonableCount = 1u << 24;

const char* kind_suffix(BehaviorCache::Kind kind) {
  switch (kind) {
    case BehaviorCache::Kind::kVerdict:
      return "v";
    case BehaviorCache::Kind::kDfa:
      return "dfa";
    case BehaviorCache::Kind::kArtifact:
      return "art";
    case BehaviorCache::Kind::kTable:
      return "tbl";
  }
  return "unknown";
}

void write_digest(support::BinaryWriter& writer,
                  const support::Digest128& digest) {
  writer.u64(digest.lo);
  writer.u64(digest.hi);
}

support::Digest128 read_digest(support::BinaryReader& reader) {
  support::Digest128 digest;
  digest.lo = reader.u64();
  digest.hi = reader.u64();
  return digest;
}

std::vector<std::string> decode_string_list(support::BinaryReader& reader) {
  const std::uint64_t count = reader.u64();
  if (count > kMaxReasonableCount) {
    throw support::BinaryFormatError("cache list count implausible");
  }
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(reader.str());
  return out;
}

void encode_string_list(support::BinaryWriter& writer,
                        const std::vector<std::string>& list) {
  writer.u64(list.size());
  for (const std::string& item : list) writer.str(item);
}

}  // namespace

BehaviorCache::BehaviorCache(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
  if (error || !std::filesystem::is_directory(directory_)) {
    throw std::runtime_error("cannot create cache directory '" + directory_ +
                             "'");
  }
}

std::string BehaviorCache::entry_path(const support::Digest128& key,
                                      Kind kind) const {
  return directory_ + "/" + support::to_hex(key) + "." + kind_suffix(kind) +
         ".shc";
}

std::string BehaviorCache::encode_file(const support::Digest128& key,
                                       Kind kind, std::string_view payload) {
  support::BinaryWriter writer;
  writer.raw(std::string_view(kMagic, sizeof(kMagic)));
  writer.u32(kCacheFormatVersion);
  writer.u8(static_cast<std::uint8_t>(kind));
  write_digest(writer, key);
  writer.str(payload);
  write_digest(writer, support::hash_bytes(payload));
  return writer.take();
}

std::optional<std::string> BehaviorCache::decode_file(
    std::string_view bytes, const support::Digest128& expected_key,
    Kind expected_kind) {
  try {
    support::BinaryReader reader(bytes);
    const std::string_view magic = reader.raw(sizeof(kMagic));
    if (magic != std::string_view(kMagic, sizeof(kMagic))) {
      return std::nullopt;
    }
    if (reader.u32() != kCacheFormatVersion) return std::nullopt;
    if (reader.u8() != static_cast<std::uint8_t>(expected_kind)) {
      return std::nullopt;
    }
    if (read_digest(reader) != expected_key) return std::nullopt;
    std::string payload = reader.str();
    if (read_digest(reader) != support::hash_bytes(payload)) {
      return std::nullopt;
    }
    reader.expect_end();
    return payload;
  } catch (const support::BinaryFormatError&) {
    return std::nullopt;
  }
}

std::string BehaviorCache::encode_verdict(const CachedVerdict& verdict) {
  support::BinaryWriter writer;
  writer.str(verdict.class_name);
  writer.u8(verdict.is_composite ? 1 : 0);
  writer.u64(verdict.invocation_errors);
  writer.u64(verdict.lint_findings);
  writer.u64(verdict.subsystem_errors.size());
  for (const CachedSubsystemError& error : verdict.subsystem_errors) {
    writer.str(error.field);
    writer.str(error.class_name);
    encode_string_list(writer, error.counterexample);
    writer.str(error.detail);
  }
  writer.u64(verdict.claim_errors.size());
  for (const CachedClaimError& error : verdict.claim_errors) {
    writer.str(error.formula);
    encode_string_list(writer, error.counterexample);
  }
  writer.u64(verdict.diagnostics.size());
  for (const CachedDiagnostic& diag : verdict.diagnostics) {
    writer.u8(diag.severity);
    writer.u32(diag.line);
    writer.u32(diag.column);
    writer.str(diag.message);
  }
  return writer.take();
}

std::optional<CachedVerdict> BehaviorCache::decode_verdict(
    std::string_view payload) {
  try {
    support::BinaryReader reader(payload);
    CachedVerdict verdict;
    verdict.class_name = reader.str();
    const std::uint8_t composite = reader.u8();
    if (composite > 1) return std::nullopt;
    verdict.is_composite = composite != 0;
    verdict.invocation_errors = reader.u64();
    verdict.lint_findings = reader.u64();

    const std::uint64_t subsystem_count = reader.u64();
    if (subsystem_count > kMaxReasonableCount) return std::nullopt;
    for (std::uint64_t i = 0; i < subsystem_count; ++i) {
      CachedSubsystemError error;
      error.field = reader.str();
      error.class_name = reader.str();
      error.counterexample = decode_string_list(reader);
      error.detail = reader.str();
      verdict.subsystem_errors.push_back(std::move(error));
    }

    const std::uint64_t claim_count = reader.u64();
    if (claim_count > kMaxReasonableCount) return std::nullopt;
    for (std::uint64_t i = 0; i < claim_count; ++i) {
      CachedClaimError error;
      error.formula = reader.str();
      error.counterexample = decode_string_list(reader);
      verdict.claim_errors.push_back(std::move(error));
    }

    const std::uint64_t diag_count = reader.u64();
    if (diag_count > kMaxReasonableCount) return std::nullopt;
    for (std::uint64_t i = 0; i < diag_count; ++i) {
      CachedDiagnostic diag;
      diag.severity = reader.u8();
      if (diag.severity > static_cast<std::uint8_t>(Severity::kError)) {
        return std::nullopt;
      }
      diag.line = reader.u32();
      diag.column = reader.u32();
      diag.message = reader.str();
      verdict.diagnostics.push_back(std::move(diag));
    }
    reader.expect_end();
    return verdict;
  } catch (const support::BinaryFormatError&) {
    return std::nullopt;
  }
}

std::optional<std::string> BehaviorCache::load_payload(
    const support::Digest128& key, Kind kind) {
  const std::string path = entry_path(key, kind);
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    support::metrics::counter("cache.miss").add();
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::optional<std::string> payload = decode_file(buffer.str(), key, kind);
  if (!payload) {
    // Present but unusable: corruption, truncation, or version skew.  Treat
    // as a miss so verification recomputes (and overwrites) the entry.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    support::metrics::counter("cache.invalidated").add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  support::metrics::counter("cache.hit").add();
  return payload;
}

bool BehaviorCache::store_payload(const support::Digest128& key, Kind kind,
                                  std::string_view payload) {
  const std::string path = entry_path(key, kind);
  const std::string temp =
      path + ".tmp" +
      std::to_string(temp_serial_.fetch_add(1, std::memory_order_relaxed));
  const std::string image = encode_file(key, kind, payload);
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    file.write(image.data(), static_cast<std::streamsize>(image.size()));
    if (!file) {
      store_failures_.fetch_add(1, std::memory_order_relaxed);
      std::error_code ignored;
      std::filesystem::remove(temp, ignored);
      return false;
    }
  }
  std::error_code error;
  std::filesystem::rename(temp, path, error);
  if (error) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  support::metrics::counter("cache.store").add();
  return true;
}

std::optional<CachedVerdict> BehaviorCache::load_verdict(
    const support::Digest128& key) {
  const auto payload = load_payload(key, Kind::kVerdict);
  if (!payload) return std::nullopt;
  auto verdict = decode_verdict(*payload);
  if (!verdict) {
    // The framing verified but the payload does not parse: count the hit
    // back out as an invalidation.
    hits_.fetch_sub(1, std::memory_order_relaxed);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    support::metrics::counter("cache.invalidated").add();
  }
  return verdict;
}

bool BehaviorCache::store_verdict(const support::Digest128& key,
                                  const CachedVerdict& verdict) {
  return store_payload(key, Kind::kVerdict, encode_verdict(verdict));
}

std::optional<fsm::Dfa> BehaviorCache::load_dfa(const support::Digest128& key,
                                                SymbolTable& table) {
  const auto payload = load_payload(key, Kind::kDfa);
  if (!payload) return std::nullopt;
  try {
    return fsm::dfa_from_bytes(*payload, table);
  } catch (const std::exception&) {
    hits_.fetch_sub(1, std::memory_order_relaxed);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    support::metrics::counter("cache.invalidated").add();
    return std::nullopt;
  }
}

bool BehaviorCache::store_dfa(const support::Digest128& key,
                              const fsm::Dfa& dfa, const SymbolTable& table) {
  return store_payload(key, Kind::kDfa, fsm::dfa_to_bytes(dfa, table));
}

std::optional<std::string> BehaviorCache::load_artifact(
    const support::Digest128& key) {
  return load_payload(key, Kind::kArtifact);
}

bool BehaviorCache::store_artifact(const support::Digest128& key,
                                   std::string_view artifact) {
  return store_payload(key, Kind::kArtifact, artifact);
}

std::optional<fsm::CompiledDfa> BehaviorCache::load_table(
    const support::Digest128& key, SymbolTable& table) {
  const auto payload = load_payload(key, Kind::kTable);
  if (!payload) return std::nullopt;
  try {
    return fsm::CompiledDfa::from_bytes(*payload, table);
  } catch (const std::exception&) {
    // Framing verified but the payload does not decode (e.g. table-format
    // version skew): count the hit back out as an invalidation.
    hits_.fetch_sub(1, std::memory_order_relaxed);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    support::metrics::counter("cache.invalidated").add();
    return std::nullopt;
  }
}

bool BehaviorCache::store_table(const support::Digest128& key,
                                const fsm::CompiledDfa& compiled) {
  return store_payload(key, Kind::kTable, compiled.to_bytes());
}

CacheStats BehaviorCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.stores = stores_.load(std::memory_order_relaxed);
  stats.store_failures = store_failures_.load(std::memory_order_relaxed);
  return stats;
}

Word intern_word(const std::vector<std::string>& names, SymbolTable& table) {
  Word word;
  word.reserve(names.size());
  for (const std::string& name : names) word.push_back(table.intern(name));
  return word;
}

}  // namespace shelley::core
