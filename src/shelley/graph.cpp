#include "shelley/graph.hpp"

#include <deque>
#include <map>
#include <set>

namespace shelley::core {

std::string DependencyNode::label() const {
  if (type == Type::kEntry) return operation;
  return operation + "/exit" + std::to_string(exit_id);
}

DependencyGraph DependencyGraph::build(const ClassSpec& spec,
                                       DiagnosticEngine& diagnostics) {
  DependencyGraph graph;
  std::map<std::string, std::size_t> entries;
  std::map<std::pair<std::string, std::size_t>, std::size_t> exits;

  for (const Operation& op : spec.operations) {
    entries[op.name] = graph.nodes_.size();
    graph.nodes_.push_back(
        DependencyNode{DependencyNode::Type::kEntry, op.name, 0});
    for (const ExitPoint& exit : op.exits) {
      exits[{op.name, exit.id}] = graph.nodes_.size();
      graph.nodes_.push_back(
          DependencyNode{DependencyNode::Type::kExit, op.name, exit.id});
    }
  }

  for (const Operation& op : spec.operations) {
    const std::size_t entry = entries.at(op.name);
    for (const ExitPoint& exit : op.exits) {
      const std::size_t exit_node = exits.at({op.name, exit.id});
      graph.edges_.push_back(DependencyEdge{entry, exit_node});
      for (const std::string& successor : exit.successors) {
        const auto it = entries.find(successor);
        if (it == entries.end()) {
          diagnostics.error(exit.loc,
                            "class '" + spec.name + "', operation '" +
                                op.name + "': return names successor '" +
                                successor +
                                "' which is not an operation of this class");
          continue;
        }
        graph.edges_.push_back(DependencyEdge{exit_node, it->second});
      }
    }
  }
  return graph;
}

std::size_t DependencyGraph::entry_of(std::string_view operation) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == DependencyNode::Type::kEntry &&
        nodes_[i].operation == operation) {
      return i;
    }
  }
  return npos;
}

std::vector<std::size_t> DependencyGraph::exits_of(
    std::string_view operation) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == DependencyNode::Type::kExit &&
        nodes_[i].operation == operation) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::string> DependencyGraph::reachable_operations(
    const ClassSpec& spec) const {
  std::set<std::size_t> visited;
  std::deque<std::size_t> work;
  for (const std::string& op : spec.initial_operations()) {
    const std::size_t entry = entry_of(op);
    if (entry != npos && visited.insert(entry).second) work.push_back(entry);
  }
  while (!work.empty()) {
    const std::size_t node = work.front();
    work.pop_front();
    for (const DependencyEdge& edge : edges_) {
      if (edge.from == node && visited.insert(edge.to).second) {
        work.push_back(edge.to);
      }
    }
  }
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (std::size_t node : visited) {
    if (nodes_[node].type == DependencyNode::Type::kEntry &&
        seen.insert(nodes_[node].operation).second) {
      out.push_back(nodes_[node].operation);
    }
  }
  return out;
}

}  // namespace shelley::core
