// Content-addressed cache keys for class specifications (§3.2: infer(p) is
// a pure function of the annotated AST, so per-class verification results
// are memoizable by content).
//
// Two layers:
//
//  * spec_fingerprint -- a canonical 128-bit hash of ONE class: its name,
//    annotation set (@sys/@claim/@op* with exits and successors), and every
//    operation body walked node-by-node, source locations included (cached
//    diagnostics replay verbatim, so a class whose text moved must miss);
//
//  * class_key -- the full dependency closure: a composite's key folds in
//    the keys of its subsystem classes recursively, plus the toolchain
//    version and every option that can change verification output.  Editing
//    a base class therefore invalidates exactly its own entry and every
//    composite that (transitively) uses it.
#pragma once

#include <string_view>

#include "shelley/checker.hpp"
#include "shelley/spec.hpp"
#include "support/hash.hpp"

namespace shelley::core {

/// Folded into every class_key: bump the format half whenever the cache
/// entry encoding or the verification pipeline's observable output changes.
inline constexpr std::string_view kToolchainVersion =
    "shelley-mp/1.0.0 cache-format/1";

/// Options that change what verification emits, and therefore must key the
/// cache.  Wall-clock limits (timeout) are deliberately absent: classes
/// aborted by a resource limit are never stored (cache.hpp).
struct FingerprintOptions {
  std::uint64_t dfa_state_budget = 0;  ///< the --dfa-budget lint threshold
  std::uint64_t max_states = 0;        ///< the --max-states guard
  std::uint64_t ltlf_engine = 0;       ///< the --ltlf-engine choice
  std::uint64_t lint_claims = 0;       ///< the --lint-claims toggle
};

/// Canonical hash of one class specification in isolation.
[[nodiscard]] support::Digest128 spec_fingerprint(const ClassSpec& spec);

/// The cache key of `spec`: toolchain version + options + its own
/// fingerprint + the class_key of every subsystem class, in declaration
/// order.  Unknown subsystem classes fold in a distinct missing marker (so
/// later defining the class changes the key); cyclic subsystem references
/// are cut with a back-reference marker instead of recursing forever.
[[nodiscard]] support::Digest128 class_key(const ClassSpec& spec,
                                           const ClassLookup& lookup,
                                           const FingerprintOptions& options);

}  // namespace shelley::core
