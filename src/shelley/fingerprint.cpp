#include "shelley/fingerprint.hpp"

#include <variant>
#include <vector>

#include "upy/ast.hpp"

namespace shelley::core {

namespace {

using support::Hasher;

void hash_loc(Hasher& hasher, SourceLoc loc) {
  hasher.update_u32(loc.line);
  hasher.update_u32(loc.column);
}

void hash_expr(Hasher& hasher, const upy::ExprPtr& expr);

void hash_expr_list(Hasher& hasher, const std::vector<upy::ExprPtr>& exprs) {
  hasher.update_u64(exprs.size());
  for (const upy::ExprPtr& expr : exprs) hash_expr(hasher, expr);
}

void hash_expr(Hasher& hasher, const upy::ExprPtr& expr) {
  if (expr == nullptr) {
    hasher.update_u8(0xff);  // distinct from every variant index
    return;
  }
  hash_loc(hasher, expr->loc);
  hasher.update_u8(static_cast<std::uint8_t>(expr->node.index()));
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, upy::NameExpr>) {
          hasher.update_sized(node.id);
        } else if constexpr (std::is_same_v<T, upy::AttributeExpr>) {
          hash_expr(hasher, node.value);
          hasher.update_sized(node.attr);
        } else if constexpr (std::is_same_v<T, upy::CallExpr>) {
          hash_expr(hasher, node.callee);
          hash_expr_list(hasher, node.args);
        } else if constexpr (std::is_same_v<T, upy::NumberExpr>) {
          hasher.update_sized(node.literal);
        } else if constexpr (std::is_same_v<T, upy::StringExpr>) {
          hasher.update_sized(node.value);
        } else if constexpr (std::is_same_v<T, upy::BoolExpr>) {
          hasher.update_u8(node.value ? 1 : 0);
        } else if constexpr (std::is_same_v<T, upy::NoneExpr>) {
          // tag alone suffices
        } else if constexpr (std::is_same_v<T, upy::ListExpr>) {
          hash_expr_list(hasher, node.elements);
        } else if constexpr (std::is_same_v<T, upy::TupleExpr>) {
          hash_expr_list(hasher, node.elements);
        } else if constexpr (std::is_same_v<T, upy::UnaryExpr>) {
          hasher.update_sized(node.op);
          hash_expr(hasher, node.operand);
        } else if constexpr (std::is_same_v<T, upy::BinaryExpr>) {
          hasher.update_sized(node.op);
          hash_expr(hasher, node.left);
          hash_expr(hasher, node.right);
        } else if constexpr (std::is_same_v<T, upy::SubscriptExpr>) {
          hash_expr(hasher, node.value);
          hash_expr(hasher, node.index);
        }
      },
      expr->node);
}

void hash_stmt(Hasher& hasher, const upy::StmtPtr& stmt);

void hash_block(Hasher& hasher, const upy::Block& block) {
  hasher.update_u64(block.size());
  for (const upy::StmtPtr& stmt : block) hash_stmt(hasher, stmt);
}

void hash_stmt(Hasher& hasher, const upy::StmtPtr& stmt) {
  if (stmt == nullptr) {
    hasher.update_u8(0xff);
    return;
  }
  hash_loc(hasher, stmt->loc);
  hasher.update_u8(static_cast<std::uint8_t>(stmt->node.index()));
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, upy::ExprStmt>) {
          hash_expr(hasher, node.value);
        } else if constexpr (std::is_same_v<T, upy::AssignStmt>) {
          hash_expr(hasher, node.target);
          hash_expr(hasher, node.value);
        } else if constexpr (std::is_same_v<T, upy::ReturnStmt>) {
          hash_expr(hasher, node.value);
        } else if constexpr (std::is_same_v<T, upy::PassStmt> ||
                             std::is_same_v<T, upy::BreakStmt> ||
                             std::is_same_v<T, upy::ContinueStmt>) {
          // tag alone suffices
        } else if constexpr (std::is_same_v<T, upy::IfStmt>) {
          hash_expr(hasher, node.condition);
          hash_block(hasher, node.then_body);
          hash_block(hasher, node.else_body);
        } else if constexpr (std::is_same_v<T, upy::WhileStmt>) {
          hash_expr(hasher, node.condition);
          hash_block(hasher, node.body);
        } else if constexpr (std::is_same_v<T, upy::ForStmt>) {
          hasher.update_sized(node.target);
          hash_expr(hasher, node.iterable);
          hash_block(hasher, node.body);
        } else if constexpr (std::is_same_v<T, upy::MatchStmt>) {
          hash_expr(hasher, node.subject);
          hasher.update_u64(node.cases.size());
          for (const upy::MatchCase& match_case : node.cases) {
            hash_loc(hasher, match_case.loc);
            hash_expr(hasher, match_case.pattern);
            hash_block(hasher, match_case.body);
          }
        } else if constexpr (std::is_same_v<T, upy::TryStmt>) {
          hash_block(hasher, node.body);
          hasher.update_u64(node.handlers.size());
          for (const upy::Block& handler : node.handlers) {
            hash_block(hasher, handler);
          }
          hash_block(hasher, node.final_body);
        } else if constexpr (std::is_same_v<T, upy::RaiseStmt>) {
          hash_expr(hasher, node.value);
        }
      },
      stmt->node);
}

void hash_spec(Hasher& hasher, const ClassSpec& spec) {
  hasher.update_sized(spec.name);
  hash_loc(hasher, spec.loc);
  hasher.update_u8(spec.is_system ? 1 : 0);
  hasher.update_u8(spec.is_composite ? 1 : 0);

  hasher.update_u64(spec.subsystems.size());
  for (const SubsystemDecl& subsystem : spec.subsystems) {
    hasher.update_sized(subsystem.field);
    hasher.update_sized(subsystem.class_name);
    hash_loc(hasher, subsystem.loc);
  }

  hasher.update_u64(spec.claims.size());
  for (const Claim& claim : spec.claims) {
    hasher.update_sized(claim.text);
    hash_loc(hasher, claim.loc);
  }

  hasher.update_u64(spec.operations.size());
  for (const Operation& op : spec.operations) {
    hasher.update_sized(op.name);
    hash_loc(hasher, op.loc);
    hasher.update_u8(op.initial ? 1 : 0);
    hasher.update_u8(op.final ? 1 : 0);
    hasher.update_u64(op.exits.size());
    for (const ExitPoint& exit : op.exits) {
      hasher.update_u64(exit.id);
      hash_loc(hasher, exit.loc);
      hasher.update_u64(exit.successors.size());
      for (const std::string& successor : exit.successors) {
        hasher.update_sized(successor);
      }
    }
    hash_block(hasher, op.body);
  }
}

void fold_key(Hasher& hasher, const ClassSpec& spec,
              const ClassLookup& lookup,
              std::vector<const ClassSpec*>& in_progress) {
  for (const ClassSpec* ancestor : in_progress) {
    if (ancestor == &spec) {
      // A subsystem cycle (malformed input the frontend diagnoses anyway):
      // fold a back-reference instead of recursing.
      hasher.update_u8(0x02);
      return;
    }
  }
  in_progress.push_back(&spec);
  hasher.update_u8(0x01);  // present-class marker
  hash_spec(hasher, spec);
  hasher.update_u64(spec.subsystems.size());
  for (const SubsystemDecl& subsystem : spec.subsystems) {
    const ClassSpec* sub_spec =
        lookup ? lookup(subsystem.class_name) : nullptr;
    if (sub_spec == nullptr) {
      hasher.update_u8(0x00);  // missing-class marker
      hasher.update_sized(subsystem.class_name);
    } else {
      fold_key(hasher, *sub_spec, lookup, in_progress);
    }
  }
  in_progress.pop_back();
}

}  // namespace

support::Digest128 spec_fingerprint(const ClassSpec& spec) {
  Hasher hasher;
  hash_spec(hasher, spec);
  return hasher.digest();
}

support::Digest128 class_key(const ClassSpec& spec, const ClassLookup& lookup,
                             const FingerprintOptions& options) {
  Hasher hasher;
  hasher.update_sized(kToolchainVersion);
  hasher.update_u64(options.dfa_state_budget);
  hasher.update_u64(options.max_states);
  hasher.update_u64(options.ltlf_engine);
  hasher.update_u64(options.lint_claims);
  std::vector<const ClassSpec*> in_progress;
  fold_key(hasher, spec, lookup, in_progress);
  return hasher.digest();
}

}  // namespace shelley::core
