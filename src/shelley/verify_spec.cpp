// The per-class verification pipeline (§3 steps 1-3 plus the composite
// checks of §2.2) and the symbol pre-warming that keeps parallel and
// replayed runs byte-identical to the serial path.  Split out of
// verifier.cpp: this file is the pipeline, verifier.cpp is registration
// and driving, replay.cpp is the cache protocol.
#include <chrono>
#include <optional>

#include "ir/lowering.hpp"
#include "ltlf/parser.hpp"
#include "shelley/graph.hpp"
#include "shelley/invocation.hpp"
#include "shelley/lint.hpp"
#include "shelley/verifier.hpp"
#include "support/guard.hpp"
#include "support/trace.hpp"

namespace shelley::core {

ClassReport Verifier::verify_spec(const ClassSpec& spec,
                                  DiagnosticEngine& sink) {
  ClassReport report;
  report.class_name = spec.name;
  report.is_composite = spec.is_composite;

  support::trace::Span span("shelley.verify");
  span.arg("class", spec.name);
  const std::size_t diags_before = sink.diagnostics().size();

  // Collect per-class automata statistics when anyone will consume them:
  // the metrics registry (--stats / --trace-out / SHELLEY_TRACE=1) or the
  // DFA state-budget lint.  Otherwise the sink stays unset and every
  // record_* call in the pipeline below stays on its two-load fast path.
  std::optional<support::metrics::ScopedSink> stats_guard;
  const bool want_stats = support::metrics::enabled() ||
                          lint_options_.dfa_state_budget > 0;
  if (want_stats) stats_guard.emplace(&report.stats);
  const auto started = std::chrono::steady_clock::now();

  try {
    // Step 1 -- method dependency extraction validates successor references.
    support::guard::check_deadline("verify.dependencies");
    (void)DependencyGraph::build(spec, sink);

    // Step 3 -- method invocation analysis.
    support::guard::check_deadline("verify.invocations");
    report.invocation_errors = analyze_invocations(spec, lookup(), sink);

    // Specification lints (warnings only).
    report.lint_findings = lint_class(spec, table_, sink);

    // Step 2 plus the composite checks of §2.2 (behavior extraction happens
    // inside check_composite).  Base classes still get their claims checked
    // against the valid-usage language.
    support::guard::check_deadline("verify.check");
    if (spec.is_composite) {
      report.check =
          check_composite(spec, lookup(), table_, sink, check_options_);
    } else {
      report.check =
          check_base_claims(spec, table_, sink, check_options_);
    }
    // Claim-quality findings are lints: warnings that never affect ok().
    report.lint_findings += report.check.claim_lints;
  } catch (const support::guard::ResourceError& error) {
    // One class blowing its state budget / deadline must not take down the
    // whole run: record it (fails ok()) and let verify_all keep going.
    ++report.resource_errors;
    sink.error(error.loc(), "verification of '" + spec.name +
                                "' aborted: " + error.message());
  }

  if (want_stats) {
    report.stats.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    stats_guard.reset();  // stop attributing before the lint reads stats
    report.lint_findings +=
        lint_state_budget(spec, report.stats, lint_options_, sink);
  }

  span.arg("ok", report.ok() ? std::string_view("true")
                             : std::string_view("false"));
  if (support::trace::enabled()) {
    // Surface the first diagnostic this class produced as span metadata, so
    // a red span in the trace viewer explains itself.
    const auto& diags = sink.diagnostics();
    if (diags.size() > diags_before) {
      const Diagnostic& first = diags[diags_before];
      span.arg("first_diagnostic", first.message);
      span.arg("first_diagnostic_loc", to_string(first.loc));
    }
    if (report.stats.collected) {
      span.arg("dfa_states", report.stats.dfa_states_after);
      support::trace::counter(
          "automata/" + spec.name,
          {support::trace::Arg("nfa_states", report.stats.nfa_states),
           support::trace::Arg("dfa_states_before",
                               report.stats.dfa_states_before),
           support::trace::Arg("dfa_states_after",
                               report.stats.dfa_states_after),
           support::trace::Arg("product_pairs",
                               report.stats.product_pairs),
           support::trace::Arg("ltlf_states", report.stats.ltlf_states),
           support::trace::Arg("counterexample_len",
                               report.stats.counterexample_len)});
    }
  }
  return report;
}

void Verifier::warm_symbols(const ClassSpec& spec) {
  // Mirrors the intern calls of verify_spec exactly, in order.  The first
  // table touch is lint_completability's usage_nfa(spec, table): one bare
  // operation name per operation.
  if (!spec.operations.empty()) {
    for (const Operation& op : spec.operations) {
      (void)table_.intern(op.name);
    }
  }

  if (spec.is_composite) {
    // check_composite: extract_behaviors lowers every operation body and
    // interns one `field.method` symbol per tracked call, in source order.
    ir::LoweringContext context;
    for (const SubsystemDecl& subsystem : spec.subsystems) {
      context.tracked_fields.insert(subsystem.field);
    }
    context.symbols = &table_;  // diagnostics/next_return_id stay null
    for (const Operation& op : spec.operations) {
      (void)ir::lower_block(op.body, context);
    }
    // build_system_model + unrealizable_usage re-intern the bare operation
    // names (no-ops by now); the per-subsystem monitors intern the
    // prefix-qualified names of each subsystem class's operations.
    for (const SubsystemDecl& subsystem : spec.subsystems) {
      const ClassSpec* sub_spec = find_class(subsystem.class_name);
      if (sub_spec == nullptr) continue;
      const std::string prefix = subsystem.field + ".";
      for (const Operation& op : sub_spec->operations) {
        (void)table_.intern(prefix + op.name);
      }
    }
  } else if (spec.claims.empty()) {
    return;  // check_base_claims bails out before touching the table
  }

  // Claim atoms are interned while parsing, left to right.  Malformed
  // claims intern whatever atoms precede the error, then throw; the real
  // verification pass reports that error into its own sink.
  for (const Claim& claim : spec.claims) {
    try {
      (void)ltlf::parse(claim.text, table_);
    } catch (const ParseError&) {
      // ignored here; verify_spec diagnoses it
    }
  }
}

}  // namespace shelley::core
