// Class specifications: the structured form of an annotated MicroPython
// class, the input to every later analysis stage (dependency graph,
// behavior extraction, invocation analysis, usage checking).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"
#include "upy/ast.hpp"

namespace shelley::core {

/// `self.<field> = <class_name>(...)` inside __init__, declared as a
/// subsystem by @sys([...]).
struct SubsystemDecl {
  std::string field;
  std::string class_name;
  SourceLoc loc;
};

/// One `@claim("...")` annotation; the formula is parsed later (checker).
struct Claim {
  std::string text;
  SourceLoc loc;
};

/// One return statement of an operation: its position in source order and
/// the successor operations it allows (Table 2).
struct ExitPoint {
  std::size_t id = 0;
  SourceLoc loc;
  std::vector<std::string> successors;
};

/// An @op*-annotated method.
struct Operation {
  std::string name;
  SourceLoc loc;
  bool initial = false;
  bool final = false;
  std::vector<ExitPoint> exits;
  upy::Block body;  // shared AST, used for behavior extraction & checks

  [[nodiscard]] const ExitPoint* exit_with_successors(
      const std::vector<std::string>& successors) const;
};

struct ClassSpec {
  std::string name;
  SourceLoc loc;
  bool is_system = false;
  bool is_composite = false;
  std::vector<SubsystemDecl> subsystems;
  std::vector<Claim> claims;
  std::vector<Operation> operations;

  [[nodiscard]] const Operation* find_operation(std::string_view name) const;
  [[nodiscard]] const SubsystemDecl* find_subsystem(
      std::string_view field) const;
  [[nodiscard]] std::vector<std::string> initial_operations() const;
  [[nodiscard]] std::vector<std::string> final_operations() const;
};

/// Builds the specification of one annotated class.  Emits diagnostics for
/// malformed annotations, undecodable returns, missing subsystem bindings,
/// and missing initial operations.  A spec is still produced on errors so
/// later stages can report more problems.
[[nodiscard]] ClassSpec extract_class_spec(const upy::ClassDef& cls,
                                           DiagnosticEngine& diagnostics);

/// Collects the return statements of a block in source order (recursing
/// into every nested statement).
[[nodiscard]] std::vector<const upy::ReturnStmt*> collect_returns(
    const upy::Block& block, std::vector<SourceLoc>* locations = nullptr);

}  // namespace shelley::core
