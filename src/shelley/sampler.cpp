#include "shelley/sampler.hpp"

#include <deque>

#include "fsm/ops.hpp"
#include "shelley/automata.hpp"

namespace shelley::core {
namespace {

/// Per-state distance to the nearest accepting state (BFS on the reversed
/// graph); used to steer the tail of a walk toward completion.
std::vector<std::size_t> acceptance_distance(const fsm::Dfa& dfa) {
  constexpr auto kInf = static_cast<std::size_t>(-1);
  std::vector<std::size_t> distance(dfa.state_count(), kInf);
  std::vector<std::vector<fsm::StateId>> predecessors(dfa.state_count());
  for (fsm::StateId s = 0; s < dfa.state_count(); ++s) {
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      predecessors[dfa.transition(s, letter)].push_back(s);
    }
  }
  std::deque<fsm::StateId> work;
  for (fsm::StateId s = 0; s < dfa.state_count(); ++s) {
    if (dfa.is_accepting(s)) {
      distance[s] = 0;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const fsm::StateId s = work.front();
    work.pop_front();
    for (fsm::StateId p : predecessors[s]) {
      if (distance[p] == kInf) {
        distance[p] = distance[s] + 1;
        work.push_back(p);
      }
    }
  }
  return distance;
}

}  // namespace

TraceSampler::TraceSampler(const ClassSpec& spec, SymbolTable& table,
                           std::uint64_t seed)
    : table_(&table),
      dfa_(fsm::minimize(fsm::determinize(usage_nfa(spec, table)))),
      live_(fsm::live_states(dfa_)),
      rng_(seed) {}

std::vector<std::string> TraceSampler::sample(std::size_t max_length,
                                              double stop_bias) {
  const std::vector<std::size_t> distance = acceptance_distance(dfa_);
  std::vector<std::string> out;
  fsm::StateId state = dfa_.initial();
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (std::size_t step = 0; step < max_length; ++step) {
    if (dfa_.is_accepting(state) && coin(rng_) < stop_bias) break;

    // Collect live successors; once near the length cap, insist on moves
    // that shrink the distance to acceptance so the walk can finish.
    const std::size_t budget = max_length - step;
    std::vector<std::size_t> candidates;
    for (std::size_t letter = 0; letter < dfa_.alphabet().size(); ++letter) {
      const fsm::StateId next = dfa_.transition(state, letter);
      if (!live_[next]) continue;
      if (distance[next] + 1 > budget) continue;  // could not finish
      candidates.push_back(letter);
    }
    if (candidates.empty()) break;  // accepting (or stuck): stop here
    std::uniform_int_distribution<std::size_t> pick(0,
                                                    candidates.size() - 1);
    const std::size_t letter = candidates[pick(rng_)];
    out.push_back(table_->name(dfa_.alphabet()[letter]));
    state = dfa_.transition(state, letter);
  }

  // If the cap was too tight to reach acceptance (only possible when the
  // spec's shortest completion exceeds max_length), walk greedily along
  // distance-decreasing edges so every sample is a complete usage.
  while (!dfa_.is_accepting(state)) {
    bool progressed = false;
    for (std::size_t letter = 0; letter < dfa_.alphabet().size(); ++letter) {
      const fsm::StateId next = dfa_.transition(state, letter);
      if (live_[next] && distance[next] + 1 == distance[state]) {
        out.push_back(table_->name(dfa_.alphabet()[letter]));
        state = next;
        progressed = true;
        break;
      }
    }
    if (!progressed) break;  // dead spec (no completion exists at all)
  }
  return out;
}

}  // namespace shelley::core
