#include "shelley/report_json.hpp"

#include "support/json.hpp"
#include "support/metrics.hpp"

namespace shelley::core {
namespace {

void write_word(JsonWriter& json, const Word& word,
                const SymbolTable& table) {
  json.begin_array();
  for (Symbol s : word) json.value(table.name(s));
  json.end_array();
}

void write_class_stats(JsonWriter& json,
                       const support::metrics::AutomataStats& stats) {
  json.key("stats").begin_object();
  json.key("nfa_states").value(stats.nfa_states);
  json.key("dfa_states_before").value(stats.dfa_states_before);
  json.key("dfa_states_after").value(stats.dfa_states_after);
  json.key("determinize_calls").value(stats.determinize_calls);
  json.key("minimize_calls").value(stats.minimize_calls);
  json.key("product_pairs").value(stats.product_pairs);
  json.key("ltlf_states").value(stats.ltlf_states);
  json.key("counterexample_len").value(stats.counterexample_len);
  json.key("elapsed_ms").value(stats.elapsed_ms);
  json.end_object();
}

void write_global_stats(JsonWriter& json) {
  json.key("stats").begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : support::metrics::counter_snapshot()) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("distributions").begin_object();
  for (const auto& [name, snap] :
       support::metrics::distribution_snapshot()) {
    json.key(name).begin_object();
    json.key("count").value(snap.count);
    json.key("sum").value(snap.sum);
    json.key("min").value(snap.min);
    json.key("max").value(snap.max);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void write_spec(JsonWriter& json, const ClassSpec& spec) {
  json.begin_object();
  json.key("name").value(spec.name);
  json.key("is_system").value(spec.is_system);
  json.key("is_composite").value(spec.is_composite);
  json.key("subsystems").begin_array();
  for (const SubsystemDecl& subsystem : spec.subsystems) {
    json.begin_object();
    json.key("field").value(subsystem.field);
    json.key("class").value(subsystem.class_name);
    json.end_object();
  }
  json.end_array();
  json.key("claims").begin_array();
  for (const Claim& claim : spec.claims) json.value(claim.text);
  json.end_array();
  json.key("operations").begin_array();
  for (const Operation& op : spec.operations) {
    json.begin_object();
    json.key("name").value(op.name);
    json.key("initial").value(op.initial);
    json.key("final").value(op.final);
    json.key("exits").begin_array();
    for (const ExitPoint& exit : op.exits) {
      json.begin_object();
      json.key("id").value(exit.id);
      json.key("successors").begin_array();
      for (const std::string& successor : exit.successors) {
        json.value(successor);
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string spec_to_json(const ClassSpec& spec) {
  JsonWriter json;
  write_spec(json, spec);
  return json.str();
}

std::string report_to_json(const Report& report, const Verifier& verifier,
                           bool include_stats,
                           const std::vector<FileSummary>* files) {
  const SymbolTable& table = verifier.symbols();
  // A batch where any input failed to load or parse is not ok, even when
  // every class that survived verifies (matches the CLI's exit-code rule).
  bool inputs_ok = true;
  if (files != nullptr) {
    for (const FileSummary& file : *files) {
      inputs_ok = inputs_ok && file.loaded && file.parse_errors == 0;
    }
  }
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(report.ok() && inputs_ok);
  json.key("classes").begin_array();
  for (const ClassReport& cls : report.classes) {
    json.begin_object();
    json.key("name").value(cls.class_name);
    json.key("ok").value(cls.ok());
    json.key("is_composite").value(cls.is_composite);
    json.key("invocation_errors").value(cls.invocation_errors);
    json.key("lint_findings").value(cls.lint_findings);
    json.key("resource_errors").value(cls.resource_errors);
    json.key("subsystem_errors").begin_array();
    for (const SubsystemError& error : cls.check.subsystem_errors) {
      json.begin_object();
      json.key("subsystem").value(error.field);
      json.key("class").value(error.class_name);
      json.key("counterexample");
      write_word(json, error.counterexample, table);
      json.key("detail").value(error.detail);
      json.end_object();
    }
    json.end_array();
    json.key("claim_errors").begin_array();
    for (const ClaimError& error : cls.check.claim_errors) {
      json.begin_object();
      json.key("formula").value(error.formula);
      json.key("counterexample");
      write_word(json, error.counterexample, table);
      json.end_object();
    }
    json.end_array();
    if (include_stats && cls.stats.collected) {
      write_class_stats(json, cls.stats);
    }
    json.end_object();
  }
  json.end_array();
  json.key("diagnostics").begin_array();
  for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
    json.begin_object();
    json.key("severity").value(to_string(diag.severity));
    json.key("line").value(static_cast<std::uint64_t>(diag.loc.line));
    json.key("column").value(static_cast<std::uint64_t>(diag.loc.column));
    json.key("message").value(diag.message);
    json.end_object();
  }
  json.end_array();
  if (files != nullptr) {
    json.key("files").begin_array();
    for (const FileSummary& file : *files) {
      json.begin_object();
      json.key("path").value(file.path);
      json.key("loaded").value(file.loaded);
      json.key("parse_errors").value(file.parse_errors);
      if (!file.failure.empty()) json.key("failure").value(file.failure);
      json.end_object();
    }
    json.end_array();
  }
  if (include_stats) write_global_stats(json);
  json.end_object();
  return json.str();
}

}  // namespace shelley::core
