// The end-to-end verification pipeline: parse MicroPython sources, extract
// class specifications, and run all three analysis steps (§3) plus the
// composite checks of §2.2.  This is the main entry point of the library.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "shelley/checker.hpp"
#include "shelley/lint.hpp"
#include "shelley/spec.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/symbol.hpp"

namespace shelley::core {

class BehaviorCache;
struct CachedVerdict;

/// Per-class verification outcome.
struct ClassReport {
  std::string class_name;
  bool is_composite = false;
  std::size_t invocation_errors = 0;
  std::size_t lint_findings = 0;  // warnings; do not affect ok()
  /// Resource-limit violations (state budget, timeout, recursion cap) that
  /// aborted this class's verification; surfaced as diagnostics and they
  /// fail ok() -- an unverified class is not a verified one.
  std::size_t resource_errors = 0;
  CheckResult check;  // subsystem + claim results (composites only)
  /// Automata statistics collected while verifying this class.  Only
  /// populated (`stats.collected == true`) when metrics are enabled or a
  /// stats-consuming lint is configured; never affects ok() or render().
  support::metrics::AutomataStats stats;

  [[nodiscard]] bool ok() const {
    return invocation_errors == 0 && resource_errors == 0 && check.ok();
  }
};

struct Report {
  std::vector<ClassReport> classes;

  [[nodiscard]] bool ok() const;
  /// Paper-format error blocks for every failing class, concatenated.
  [[nodiscard]] std::string render(const SymbolTable& table) const;
};

class Verifier {
 public:
  Verifier() = default;

  /// Parses `source` and registers every class found.  Throws ParseError on
  /// syntax errors; annotation/spec problems become diagnostics.
  void add_source(std::string_view source);

  /// Parses `source` with error recovery: every syntax error becomes a
  /// diagnostic (multiple per file, in source order) and classes that
  /// survive recovery are still registered, so one malformed method does
  /// not hide a whole file.  Resource limits (support::guard) are reported
  /// as diagnostics too, aborting only this source.  Returns the number of
  /// error diagnostics this call produced.
  std::size_t add_source_recover(std::string_view source);

  /// Registers a single already-parsed class.
  void add_class(const upy::ClassDef& cls);

  [[nodiscard]] const ClassSpec* find_class(std::string_view name) const;
  [[nodiscard]] const std::deque<ClassSpec>& classes() const {
    return specs_;
  }

  /// Verifies one class (by name).  Unknown names produce a diagnostic and
  /// an empty report entry.
  [[nodiscard]] ClassReport verify_class(std::string_view name);

  /// Verifies every registered @sys class, serially (jobs = 1).
  [[nodiscard]] Report verify_all();

  /// Verifies every registered @sys class on up to `jobs` worker threads.
  /// `jobs == 1` is exactly the serial path.  With more jobs, classes are
  /// verified independently, each into its own diagnostics sink; sinks and
  /// report entries are merged in registration order, and the symbols every
  /// class needs are pre-interned in the serial order first, so the output
  /// is deterministic (and byte-identical to the serial path).
  [[nodiscard]] Report verify_all(std::size_t jobs);

  /// Installs an on-disk behavior cache (not owned; nullptr detaches).
  /// Every verification entry point then consults it before running the
  /// extract_behaviors/check_* pipeline: a hit replays the stored verdict
  /// and diagnostics byte-for-byte (the symbol table is pre-warmed in the
  /// serial interning order first, so downstream classes see identical
  /// symbol ids); a miss verifies as usual and stores the result, unless a
  /// resource limit aborted the class.
  void set_cache(BehaviorCache* cache) { cache_ = cache; }
  [[nodiscard]] BehaviorCache* cache() const { return cache_; }

  /// The content-addressed cache key of one registered class: toolchain
  /// version, output-affecting options, the canonical class AST, and the
  /// keys of its full subsystem closure (shelley/fingerprint.hpp).
  [[nodiscard]] support::Digest128 cache_key(const ClassSpec& spec) const;

  /// Replays a previously captured verdict into a ClassReport exactly as
  /// the live pipeline would have produced it: symbols are pre-warmed in
  /// serial intern order and the stored diagnostics are re-emitted into
  /// `sink`.  The caller is responsible for having looked `verdict` up
  /// under this class's *current* cache key (shelley/replay.hpp pairs this
  /// with capture_verdict; the engine's in-memory memo tier and the on-disk
  /// BehaviorCache both replay through here).
  [[nodiscard]] ClassReport replay_verdict(const ClassSpec& spec,
                                           CachedVerdict verdict,
                                           DiagnosticEngine& sink);

  /// verify_spec wrapped in the on-disk cache protocol: replay on hit,
  /// verify and store on miss.  Exactly verify_spec when no cache is
  /// installed.  Public so memo tiers layered *above* the disk cache
  /// (src/engine) can fall through to it.
  [[nodiscard]] ClassReport verify_or_replay(const ClassSpec& spec,
                                             DiagnosticEngine& sink);

  /// Interns every symbol verifying `spec` will touch, in the same order
  /// the serial verification path interns them.  Parallel drivers (here and
  /// in src/engine) pre-warm every class in registration order first, so
  /// worker-side interning only ever *finds* symbols and ids are identical
  /// to a serial run.
  void warm_symbols(const ClassSpec& spec);

  /// Lint thresholds applied to every subsequently verified class.
  void set_lint_options(const LintOptions& options) {
    lint_options_ = options;
  }
  [[nodiscard]] const LintOptions& lint_options() const {
    return lint_options_;
  }

  /// Claim-checking options (LTLf engine, claim lints) applied to every
  /// subsequently verified class.  Both fold into cache_key.
  void set_check_options(const CheckOptions& options) {
    check_options_ = options;
  }
  [[nodiscard]] const CheckOptions& check_options() const {
    return check_options_;
  }

  [[nodiscard]] SymbolTable& symbols() { return table_; }
  [[nodiscard]] const SymbolTable& symbols() const { return table_; }
  [[nodiscard]] DiagnosticEngine& diagnostics() { return diagnostics_; }
  [[nodiscard]] const DiagnosticEngine& diagnostics() const {
    return diagnostics_;
  }

 private:
  [[nodiscard]] ClassReport verify_spec(const ClassSpec& spec,
                                        DiagnosticEngine& sink);
  [[nodiscard]] ClassLookup lookup() const;

  SymbolTable table_;
  DiagnosticEngine diagnostics_;
  LintOptions lint_options_;
  CheckOptions check_options_;
  BehaviorCache* cache_ = nullptr;
  std::deque<ClassSpec> specs_;  // deque: stable addresses for ClassLookup
  // Name -> index into specs_; keeps find_class O(1) (it is called once per
  // analyzed invocation).
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace shelley::core
