// Trace sampling: random walks over a specification's valid-usage language.
// Produces complete usages (ending at a final operation) -- useful for
// generating test inputs for code that drives a constrained object, and as
// a self-check (every sampled trace must satisfy the monitor).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "shelley/spec.hpp"

namespace shelley::core {

class TraceSampler {
 public:
  /// Builds a sampler for `spec`; symbols are interned as bare op names.
  TraceSampler(const ClassSpec& spec, SymbolTable& table,
               std::uint64_t seed);

  /// Samples one complete usage of length <= `max_length` (the walk stops
  /// early at accepting states with probability `stop_bias`).  Returns
  /// operation names.  The empty trace is a valid sample (an instance that
  /// is never used).
  [[nodiscard]] std::vector<std::string> sample(std::size_t max_length = 32,
                                                double stop_bias = 0.3);

 private:
  SymbolTable* table_;
  fsm::Dfa dfa_;
  std::vector<bool> live_;
  std::mt19937_64 rng_;
};

}  // namespace shelley::core
