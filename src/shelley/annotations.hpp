// Decoding of Shelley's MicroPython annotations (Table 1) and of
// return-statement shapes (Table 2).
//
//   @claim("...")            class   temporal requirement
//   @sys                     class   base class
//   @sys(["s1", ..., "sn"])  class   composite class with subsystem fields
//   @op_initial              method  may be invoked first
//   @op_final                method  may be invoked last
//   @op_initial_final        method  both
//   @op                      method  in between initial and final methods
//
//   return ["m1", ..., "mk"]        successors m1..mk
//   return ["m1", ...], value       successors plus a user return value
//   return []                       no successor may follow
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"
#include "upy/ast.hpp"

namespace shelley::core {

struct ClassAnnotations {
  bool is_system = false;           // carries @sys
  bool is_composite = false;        // @sys had a subsystem list
  std::vector<std::string> subsystem_fields;
  std::vector<std::pair<std::string, SourceLoc>> claims;  // raw formula text
};

enum class OpKind {
  kNotAnOperation,  // no @op* decorator: helper method, ignored by analysis
  kOperation,       // @op
  kInitial,         // @op_initial
  kFinal,           // @op_final
  kInitialFinal,    // @op_initial_final
};

[[nodiscard]] bool is_initial(OpKind kind);
[[nodiscard]] bool is_final(OpKind kind);

/// Decodes a class's decorators; unknown decorators produce warnings,
/// malformed @sys/@claim arguments produce errors.
[[nodiscard]] ClassAnnotations decode_class_annotations(
    const upy::ClassDef& cls, DiagnosticEngine& diagnostics);

/// Decodes a method's decorators.
[[nodiscard]] OpKind decode_op_annotation(const upy::FunctionDef& method,
                                          DiagnosticEngine& diagnostics);

/// Decodes the successor list from the expression of a `return` statement
/// (Table 2).  Returns std::nullopt when the expression is not one of the
/// documented shapes (an error is reported).
[[nodiscard]] std::optional<std::vector<std::string>> decode_return_successors(
    const upy::ExprPtr& value, SourceLoc loc, DiagnosticEngine& diagnostics);

}  // namespace shelley::core
