#include "shelley/invocation.hpp"

#include <algorithm>
#include <set>

#include "support/strings.hpp"

namespace shelley::core {
namespace {

/// A syntactic `self.<field>.<method>(...)` call site.
struct TrackedCall {
  std::string field;
  std::string method;
  SourceLoc loc;
};

/// If `expr` is a call on a subsystem field, decodes it.
std::optional<TrackedCall> as_tracked_call(const upy::ExprPtr& expr,
                                           const ClassSpec& spec) {
  const auto* call = upy::as<upy::CallExpr>(expr);
  if (call == nullptr) return std::nullopt;
  const auto* method = upy::as<upy::AttributeExpr>(call->callee);
  if (method == nullptr) return std::nullopt;
  const auto* field = upy::as<upy::AttributeExpr>(method->value);
  if (field == nullptr) return std::nullopt;
  const auto* base = upy::as<upy::NameExpr>(field->value);
  if (base == nullptr || base->id != "self") return std::nullopt;
  if (spec.find_subsystem(field->attr) == nullptr) return std::nullopt;
  return TrackedCall{field->attr, method->attr, expr->loc};
}

void collect_calls(const upy::ExprPtr& expr, const ClassSpec& spec,
                   std::vector<TrackedCall>& out) {
  if (!expr) return;
  if (auto tracked = as_tracked_call(expr, spec)) {
    out.push_back(*std::move(tracked));
  }
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, upy::CallExpr>) {
          collect_calls(node.callee, spec, out);
          for (const upy::ExprPtr& arg : node.args) {
            collect_calls(arg, spec, out);
          }
        } else if constexpr (std::is_same_v<T, upy::AttributeExpr>) {
          collect_calls(node.value, spec, out);
        } else if constexpr (std::is_same_v<T, upy::ListExpr> ||
                             std::is_same_v<T, upy::TupleExpr>) {
          for (const upy::ExprPtr& element : node.elements) {
            collect_calls(element, spec, out);
          }
        } else if constexpr (std::is_same_v<T, upy::UnaryExpr>) {
          collect_calls(node.operand, spec, out);
        } else if constexpr (std::is_same_v<T, upy::BinaryExpr>) {
          collect_calls(node.left, spec, out);
          collect_calls(node.right, spec, out);
        } else if constexpr (std::is_same_v<T, upy::SubscriptExpr>) {
          collect_calls(node.value, spec, out);
          collect_calls(node.index, spec, out);
        }
      },
      expr->node);
}

/// Extracts the string-list of a case pattern, or nullopt for non-list
/// patterns (including the wildcard, which has a null pattern).
std::optional<std::vector<std::string>> pattern_strings(
    const upy::ExprPtr& pattern) {
  const auto* list = upy::as<upy::ListExpr>(pattern);
  if (list == nullptr) return std::nullopt;
  std::vector<std::string> out;
  for (const upy::ExprPtr& element : list->elements) {
    const auto* text = upy::as<upy::StringExpr>(element);
    if (text == nullptr) return std::nullopt;
    out.push_back(text->value);
  }
  return out;
}

std::string successors_text(const std::vector<std::string>& successors) {
  std::string out = "[";
  for (std::size_t i = 0; i < successors.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + successors[i] + "\"";
  }
  return out + "]";
}

class Analyzer {
 public:
  Analyzer(const ClassSpec& spec, const ClassLookup& lookup,
           DiagnosticEngine& diagnostics)
      : spec_(spec), lookup_(lookup), diagnostics_(diagnostics) {}

  std::size_t run() {
    const std::size_t before = diagnostics_.error_count();
    for (const Operation& op : spec_.operations) {
      analyze_block(op.body);
    }
    return diagnostics_.error_count() - before;
  }

 private:
  void check_call_targets(const upy::ExprPtr& expr) {
    std::vector<TrackedCall> calls;
    collect_calls(expr, spec_, calls);
    for (const TrackedCall& call : calls) {
      const SubsystemDecl* subsystem = spec_.find_subsystem(call.field);
      const ClassSpec* sub_spec = lookup_(subsystem->class_name);
      if (sub_spec == nullptr) continue;  // reported by the checker
      if (sub_spec->find_operation(call.method) == nullptr) {
        diagnostics_.error(call.loc,
                           "'" + call.method +
                               "' is not an operation of class '" +
                               sub_spec->name + "' (subsystem '" +
                               call.field + "')");
      }
    }
  }

  /// Number of *distinct* successor sets among the operation's exits; an
  /// operation whose exits all allow the same successors behaves like a
  /// single-exit one.
  static std::size_t effective_exits(const Operation& op) {
    std::set<std::vector<std::string>> distinct;
    for (const ExitPoint& exit : op.exits) distinct.insert(exit.successors);
    return distinct.size();
  }

  /// The paper's exit-point rule (§2.2 "Matching exit points"): when an
  /// operation has several exit points the caller must branch on its result
  /// (match subject or if/while condition); a discarded result would make
  /// the caller continue identically on every exit, which is unsound.
  void require_single_exit(const upy::ExprPtr& expr) {
    std::vector<TrackedCall> calls;
    collect_calls(expr, spec_, calls);
    for (const TrackedCall& call : calls) {
      const SubsystemDecl* subsystem = spec_.find_subsystem(call.field);
      const ClassSpec* sub_spec = lookup_(subsystem->class_name);
      if (sub_spec == nullptr) continue;
      const Operation* callee = sub_spec->find_operation(call.method);
      if (callee == nullptr) continue;
      const std::size_t exits = effective_exits(*callee);
      if (exits > 1) {
        diagnostics_.error(
            call.loc, "'" + call.field + "." + call.method + "' has " +
                          std::to_string(exits) +
                          " exit points but its result is not tested; "
                          "use a match statement to handle every exit");
      }
    }
  }

  void analyze_match(const upy::MatchStmt& match, SourceLoc loc) {
    check_call_targets(match.subject);
    // The subject itself is being tested, so a multi-exit call is exactly
    // what match is for; calls nested deeper (e.g. in arguments) still need
    // their own handling.
    if (!as_tracked_call(match.subject, spec_)) {
      require_single_exit(match.subject);
    }
    for (const upy::MatchCase& match_case : match.cases) {
      analyze_block(match_case.body);
    }

    // Exhaustiveness only applies when the subject is a tracked call.
    const auto tracked = as_tracked_call(match.subject, spec_);
    if (!tracked) return;
    const SubsystemDecl* subsystem = spec_.find_subsystem(tracked->field);
    const ClassSpec* sub_spec = lookup_(subsystem->class_name);
    if (sub_spec == nullptr) return;
    const Operation* callee = sub_spec->find_operation(tracked->method);
    if (callee == nullptr) return;

    bool has_wildcard = false;
    std::set<std::size_t> covered;
    for (const upy::MatchCase& match_case : match.cases) {
      if (!match_case.pattern) {
        has_wildcard = true;
        continue;
      }
      const auto strings = pattern_strings(match_case.pattern);
      if (!strings) {
        diagnostics_.warning(match_case.loc,
                             "case pattern is not a list of operation names; "
                             "exhaustiveness cannot be checked for it");
        continue;
      }
      const ExitPoint* exit = callee->exit_with_successors(*strings);
      if (exit == nullptr) {
        diagnostics_.warning(
            match_case.loc,
            "case " + successors_text(*strings) + " matches no exit point of "
                "'" + tracked->field + "." + tracked->method + "'");
        continue;
      }
      covered.insert(exit->id);
    }
    if (has_wildcard) return;
    for (const ExitPoint& exit : callee->exits) {
      if (!covered.contains(exit.id)) {
        diagnostics_.error(
            loc, "non-exhaustive match on '" + tracked->field + "." +
                     tracked->method + "': exit point " +
                     successors_text(exit.successors) + " is not handled");
      }
    }
  }

  void analyze_stmt(const upy::StmtPtr& stmt) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, upy::ExprStmt>) {
            check_call_targets(node.value);
            require_single_exit(node.value);
          } else if constexpr (std::is_same_v<T, upy::AssignStmt>) {
            check_call_targets(node.value);
            check_call_targets(node.target);
            require_single_exit(node.value);
            require_single_exit(node.target);
          } else if constexpr (std::is_same_v<T, upy::ReturnStmt>) {
            check_call_targets(node.value);
            require_single_exit(node.value);
          } else if constexpr (std::is_same_v<T, upy::IfStmt>) {
            // An if/while condition inspects the result, so multi-exit
            // calls are allowed here (§2: Shelley supports branching with
            // if/elif/else and match/case).
            check_call_targets(node.condition);
            analyze_block(node.then_body);
            analyze_block(node.else_body);
          } else if constexpr (std::is_same_v<T, upy::WhileStmt>) {
            check_call_targets(node.condition);
            analyze_block(node.body);
          } else if constexpr (std::is_same_v<T, upy::ForStmt>) {
            check_call_targets(node.iterable);
            require_single_exit(node.iterable);
            analyze_block(node.body);
          } else if constexpr (std::is_same_v<T, upy::MatchStmt>) {
            analyze_match(node, stmt->loc);
          } else if constexpr (std::is_same_v<T, upy::TryStmt>) {
            analyze_block(node.body);
            for (const upy::Block& handler : node.handlers) {
              analyze_block(handler);
            }
            analyze_block(node.final_body);
          } else if constexpr (std::is_same_v<T, upy::RaiseStmt>) {
            check_call_targets(node.value);
          }
        },
        stmt->node);
  }

  void analyze_block(const upy::Block& block) {
    for (const upy::StmtPtr& stmt : block) analyze_stmt(stmt);
  }

  const ClassSpec& spec_;
  const ClassLookup& lookup_;
  DiagnosticEngine& diagnostics_;
};

}  // namespace

std::size_t analyze_invocations(const ClassSpec& spec,
                                const ClassLookup& lookup,
                                DiagnosticEngine& diagnostics) {
  return Analyzer(spec, lookup, diagnostics).run();
}

}  // namespace shelley::core
