#include "shelley/compare.hpp"

#include "fsm/ops.hpp"
#include "shelley/automata.hpp"

namespace shelley::core {

std::optional<SpecDifference> compare_specs(const ClassSpec& first,
                                            const ClassSpec& second,
                                            SymbolTable& table) {
  const fsm::Dfa lhs =
      fsm::minimize(fsm::determinize(usage_nfa(first, table)));
  const fsm::Dfa rhs =
      fsm::minimize(fsm::determinize(usage_nfa(second, table)));
  if (const auto witness = fsm::inclusion_witness(lhs, rhs)) {
    return SpecDifference{*witness, true};
  }
  if (const auto witness = fsm::inclusion_witness(rhs, lhs)) {
    return SpecDifference{*witness, false};
  }
  return std::nullopt;
}

}  // namespace shelley::core
