// Specification lints: hygiene findings on a single class specification
// that are not hard errors but almost always indicate a specification bug.
//
//   * unreachable operation     -- no chain of successors from any initial
//                                  operation reaches it;
//   * dead exit                 -- a non-final operation has an exit with no
//                                  successors: any run taking it can never
//                                  complete the instance's lifecycle;
//   * no final operation        -- no instance can ever be disposed;
//   * incompletable usage       -- some reachable state of the usage
//                                  automaton cannot reach acceptance (with a
//                                  shortest witness call sequence);
//   * duplicate successor       -- a return lists the same operation twice.
#pragma once

#include "shelley/spec.hpp"
#include "support/metrics.hpp"
#include "support/symbol.hpp"

namespace shelley::core {

/// Tunable lint thresholds.  Everything defaults to "off"/permissive so a
/// default-constructed value reproduces the historical behavior exactly.
struct LintOptions {
  /// Warn when a class's minimized DFA exceeds this many states; 0 disables
  /// the budget lint.
  std::size_t dfa_state_budget = 0;
};

/// Runs every lint on `spec`; findings are reported as warnings.  Returns
/// the number of findings.
std::size_t lint_class(const ClassSpec& spec, SymbolTable& table,
                       DiagnosticEngine& diagnostics);

/// Budget lint: fires when the largest minimized DFA built while verifying
/// `spec` (as observed by the metrics sink) exceeds the configured budget.
/// Runs after the checks, because that is when the statistics exist.
/// Returns the number of findings (0 or 1).
std::size_t lint_state_budget(const ClassSpec& spec,
                              const support::metrics::AutomataStats& stats,
                              const LintOptions& options,
                              DiagnosticEngine& diagnostics);

}  // namespace shelley::core
