// Specification lints: hygiene findings on a single class specification
// that are not hard errors but almost always indicate a specification bug.
//
//   * unreachable operation     -- no chain of successors from any initial
//                                  operation reaches it;
//   * dead exit                 -- a non-final operation has an exit with no
//                                  successors: any run taking it can never
//                                  complete the instance's lifecycle;
//   * no final operation        -- no instance can ever be disposed;
//   * incompletable usage       -- some reachable state of the usage
//                                  automaton cannot reach acceptance (with a
//                                  shortest witness call sequence);
//   * duplicate successor       -- a return lists the same operation twice.
#pragma once

#include "shelley/spec.hpp"
#include "support/symbol.hpp"

namespace shelley::core {

/// Runs every lint on `spec`; findings are reported as warnings.  Returns
/// the number of findings.
std::size_t lint_class(const ClassSpec& spec, SymbolTable& table,
                       DiagnosticEngine& diagnostics);

}  // namespace shelley::core
