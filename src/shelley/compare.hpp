// Specification comparison: decides whether two class specifications admit
// exactly the same valid usages (refactoring support -- e.g. rewriting a
// match-based implementation into if/elif must not change the contract).
#pragma once

#include <optional>

#include "shelley/spec.hpp"
#include "support/symbol.hpp"

namespace shelley::core {

struct SpecDifference {
  Word witness;          // a complete usage accepted by exactly one spec
  bool in_first = false; // true when `witness` is valid for the first spec
};

/// Compares the valid-usage languages of two specs over bare operation
/// names.  Returns std::nullopt when the languages coincide; otherwise a
/// shortest distinguishing usage.
[[nodiscard]] std::optional<SpecDifference> compare_specs(
    const ClassSpec& first, const ClassSpec& second, SymbolTable& table);

}  // namespace shelley::core
