// Method-invocation analysis (§3, step 3):
//
//  * every call `self.<field>.<m>(...)` on a subsystem field must target an
//    operation declared (with an @op* decorator) in the subsystem's class;
//
//  * a `match` whose subject is such a call must test *every* exit point of
//    the callee exhaustively (each case pattern names one exit's successor
//    list; a wildcard `case _:` covers the rest).
#pragma once

#include "shelley/checker.hpp"
#include "shelley/spec.hpp"

namespace shelley::core {

/// Runs the invocation analysis on every operation body of `spec`.
/// All findings go to `diagnostics`; returns the number of errors found.
std::size_t analyze_invocations(const ClassSpec& spec,
                                const ClassLookup& lookup,
                                DiagnosticEngine& diagnostics);

}  // namespace shelley::core
