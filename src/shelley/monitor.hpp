// Runtime monitoring: a Monitor enforces a class specification online, one
// operation call at a time -- the dynamic counterpart of the static checker
// (what Shelley's annotations would enforce if compiled into the firmware).
//
// The monitor is a DFA walk over the valid-usage language:
//   * feed(op) advances; returns the verdict for this call;
//   * can_complete() says whether the lifecycle can still reach a final
//     operation; completed() whether stopping now is valid;
//   * after a violation the monitor latches kViolation until reset().
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "shelley/spec.hpp"

namespace shelley::core {

enum class Verdict {
  kOk,          // the call is allowed and the run is still completable
  kDoomed,      // allowed, but no final operation is reachable any more
  kViolation,   // the call is not allowed here
};

[[nodiscard]] std::string_view to_string(Verdict verdict);

class Monitor {
 public:
  /// Builds a monitor for one instance of `spec`.  Symbols are interned
  /// into `table` as bare operation names.
  Monitor(const ClassSpec& spec, SymbolTable& table);

  /// Builds a monitor directly from a previously constructed (or cached --
  /// see shelley/cache.hpp) minimal usage DFA, skipping the
  /// usage_nfa/determinize/minimize pipeline.  `dfa` must recognize the
  /// valid-usage language of the class being monitored.
  Monitor(SymbolTable& table, fsm::Dfa dfa);

  /// The minimal valid-usage DFA the monitor walks (for cache stores).
  [[nodiscard]] const fsm::Dfa& dfa() const { return dfa_; }

  /// Feeds one operation call.
  Verdict feed(std::string_view operation);

  /// True iff stopping now is a valid complete usage.
  [[nodiscard]] bool completed() const;

  /// True iff some continuation can still complete the usage.
  [[nodiscard]] bool can_complete() const;

  /// True once any violation has been fed (until reset).
  [[nodiscard]] bool violated() const { return violated_; }

  /// The operations that may be called next (empty after a violation).
  [[nodiscard]] std::vector<std::string> allowed_next() const;

  /// The calls fed since the last reset (violating call included).
  [[nodiscard]] const std::vector<std::string>& history() const {
    return history_;
  }

  void reset();

 private:
  SymbolTable* table_;
  fsm::Dfa dfa_;
  std::vector<bool> live_;
  fsm::StateId state_;
  bool violated_ = false;
  std::vector<std::string> history_;
};

}  // namespace shelley::core
