// Runtime monitoring: a Monitor enforces a class specification online, one
// operation call at a time -- the dynamic counterpart of the static checker
// (what Shelley's annotations would enforce if compiled into the firmware).
//
// The walk runs on a CompiledDfa (fsm/table.hpp): one bounded table load
// per event, integer letter ids on the hot path.  The string API remains as
// a thin interning shim over feed_letter().
//   * feed(op) / feed_letter(id) advance; each returns the verdict;
//   * can_complete() says whether the lifecycle can still reach a final
//     operation; completed() whether stopping now is valid;
//   * after a violation the monitor latches kViolation until reset().
//
// Verdict sequences are byte-identical to the pre-compiled DFA walk (pinned
// by the differential suite in tests/monitor/): unknown events violate
// without moving, entering any dead state -- now the single merged sink --
// violates and latches.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "fsm/table.hpp"
#include "shelley/spec.hpp"

namespace shelley::core {

enum class Verdict {
  kOk,          // the call is allowed and the run is still completable
  kDoomed,      // allowed, but no final operation is reachable any more
  kViolation,   // the call is not allowed here
};

[[nodiscard]] std::string_view to_string(Verdict verdict);

class Monitor {
 public:
  /// History entries retained by default; see set_history_limit().
  static constexpr std::size_t kDefaultHistoryLimit = 1024;

  /// Builds a monitor for one instance of `spec`.  Symbols are interned
  /// into `table` as bare operation names.
  Monitor(const ClassSpec& spec, SymbolTable& table);

  /// Builds a monitor directly from a previously constructed (or cached --
  /// see shelley/cache.hpp) minimal usage DFA, skipping the
  /// usage_nfa/determinize/minimize pipeline.  `dfa` must recognize the
  /// valid-usage language of the class being monitored.
  Monitor(SymbolTable& table, fsm::Dfa dfa);

  /// The minimal valid-usage DFA the monitor was compiled from (for cache
  /// stores).
  [[nodiscard]] const fsm::Dfa& dfa() const { return dfa_; }

  /// The compiled table the monitor walks.
  [[nodiscard]] const fsm::CompiledDfa& compiled() const { return compiled_; }

  /// Feeds one operation call by name (interning shim over feed_letter).
  Verdict feed(std::string_view operation);

  /// Feeds one operation call by compiled letter id -- the allocation-free
  /// hot path.  Pass compiled().letter_of(...) results; kNoLetter (an event
  /// outside the class alphabet) is a violation, like an unknown name.
  /// Letter-id feeds do not record history (there is no caller-owned string
  /// to copy); violating letters still latch.
  Verdict feed_letter(fsm::CompiledDfa::Letter letter);

  /// True iff stopping now is a valid complete usage.
  [[nodiscard]] bool completed() const;

  /// True iff some continuation can still complete the usage.
  [[nodiscard]] bool can_complete() const;

  /// True once any violation has been fed (until reset).
  [[nodiscard]] bool violated() const { return violated_; }

  /// The operations that may be called next (empty after a violation), in
  /// letter order -- byte-identical to the legacy symbol-ordered walk.
  [[nodiscard]] std::vector<std::string> allowed_next() const;

  /// The no-allocation form: appends the allowed next letters to `out`
  /// (cleared first); callers reuse `out` across events and resolve names
  /// via compiled().event_name() only when they actually report.
  void allowed_next(std::vector<fsm::CompiledDfa::Letter>& out) const;

  /// The most recent string-fed calls since the last reset (violating call
  /// included).  Bounded: once more than the history limit accumulate, the
  /// oldest entries are dropped in batches -- between limit and 2x limit
  /// entries are retained.  events_fed() always counts every call.
  [[nodiscard]] const std::vector<std::string>& history() const {
    return history_;
  }

  /// Caps retained history (default kDefaultHistoryLimit); 0 disables the
  /// bound entirely (the legacy keep-everything behavior).  Applies from
  /// the next feed; does not truncate retroactively.
  void set_history_limit(std::size_t limit) { history_limit_ = limit; }
  [[nodiscard]] std::size_t history_limit() const { return history_limit_; }

  /// Total calls fed since the last reset (string and letter-id feeds),
  /// independent of history retention.
  [[nodiscard]] std::uint64_t events_fed() const { return events_fed_; }

  void reset();

 private:
  void record(std::string_view operation);
  Verdict step(fsm::CompiledDfa::Letter letter);

  SymbolTable* table_;
  fsm::Dfa dfa_;
  fsm::CompiledDfa compiled_;
  std::uint32_t state_;
  bool violated_ = false;
  std::uint64_t events_fed_ = 0;
  std::size_t history_limit_ = kDefaultHistoryLimit;
  std::vector<std::string> history_;
};

}  // namespace shelley::core
