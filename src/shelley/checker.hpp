// Verification of composite classes (§2.2):
//
//  * subsystem-usage checking -- every complete behavior of the composite,
//    projected onto each subsystem, must be a valid complete usage of that
//    subsystem's class specification;
//
//  * temporal-claim checking -- every complete behavior, projected onto
//    subsystem events, must satisfy each @claim LTLf formula.
//
// Failures carry shortest counterexamples and render in the paper's report
// format (INVALID SUBSYSTEM USAGE / FAIL TO MEET REQUIREMENT).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "shelley/automata.hpp"
#include "shelley/spec.hpp"

namespace shelley::core {

/// Which LTLf engine answers temporal claims.  kDfa is the historical
/// progression-DFA path (`ltlf::counterexample`); kTableau is the on-the-fly
/// frame solver (`ltlf::check_tableau`), which skips determinization
/// entirely; kBoth runs both, validates the tableau's witness independently,
/// and throws EngineDisagreement when the verdicts differ -- the
/// two-independent-implementations oracle discipline, promoted to a
/// runtime mode.
enum class LtlfEngine : std::uint8_t { kDfa = 0, kTableau = 1, kBoth = 2 };

/// Claim-checking knobs threaded from the CLI through the verifier.  Both
/// fields change verification output, so both fold into the cache key
/// (shelley/fingerprint.hpp).
struct CheckOptions {
  LtlfEngine ltlf_engine = LtlfEngine::kDfa;
  /// Satisfiability/vacuity lints on every parsed claim: warn when a claim
  /// is unsatisfiable, or trivially true, over its checking alphabet.
  bool lint_claims = false;
};

/// `--ltlf-engine both` found the two engines disagreeing on a claim (or a
/// tableau witness that does not actually witness).  Never caught inside
/// the pipeline: a disagreement is a bug in one of the engines and must
/// abort loudly rather than ship either answer.
class EngineDisagreement : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct SubsystemError {
  std::string field;         // e.g. "a"
  std::string class_name;    // e.g. "Valve"
  Word counterexample;       // full system trace: open_a, a.test, a.open
  std::string detail;        // e.g. "test, >open< (not final)"
};

struct ClaimError {
  std::string formula;  // the claim's source text
  Word counterexample;  // projected trace of subsystem events
};

struct CheckResult {
  std::vector<SubsystemError> subsystem_errors;
  std::vector<ClaimError> claim_errors;
  /// Claim-quality findings (unsatisfiable / trivially-true), emitted as
  /// warnings; verify_spec folds them into ClassReport::lint_findings.
  std::size_t claim_lints = 0;

  [[nodiscard]] bool ok() const {
    return subsystem_errors.empty() && claim_errors.empty();
  }

  /// Renders the paper-format report; empty string when ok().
  [[nodiscard]] std::string render(const SymbolTable& table) const;
};

/// Resolves a class name to its specification (nullptr when unknown).
using ClassLookup = std::function<const ClassSpec*(const std::string&)>;

/// Runs both checks on a composite class.  `diagnostics` receives problems
/// that prevent checking (unknown subsystem classes, unparsable claims).
[[nodiscard]] CheckResult check_composite(const ClassSpec& composite,
                                          const ClassLookup& lookup,
                                          SymbolTable& table,
                                          DiagnosticEngine& diagnostics,
                                          const CheckOptions& options = {});

/// Checks the @claim annotations of a *base* class against its valid-usage
/// language (atoms are bare operation names).  Composites are handled by
/// check_composite, which sees subsystem events as well.
[[nodiscard]] CheckResult check_base_claims(const ClassSpec& spec,
                                            SymbolTable& table,
                                            DiagnosticEngine& diagnostics,
                                            const CheckOptions& options = {});

/// Explains why `projected` (a word over `<field>.<op>` symbols) is not a
/// valid complete usage of `spec`: renders the op sequence with the
/// offending call marked `>op<` plus "(not final)" or "(not allowed)".
[[nodiscard]] std::string diagnose_subsystem_usage(
    const ClassSpec& spec, std::string_view field, const Word& projected,
    SymbolTable& table);

namespace testing {
/// Makes the next `both`-mode claim check report an engine disagreement even
/// though the engines agree -- the regression hook proving the abort path
/// actually aborts (CheckOptions{kBoth} + one claim → EngineDisagreement).
/// Test-only; self-resets after one claim.
void force_ltlf_disagreement(bool force);
}  // namespace testing

/// Realizability: every usage declared by the composite's own annotations
/// should be executable by some run of its method bodies.  Undecodable
/// returns or unreachable exits silently shrink the realizable language;
/// this detects the gap and returns a declared-but-unrealizable operation
/// sequence (nullopt when every declared usage is realizable).
[[nodiscard]] std::optional<Word> unrealizable_usage(
    const ClassSpec& composite, const SystemModel& model,
    SymbolTable& table);

}  // namespace shelley::core
