// JSON export of verification reports and class specifications, for
// integration with editors/CI (the CLI's --json mode).
#pragma once

#include <string>

#include "shelley/verifier.hpp"

namespace shelley::core {

/// Serializes a full report: per-class verdicts, subsystem errors with
/// counterexamples, claim errors, and all diagnostics.  With
/// `include_stats`, each class additionally carries a "stats" object of
/// automata sizes and a top-level "stats" object holds the global metric
/// counters/distributions; without it the output is byte-identical to the
/// historical format.
[[nodiscard]] std::string report_to_json(const Report& report,
                                         const Verifier& verifier,
                                         bool include_stats = false);

/// Serializes one class specification (operations, exits, subsystems,
/// claims).
[[nodiscard]] std::string spec_to_json(const ClassSpec& spec);

}  // namespace shelley::core
