// JSON export of verification reports and class specifications, for
// integration with editors/CI (the CLI's --json mode).
#pragma once

#include <string>

#include "shelley/verifier.hpp"

namespace shelley::core {

/// Serializes a full report: per-class verdicts, subsystem errors with
/// counterexamples, claim errors, and all diagnostics.
[[nodiscard]] std::string report_to_json(const Report& report,
                                         const Verifier& verifier);

/// Serializes one class specification (operations, exits, subsystems,
/// claims).
[[nodiscard]] std::string spec_to_json(const ClassSpec& spec);

}  // namespace shelley::core
