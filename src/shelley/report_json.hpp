// JSON export of verification reports and class specifications, for
// integration with editors/CI (the CLI's --json mode).
#pragma once

#include <string>
#include <vector>

#include "shelley/verifier.hpp"

namespace shelley::core {

/// Outcome of loading one input file in batch mode (shelleyc with several
/// sources): how many parse errors recovery collected, or why the file
/// failed outright.
struct FileSummary {
  std::string path;
  bool loaded = false;           ///< file was read and (re)parsed
  std::size_t parse_errors = 0;  ///< error diagnostics from this file
  std::string failure;           ///< non-empty: I/O or resource failure
};

/// Serializes a full report: per-class verdicts, subsystem errors with
/// counterexamples, claim errors, and all diagnostics.  With
/// `include_stats`, each class additionally carries a "stats" object of
/// automata sizes and a top-level "stats" object holds the global metric
/// counters/distributions.  A non-null `files` adds a "files" array of
/// per-input load outcomes (batch mode).
[[nodiscard]] std::string report_to_json(
    const Report& report, const Verifier& verifier,
    bool include_stats = false,
    const std::vector<FileSummary>* files = nullptr);

/// Serializes one class specification (operations, exits, subsystems,
/// claims).
[[nodiscard]] std::string spec_to_json(const ClassSpec& spec);

}  // namespace shelley::core
