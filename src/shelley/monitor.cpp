#include "shelley/monitor.hpp"

#include "fsm/ops.hpp"
#include "shelley/automata.hpp"

namespace shelley::core {

std::string_view to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kDoomed:
      return "doomed";
    case Verdict::kViolation:
      return "violation";
  }
  return "unknown";
}

Monitor::Monitor(const ClassSpec& spec, SymbolTable& table)
    : table_(&table),
      dfa_(fsm::minimize(fsm::determinize(usage_nfa(spec, table)))),
      compiled_(fsm::CompiledDfa::compile(dfa_, table)),
      state_(compiled_.initial()) {}

Monitor::Monitor(SymbolTable& table, fsm::Dfa dfa)
    : table_(&table),
      dfa_(std::move(dfa)),
      compiled_(fsm::CompiledDfa::compile(dfa_, table)),
      state_(compiled_.initial()) {}

void Monitor::record(std::string_view operation) {
  history_.emplace_back(operation);
  // Amortized O(1) bound: let the vector run to twice the limit, then drop
  // the oldest half in one erase.  Retained size stays in [limit, 2*limit).
  if (history_limit_ != 0 && history_.size() >= history_limit_ * 2) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(history_limit_));
  }
}

Verdict Monitor::feed(std::string_view operation) {
  record(operation);
  ++events_fed_;
  if (violated_) return Verdict::kViolation;

  const auto symbol = table_->lookup(operation);
  const fsm::CompiledDfa::Letter letter =
      symbol ? compiled_.letter_of(*symbol) : fsm::CompiledDfa::kNoLetter;
  return step(letter);
}

Verdict Monitor::feed_letter(fsm::CompiledDfa::Letter letter) {
  ++events_fed_;
  if (violated_) return Verdict::kViolation;
  return step(letter);
}

Verdict Monitor::step(fsm::CompiledDfa::Letter letter) {
  if (letter == fsm::CompiledDfa::kNoLetter) {
    // Not in the class alphabet: a violation that does not move the state
    // (there is no column to follow) -- same as the legacy walk.
    violated_ = true;
    return Verdict::kViolation;
  }
  const std::uint32_t next = compiled_.step(state_, letter);
  if (!compiled_.live(next)) {
    // Entering the sink (every dead state of the source DFA folds into it):
    // undeclared sequences and stuck exits both make completion impossible,
    // so the call is a violation either way for a latching monitor.
    violated_ = true;
    state_ = next;
    return Verdict::kViolation;
  }
  state_ = next;
  return can_complete() ? Verdict::kOk : Verdict::kDoomed;
}

bool Monitor::completed() const {
  return !violated_ && compiled_.accepting(state_);
}

bool Monitor::can_complete() const {
  return !violated_ && compiled_.live(state_);
}

std::vector<std::string> Monitor::allowed_next() const {
  std::vector<std::string> out;
  if (violated_) return out;
  std::vector<fsm::CompiledDfa::Letter> letters;
  compiled_.allowed_letters(state_, letters);
  out.reserve(letters.size());
  for (const fsm::CompiledDfa::Letter letter : letters) {
    out.push_back(compiled_.event_name(letter));
  }
  return out;
}

void Monitor::allowed_next(std::vector<fsm::CompiledDfa::Letter>& out) const {
  out.clear();
  if (violated_) return;
  compiled_.allowed_letters(state_, out);
}

void Monitor::reset() {
  state_ = compiled_.initial();
  violated_ = false;
  events_fed_ = 0;
  history_.clear();
}

}  // namespace shelley::core
