#include "shelley/monitor.hpp"

#include "fsm/ops.hpp"
#include "shelley/automata.hpp"

namespace shelley::core {

std::string_view to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kDoomed:
      return "doomed";
    case Verdict::kViolation:
      return "violation";
  }
  return "unknown";
}

Monitor::Monitor(const ClassSpec& spec, SymbolTable& table)
    : table_(&table),
      dfa_(fsm::minimize(fsm::determinize(usage_nfa(spec, table)))),
      live_(fsm::live_states(dfa_)),
      state_(dfa_.initial()) {}

Monitor::Monitor(SymbolTable& table, fsm::Dfa dfa)
    : table_(&table),
      dfa_(std::move(dfa)),
      live_(fsm::live_states(dfa_)),
      state_(dfa_.initial()) {}

Verdict Monitor::feed(std::string_view operation) {
  history_.emplace_back(operation);
  if (violated_) return Verdict::kViolation;

  const auto symbol = table_->lookup(operation);
  const auto letter = symbol ? dfa_.letter_index(*symbol) : std::nullopt;
  if (!letter) {
    violated_ = true;
    return Verdict::kViolation;
  }
  const fsm::StateId next = dfa_.transition(state_, *letter);
  if (!live_[next]) {
    // Entering a dead state: distinguish "this exact call was undeclared"
    // from "allowed but now doomed".  In the usage DFA the only dead states
    // come from undeclared sequences or stuck exits; both make every
    // completion impossible, so the call is a violation either way for a
    // latching monitor.
    violated_ = true;
    state_ = next;
    return Verdict::kViolation;
  }
  state_ = next;
  return can_complete() ? Verdict::kOk : Verdict::kDoomed;
}

bool Monitor::completed() const {
  return !violated_ && dfa_.is_accepting(state_);
}

bool Monitor::can_complete() const { return !violated_ && live_[state_]; }

std::vector<std::string> Monitor::allowed_next() const {
  std::vector<std::string> out;
  if (violated_) return out;
  for (std::size_t letter = 0; letter < dfa_.alphabet().size(); ++letter) {
    const fsm::StateId next = dfa_.transition(state_, letter);
    if (live_[next]) {
      out.push_back(table_->name(dfa_.alphabet()[letter]));
    }
  }
  return out;
}

void Monitor::reset() {
  state_ = dfa_.initial();
  violated_ = false;
  history_.clear();
}

}  // namespace shelley::core
