#include "shelley/automata.hpp"

#include <algorithm>

#include "fsm/thompson.hpp"
#include "ir/lowering.hpp"
#include "rex/derivative.hpp"
#include "support/trace.hpp"

namespace shelley::core {

fsm::Nfa usage_nfa(const ClassSpec& spec, SymbolTable& table,
                   std::string_view prefix) {
  support::trace::Span span("shelley.usage_nfa");
  span.arg("class", spec.name);
  fsm::Nfa nfa;
  const fsm::StateId fresh = nfa.add_state();
  nfa.mark_initial(fresh);
  nfa.mark_accepting(fresh);  // never using the instance is valid

  // One state per exit point, one symbol per operation.
  std::map<std::string, Symbol> symbols;
  std::map<std::string, std::vector<fsm::StateId>> exit_states;
  for (const Operation& op : spec.operations) {
    symbols[op.name] = table.intern(std::string(prefix) + op.name);
    auto& states = exit_states[op.name];
    for (std::size_t i = 0; i < op.exits.size(); ++i) {
      const fsm::StateId state = nfa.add_state();
      states.push_back(state);
      if (op.final) nfa.mark_accepting(state);
    }
  }

  const auto connect = [&](fsm::StateId from, const std::string& op_name) {
    const auto it = exit_states.find(op_name);
    if (it == exit_states.end()) return;  // unresolved successor (reported
                                          // by the dependency-graph pass)
    for (fsm::StateId exit : it->second) {
      nfa.add_transition(from, symbols.at(op_name), exit);
    }
  };

  for (const Operation& op : spec.operations) {
    if (op.initial) connect(fresh, op.name);
  }
  for (const Operation& op : spec.operations) {
    for (std::size_t i = 0; i < op.exits.size(); ++i) {
      const fsm::StateId from = exit_states.at(op.name)[i];
      for (const std::string& successor : op.exits[i].successors) {
        connect(from, successor);
      }
    }
  }
  return nfa;
}

std::map<std::string, OperationBehavior> extract_behaviors(
    const ClassSpec& spec, SymbolTable& table,
    DiagnosticEngine& diagnostics) {
  support::trace::Span span("shelley.extract_behaviors");
  span.arg("class", spec.name);
  ir::LoweringContext context;
  for (const SubsystemDecl& subsystem : spec.subsystems) {
    context.tracked_fields.insert(subsystem.field);
  }
  context.symbols = &table;
  context.diagnostics = &diagnostics;

  std::map<std::string, OperationBehavior> out;
  for (const Operation& op : spec.operations) {
    support::trace::Span op_span("shelley.operation");
    op_span.arg("op", op.name);
    std::uint32_t next_return_id = 0;
    context.next_return_id = &next_return_id;
    OperationBehavior entry;
    {
      support::trace::Span lower_span("ir.lower");
      entry.program = ir::lower_block(op.body, context);
    }
    entry.behavior = ir::analyze(entry.program);
    entry.inferred = ir::infer_simplified(entry.program);
    entry.falls_off_end =
        !rex::is_empty_language(rex::simplify(entry.behavior.ongoing));
    out.emplace(op.name, std::move(entry));
  }
  return out;
}

std::vector<Symbol> SystemModel::full_alphabet() const {
  std::vector<Symbol> out = op_symbols;
  out.insert(out.end(), event_symbols.begin(), event_symbols.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SystemModel build_system_model(
    const ClassSpec& spec,
    const std::map<std::string, OperationBehavior>& behaviors,
    SymbolTable& table, DiagnosticEngine& diagnostics) {
  support::trace::Span span("shelley.build_system_model");
  span.arg("class", spec.name);
  SystemModel model;
  fsm::Nfa& nfa = model.nfa;

  const fsm::StateId fresh = nfa.add_state();
  nfa.mark_initial(fresh);
  nfa.mark_accepting(fresh);

  std::map<std::string, Symbol> op_symbols;
  std::map<std::string, fsm::StateId> entries;
  // Exit states by (operation, exit id); implicit fall-off exits keyed by
  // the operation with id = npos.
  std::map<std::string, std::map<std::size_t, fsm::StateId>> exits;
  constexpr std::size_t kImplicitExit = static_cast<std::size_t>(-1);

  std::set<Symbol> events;
  for (const Operation& op : spec.operations) {
    const Symbol symbol = table.intern(op.name);
    op_symbols[op.name] = symbol;
    model.op_symbols.push_back(symbol);

    const auto it = behaviors.find(op.name);
    if (it == behaviors.end()) continue;
    const OperationBehavior& behavior = it->second;

    const fsm::StateId entry = nfa.add_state();
    entries[op.name] = entry;

    // Route each returned behavior to its exit point's state.
    for (const ExitPoint& exit : op.exits) {
      std::vector<rex::Regex> parts;
      for (const ir::ReturnedBehavior& returned : behavior.behavior.returned) {
        if (returned.exit_id == exit.id) {
          parts.push_back(rex::simplify(returned.regex));
        }
      }
      rex::Regex combined = rex::empty();
      for (const rex::Regex& part : parts) {
        combined = rex::smart_alt(combined, part);
      }
      if (rex::is_empty_language(combined)) {
        // No execution path reaches this return (e.g. the return was
        // undecodable or dead code); the exit is unreachable.
        continue;
      }
      const fsm::StateId exit_state = nfa.add_state();
      exits[op.name][exit.id] = exit_state;
      if (op.final) nfa.mark_accepting(exit_state);
      const auto [frag_entry, frag_exit] = fsm::add_fragment(nfa, combined);
      nfa.add_epsilon(entry, frag_entry);
      nfa.add_epsilon(frag_exit, exit_state);
      for (Symbol event : rex::alphabet(combined)) events.insert(event);
    }

    // Paths that fall off the end of the method body return None and allow
    // no successor.
    if (behavior.falls_off_end) {
      const rex::Regex ongoing = rex::simplify(behavior.behavior.ongoing);
      if (!op.exits.empty()) {
        diagnostics.warning(
            op.loc, "operation '" + op.name +
                        "' can finish without executing a return statement; "
                        "such executions allow no successor operation");
      }
      const fsm::StateId exit_state = nfa.add_state();
      exits[op.name][kImplicitExit] = exit_state;
      if (op.final) nfa.mark_accepting(exit_state);
      const auto [frag_entry, frag_exit] = fsm::add_fragment(nfa, ongoing);
      nfa.add_epsilon(entry, frag_entry);
      nfa.add_epsilon(frag_exit, exit_state);
      for (Symbol event : rex::alphabet(ongoing)) events.insert(event);
    }
  }

  const auto connect = [&](fsm::StateId from, const std::string& op_name) {
    const auto entry = entries.find(op_name);
    if (entry == entries.end()) return;
    nfa.add_transition(from, op_symbols.at(op_name), entry->second);
  };

  for (const Operation& op : spec.operations) {
    if (op.initial) connect(fresh, op.name);
    const auto exit_map = exits.find(op.name);
    if (exit_map == exits.end()) continue;
    for (const ExitPoint& exit : op.exits) {
      const auto state = exit_map->second.find(exit.id);
      if (state == exit_map->second.end()) continue;
      for (const std::string& successor : exit.successors) {
        connect(state->second, successor);
      }
    }
  }

  model.event_symbols.assign(events.begin(), events.end());
  span.arg("nfa_states", static_cast<std::uint64_t>(nfa.state_count()));
  span.arg("events", static_cast<std::uint64_t>(model.event_symbols.size()));
  return model;
}

}  // namespace shelley::core
