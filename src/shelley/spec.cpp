#include "shelley/spec.hpp"

#include <algorithm>

#include "shelley/annotations.hpp"

namespace shelley::core {

const ExitPoint* Operation::exit_with_successors(
    const std::vector<std::string>& successors) const {
  for (const ExitPoint& exit : exits) {
    if (exit.successors == successors) return &exit;
  }
  return nullptr;
}

const Operation* ClassSpec::find_operation(std::string_view name) const {
  for (const Operation& op : operations) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

const SubsystemDecl* ClassSpec::find_subsystem(std::string_view field) const {
  for (const SubsystemDecl& subsystem : subsystems) {
    if (subsystem.field == field) return &subsystem;
  }
  return nullptr;
}

std::vector<std::string> ClassSpec::initial_operations() const {
  std::vector<std::string> out;
  for (const Operation& op : operations) {
    if (op.initial) out.push_back(op.name);
  }
  return out;
}

std::vector<std::string> ClassSpec::final_operations() const {
  std::vector<std::string> out;
  for (const Operation& op : operations) {
    if (op.final) out.push_back(op.name);
  }
  return out;
}

namespace {

void collect_from_stmt(const upy::StmtPtr& stmt,
                       std::vector<const upy::ReturnStmt*>& out,
                       std::vector<SourceLoc>* locations) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, upy::ReturnStmt>) {
          out.push_back(&node);
          if (locations != nullptr) locations->push_back(stmt->loc);
        } else if constexpr (std::is_same_v<T, upy::IfStmt>) {
          for (const upy::StmtPtr& s : node.then_body) {
            collect_from_stmt(s, out, locations);
          }
          for (const upy::StmtPtr& s : node.else_body) {
            collect_from_stmt(s, out, locations);
          }
        } else if constexpr (std::is_same_v<T, upy::WhileStmt> ||
                             std::is_same_v<T, upy::ForStmt>) {
          for (const upy::StmtPtr& s : node.body) {
            collect_from_stmt(s, out, locations);
          }
        } else if constexpr (std::is_same_v<T, upy::MatchStmt>) {
          for (const upy::MatchCase& match_case : node.cases) {
            for (const upy::StmtPtr& s : match_case.body) {
              collect_from_stmt(s, out, locations);
            }
          }
        } else if constexpr (std::is_same_v<T, upy::TryStmt>) {
          for (const upy::StmtPtr& s : node.body) {
            collect_from_stmt(s, out, locations);
          }
          for (const upy::Block& handler : node.handlers) {
            for (const upy::StmtPtr& s : handler) {
              collect_from_stmt(s, out, locations);
            }
          }
          for (const upy::StmtPtr& s : node.final_body) {
            collect_from_stmt(s, out, locations);
          }
        }
      },
      stmt->node);
}

/// Finds `self.<field> = ClassName(...)` bindings in __init__.
std::vector<std::pair<std::string, std::string>> constructor_bindings(
    const upy::FunctionDef& init) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const upy::StmtPtr& stmt : init.body) {
    const auto* assign = upy::as<upy::AssignStmt>(stmt);
    if (assign == nullptr) continue;
    const auto* field = upy::as<upy::AttributeExpr>(assign->target);
    if (field == nullptr) continue;
    const auto* base = upy::as<upy::NameExpr>(field->value);
    if (base == nullptr || base->id != "self") continue;
    const auto* ctor = upy::as<upy::CallExpr>(assign->value);
    if (ctor == nullptr) continue;
    const auto* class_name = upy::as<upy::NameExpr>(ctor->callee);
    if (class_name == nullptr) continue;
    out.emplace_back(field->attr, class_name->id);
  }
  return out;
}

}  // namespace

std::vector<const upy::ReturnStmt*> collect_returns(
    const upy::Block& block, std::vector<SourceLoc>* locations) {
  std::vector<const upy::ReturnStmt*> out;
  for (const upy::StmtPtr& stmt : block) {
    collect_from_stmt(stmt, out, locations);
  }
  return out;
}

ClassSpec extract_class_spec(const upy::ClassDef& cls,
                             DiagnosticEngine& diagnostics) {
  ClassSpec spec;
  spec.name = cls.name;
  spec.loc = cls.loc;

  const ClassAnnotations annotations =
      decode_class_annotations(cls, diagnostics);
  spec.is_system = annotations.is_system;
  spec.is_composite = annotations.is_composite;
  for (const auto& [text, loc] : annotations.claims) {
    spec.claims.push_back(Claim{text, loc});
  }

  // Subsystem bindings from __init__.
  const upy::FunctionDef* init = nullptr;
  for (const upy::FunctionDef& method : cls.methods) {
    if (method.name == "__init__") init = &method;
  }
  std::vector<std::pair<std::string, std::string>> bindings;
  if (init != nullptr) bindings = constructor_bindings(*init);
  for (const std::string& field : annotations.subsystem_fields) {
    const auto binding =
        std::find_if(bindings.begin(), bindings.end(),
                     [&](const auto& b) { return b.first == field; });
    if (binding == bindings.end()) {
      diagnostics.error(cls.loc,
                        "class '" + cls.name + "': subsystem field '" + field +
                            "' declared by @sys is never assigned a "
                            "constructor call in __init__");
      continue;
    }
    spec.subsystems.push_back(SubsystemDecl{
        field, binding->second, init != nullptr ? init->loc : cls.loc});
  }

  // Operations.
  for (const upy::FunctionDef& method : cls.methods) {
    if (method.name == "__init__") continue;
    const OpKind kind = decode_op_annotation(method, diagnostics);
    if (kind == OpKind::kNotAnOperation) continue;

    Operation op;
    op.name = method.name;
    op.loc = method.loc;
    op.initial = is_initial(kind);
    op.final = is_final(kind);
    op.body = method.body;

    std::vector<SourceLoc> locations;
    const auto returns = collect_returns(method.body, &locations);
    for (std::size_t i = 0; i < returns.size(); ++i) {
      const auto successors = decode_return_successors(returns[i]->value,
                                                       locations[i],
                                                       diagnostics);
      if (!successors) continue;
      // The id is the return's index in source order, matching the ids the
      // IR lowering assigns (undecodable returns keep their slot).
      op.exits.push_back(ExitPoint{i, locations[i], *successors});
    }
    if (returns.empty()) {
      diagnostics.warning(
          method.loc,
          "operation '" + method.name +
              "' has no return statement; it is treated as having a single "
              "exit that allows no successor");
      op.exits.push_back(ExitPoint{0, method.loc, {}});
    }
    spec.operations.push_back(std::move(op));
  }

  if (spec.is_system && spec.operations.empty()) {
    diagnostics.error(cls.loc, "class '" + cls.name +
                                   "' is annotated @sys but declares no "
                                   "@op* operations");
  }
  if (!spec.operations.empty() && spec.initial_operations().empty()) {
    diagnostics.error(cls.loc,
                      "class '" + cls.name +
                          "' declares operations but none is @op_initial; "
                          "no instance could ever be used");
  }
  return spec;
}

}  // namespace shelley::core
