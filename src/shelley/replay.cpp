// The cache protocol of the verifier: content-addressed keys, verdict
// capture, and byte-identical replay.  Split out of verifier.cpp so the
// pipeline (verify_spec.cpp) and the registration/driver logic
// (verifier.cpp) stay independent of the cache encoding.
#include "shelley/replay.hpp"

#include <optional>
#include <utility>

#include "shelley/fingerprint.hpp"
#include "support/guard.hpp"
#include "support/trace.hpp"

namespace shelley::core {

support::Digest128 Verifier::cache_key(const ClassSpec& spec) const {
  FingerprintOptions options;
  options.dfa_state_budget = lint_options_.dfa_state_budget;
  options.max_states = support::guard::limits().max_states;
  options.ltlf_engine = static_cast<std::uint64_t>(check_options_.ltlf_engine);
  options.lint_claims = check_options_.lint_claims ? 1 : 0;
  return class_key(spec, lookup(), options);
}

CachedVerdict capture_verdict(const ClassReport& report,
                              const DiagnosticEngine& sink,
                              std::size_t diags_begin,
                              const SymbolTable& table) {
  CachedVerdict verdict;
  verdict.class_name = report.class_name;
  verdict.is_composite = report.is_composite;
  verdict.invocation_errors = report.invocation_errors;
  verdict.lint_findings = report.lint_findings;
  for (const SubsystemError& error : report.check.subsystem_errors) {
    CachedSubsystemError cached_error;
    cached_error.field = error.field;
    cached_error.class_name = error.class_name;
    for (const Symbol symbol : error.counterexample) {
      cached_error.counterexample.push_back(table.name(symbol));
    }
    cached_error.detail = error.detail;
    verdict.subsystem_errors.push_back(std::move(cached_error));
  }
  for (const ClaimError& error : report.check.claim_errors) {
    CachedClaimError cached_error;
    cached_error.formula = error.formula;
    for (const Symbol symbol : error.counterexample) {
      cached_error.counterexample.push_back(table.name(symbol));
    }
    verdict.claim_errors.push_back(std::move(cached_error));
  }
  const auto& diags = sink.diagnostics();
  for (std::size_t i = diags_begin; i < diags.size(); ++i) {
    verdict.diagnostics.push_back(CachedDiagnostic{
        static_cast<std::uint8_t>(diags[i].severity), diags[i].loc.line,
        diags[i].loc.column, diags[i].message});
  }
  return verdict;
}

ClassReport Verifier::replay_verdict(const ClassSpec& spec,
                                     CachedVerdict verdict,
                                     DiagnosticEngine& sink) {
  // Intern everything the real verification would intern, in the same
  // order, so downstream (missing) classes see identical symbol ids and
  // produce byte-identical witnesses.  Every counterexample symbol below
  // is part of that warmed set.
  warm_symbols(spec);
  ClassReport report;
  report.class_name = spec.name;
  report.is_composite = verdict.is_composite;
  report.invocation_errors = verdict.invocation_errors;
  report.lint_findings = verdict.lint_findings;
  for (CachedSubsystemError& error : verdict.subsystem_errors) {
    report.check.subsystem_errors.push_back(SubsystemError{
        std::move(error.field), std::move(error.class_name),
        intern_word(error.counterexample, table_), std::move(error.detail)});
  }
  for (CachedClaimError& error : verdict.claim_errors) {
    report.check.claim_errors.push_back(ClaimError{
        std::move(error.formula),
        intern_word(error.counterexample, table_)});
  }
  for (CachedDiagnostic& diag : verdict.diagnostics) {
    sink.report(static_cast<Severity>(diag.severity),
                SourceLoc{diag.line, diag.column}, std::move(diag.message));
  }
  return report;
}

ClassReport Verifier::verify_or_replay(const ClassSpec& spec,
                                       DiagnosticEngine& sink) {
  if (cache_ == nullptr) return verify_spec(spec, sink);

  const support::Digest128 key = cache_key(spec);
  std::optional<CachedVerdict> cached = cache_->load_verdict(key);
  // The key embeds the class name, so a mismatch means a colliding or
  // tampered entry: discard it rather than replaying a foreign verdict.
  if (cached && cached->class_name != spec.name) cached.reset();
  if (cached) {
    if (support::trace::enabled()) {
      support::trace::instant("cache.hit/" + spec.name);
    }
    return replay_verdict(spec, *std::move(cached), sink);
  }

  // Miss: verify into a private sink so exactly this class's diagnostics
  // can be stored alongside the verdict, then merge them back (appending
  // preserves the serial order).
  DiagnosticEngine local;
  ClassReport report = verify_spec(spec, local);
  sink.append(local);
  if (report.resource_errors > 0) return report;  // aborted, not a result
  cache_->store_verdict(key, capture_verdict(report, local, 0, table_));
  return report;
}

}  // namespace shelley::core
