#include "shelley/annotations.hpp"

namespace shelley::core {
namespace {

/// Extracts the strings of a literal list expression `["a", "b"]`;
/// nullopt when the expression has a different shape.
std::optional<std::vector<std::string>> string_list(const upy::ExprPtr& expr) {
  const auto* list = upy::as<upy::ListExpr>(expr);
  if (list == nullptr) return std::nullopt;
  std::vector<std::string> out;
  for (const upy::ExprPtr& element : list->elements) {
    const auto* text = upy::as<upy::StringExpr>(element);
    if (text == nullptr) return std::nullopt;
    out.push_back(text->value);
  }
  return out;
}

}  // namespace

bool is_initial(OpKind kind) {
  return kind == OpKind::kInitial || kind == OpKind::kInitialFinal;
}

bool is_final(OpKind kind) {
  return kind == OpKind::kFinal || kind == OpKind::kInitialFinal;
}

ClassAnnotations decode_class_annotations(const upy::ClassDef& cls,
                                          DiagnosticEngine& diagnostics) {
  ClassAnnotations out;
  for (const upy::Decorator& decorator : cls.decorators) {
    if (decorator.name == "sys") {
      out.is_system = true;
      if (!decorator.has_call) continue;
      if (decorator.args.size() != 1) {
        diagnostics.error(decorator.loc,
                          "@sys takes exactly one argument: a list of "
                          "subsystem field names");
        continue;
      }
      const auto fields = string_list(decorator.args.front());
      if (!fields) {
        diagnostics.error(decorator.loc,
                          "@sys argument must be a list of string literals, "
                          "e.g. @sys([\"a\", \"b\"])");
        continue;
      }
      out.is_composite = true;
      out.subsystem_fields = *fields;
    } else if (decorator.name == "claim") {
      if (!decorator.has_call || decorator.args.size() != 1 ||
          upy::as<upy::StringExpr>(decorator.args.front()) == nullptr) {
        diagnostics.error(decorator.loc,
                          "@claim takes exactly one string argument holding "
                          "an LTLf formula");
        continue;
      }
      out.claims.emplace_back(
          upy::as<upy::StringExpr>(decorator.args.front())->value,
          decorator.loc);
    } else {
      diagnostics.warning(decorator.loc, "unknown class decorator '@" +
                                             decorator.name +
                                             "' is ignored by the analysis");
    }
  }
  return out;
}

OpKind decode_op_annotation(const upy::FunctionDef& method,
                            DiagnosticEngine& diagnostics) {
  OpKind kind = OpKind::kNotAnOperation;
  for (const upy::Decorator& decorator : method.decorators) {
    OpKind found = OpKind::kNotAnOperation;
    if (decorator.name == "op") {
      found = OpKind::kOperation;
    } else if (decorator.name == "op_initial") {
      found = OpKind::kInitial;
    } else if (decorator.name == "op_final") {
      found = OpKind::kFinal;
    } else if (decorator.name == "op_initial_final") {
      found = OpKind::kInitialFinal;
    } else {
      diagnostics.warning(decorator.loc, "unknown method decorator '@" +
                                             decorator.name +
                                             "' is ignored by the analysis");
      continue;
    }
    if (kind != OpKind::kNotAnOperation) {
      diagnostics.error(decorator.loc,
                        "method '" + method.name +
                            "' carries more than one @op* decorator");
    }
    kind = found;
  }
  return kind;
}

std::optional<std::vector<std::string>> decode_return_successors(
    const upy::ExprPtr& value, SourceLoc loc, DiagnosticEngine& diagnostics) {
  if (!value) {
    diagnostics.error(loc,
                      "operations must return their successor list, e.g. "
                      "return [\"close\"] -- bare return is not allowed");
    return std::nullopt;
  }
  // Tuple form: `return ["m"], value` -- the first element carries the
  // successors, the rest is the user's return value (ignored).
  upy::ExprPtr successor_expr = value;
  if (const auto* tuple = upy::as<upy::TupleExpr>(value)) {
    if (tuple->elements.empty()) {
      diagnostics.error(loc, "a returned tuple must start with the "
                             "successor list");
      return std::nullopt;
    }
    successor_expr = tuple->elements.front();
  }
  const auto successors = string_list(successor_expr);
  if (!successors) {
    diagnostics.error(
        loc,
        "cannot decode the successor list of this return statement; "
        "expected return [\"m1\", ...] or return [\"m1\", ...], value");
    return std::nullopt;
  }
  return successors;
}

}  // namespace shelley::core
