// Deterministic random generation of IR programs, used to mechanize
// Theorems 1/2 as property sweeps and to drive the scaling benchmarks.
#pragma once

#include <cstdint>
#include <random>

#include "ir/program.hpp"
#include "support/symbol.hpp"

namespace shelley::ir {

struct GeneratorOptions {
  /// Maximum tree depth.
  std::size_t max_depth = 5;
  /// Number of distinct callable symbols (named f0, f1, ...).
  std::size_t alphabet_size = 3;
  /// Relative weights of each production at interior nodes.
  unsigned call_weight = 4;
  unsigned skip_weight = 1;
  unsigned return_weight = 1;
  unsigned seq_weight = 4;
  unsigned if_weight = 2;
  unsigned loop_weight = 2;
};

class ProgramGenerator {
 public:
  ProgramGenerator(std::uint64_t seed, GeneratorOptions options,
                   SymbolTable& table);

  /// Generates one random program.
  [[nodiscard]] Program next();

 private:
  [[nodiscard]] Program generate(std::size_t depth);

  std::mt19937_64 rng_;
  GeneratorOptions options_;
  std::vector<Symbol> symbols_;
};

}  // namespace shelley::ir
