#include "ir/lowering.hpp"

#include <cassert>

#include "support/guard.hpp"

namespace shelley::ir {
namespace {

using upy::AttributeExpr;
using upy::CallExpr;
using upy::NameExpr;

void collect_events(const upy::ExprPtr& expr, const LoweringContext& context,
                    std::vector<Symbol>& out);

void collect_from_list(const std::vector<upy::ExprPtr>& items,
                       const LoweringContext& context,
                       std::vector<Symbol>& out) {
  for (const upy::ExprPtr& item : items) collect_events(item, context, out);
}

void collect_events(const upy::ExprPtr& expr, const LoweringContext& context,
                    std::vector<Symbol>& out) {
  if (!expr) return;
  support::guard::DepthGuard depth(expr->loc);
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, CallExpr>) {
          // Python evaluates the callee, then arguments, then performs the
          // call -- the call's own event therefore comes last.
          collect_events(node.callee, context, out);
          collect_from_list(node.args, context, out);
          if (const auto event =
                  tracked_call_event(expr, context)) {
            out.push_back(*event);
          }
        } else if constexpr (std::is_same_v<T, AttributeExpr>) {
          collect_events(node.value, context, out);
        } else if constexpr (std::is_same_v<T, upy::ListExpr> ||
                             std::is_same_v<T, upy::TupleExpr>) {
          collect_from_list(node.elements, context, out);
        } else if constexpr (std::is_same_v<T, upy::UnaryExpr>) {
          collect_events(node.operand, context, out);
        } else if constexpr (std::is_same_v<T, upy::BinaryExpr>) {
          collect_events(node.left, context, out);
          collect_events(node.right, context, out);
        } else if constexpr (std::is_same_v<T, upy::SubscriptExpr>) {
          collect_events(node.value, context, out);
          collect_events(node.index, context, out);
        }
        // Names and literals produce no events.
      },
      expr->node);
}

/// Events of an expression as a program fragment (skip when none).
Program events_program(const upy::ExprPtr& expr,
                       const LoweringContext& context) {
  std::vector<Symbol> events;
  collect_events(expr, context, events);
  if (events.empty()) return skip();
  std::vector<Program> calls;
  calls.reserve(events.size());
  for (Symbol event : events) calls.push_back(call(event));
  return seq_of(calls);
}

Program lower_stmt(const upy::StmtPtr& stmt, const LoweringContext& context);

Program lower_body(const upy::Block& block, const LoweringContext& context) {
  std::vector<Program> parts;
  for (const upy::StmtPtr& stmt : block) {
    Program p = lower_stmt(stmt, context);
    // Drop skips between statements to keep programs small; an empty
    // sequence still lowers to a single skip below.
    if (p->kind() == Kind::kSkip) continue;
    parts.push_back(std::move(p));
  }
  return seq_of(parts);
}

/// Folds match cases / if-chains into nested if(★) nodes.
Program fold_branches(std::vector<Program> branches) {
  assert(!branches.empty());
  Program out = branches.back();
  for (std::size_t i = branches.size() - 1; i-- > 0;) {
    out = branch(branches[i], std::move(out));
  }
  return out;
}

Program lower_stmt(const upy::StmtPtr& stmt, const LoweringContext& context) {
  support::guard::DepthGuard depth(stmt->loc);
  return std::visit(
      [&](const auto& node) -> Program {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, upy::ExprStmt>) {
          return events_program(node.value, context);
        } else if constexpr (std::is_same_v<T, upy::AssignStmt>) {
          // Right-hand side first (Python's evaluation order), then any
          // events hidden in a subscripted target.
          Program value = events_program(node.value, context);
          Program target = events_program(node.target, context);
          if (target->kind() == Kind::kSkip) return value;
          return seq(std::move(value), std::move(target));
        } else if constexpr (std::is_same_v<T, upy::ReturnStmt>) {
          Program value = node.value ? events_program(node.value, context)
                                     : skip();
          Program ret_node = context.next_return_id != nullptr
                                 ? ret_with_id((*context.next_return_id)++)
                                 : ret();
          if (value->kind() == Kind::kSkip) return ret_node;
          return seq(std::move(value), std::move(ret_node));
        } else if constexpr (std::is_same_v<T, upy::PassStmt>) {
          return skip();
        } else if constexpr (std::is_same_v<T, upy::BreakStmt> ||
                             std::is_same_v<T, upy::ContinueStmt>) {
          if (context.diagnostics != nullptr) {
            context.diagnostics->error(
                stmt->loc,
                "break/continue are outside the analyzable subset "
                "(the loop abstraction loop(\xE2\x98\x85) cannot express "
                "them)");
          }
          return skip();
        } else if constexpr (std::is_same_v<T, upy::IfStmt>) {
          Program condition = events_program(node.condition, context);
          Program then_p = lower_body(node.then_body, context);
          Program else_p = lower_body(node.else_body, context);
          Program branched = branch(std::move(then_p), std::move(else_p));
          if (condition->kind() == Kind::kSkip) return branched;
          return seq(std::move(condition), std::move(branched));
        } else if constexpr (std::is_same_v<T, upy::WhileStmt>) {
          Program condition = events_program(node.condition, context);
          Program body = lower_body(node.body, context);
          if (condition->kind() == Kind::kSkip) return loop(std::move(body));
          // The condition is evaluated before every iteration and once more
          // on exit: cond; loop(★){ body; cond }.
          Program iteration = seq(std::move(body), condition);
          return seq(condition, loop(std::move(iteration)));
        } else if constexpr (std::is_same_v<T, upy::ForStmt>) {
          Program iterable = events_program(node.iterable, context);
          Program body = loop(lower_body(node.body, context));
          if (iterable->kind() == Kind::kSkip) return body;
          return seq(std::move(iterable), std::move(body));
        } else if constexpr (std::is_same_v<T, upy::TryStmt>) {
          if (context.diagnostics != nullptr) {
            context.diagnostics->error(
                stmt->loc,
                "try/except is outside the analyzable subset (the paper's "
                "analysis does not model Python exceptions)");
          }
          // Best effort: analyze the protected body so later diagnostics
          // still fire.  Handlers and the finally block are lowered too --
          // and discarded -- purely to keep the return-id counter aligned
          // with the spec extraction's source-order numbering.
          Program body = lower_body(node.body, context);
          for (const upy::Block& handler : node.handlers) {
            (void)lower_body(handler, context);
          }
          (void)lower_body(node.final_body, context);
          return body;
        } else if constexpr (std::is_same_v<T, upy::RaiseStmt>) {
          if (context.diagnostics != nullptr) {
            context.diagnostics->error(
                stmt->loc,
                "raise is outside the analyzable subset (the paper's "
                "analysis does not model Python exceptions)");
          }
          return skip();
        } else if constexpr (std::is_same_v<T, upy::MatchStmt>) {
          Program subject = events_program(node.subject, context);
          std::vector<Program> branches;
          branches.reserve(node.cases.size());
          for (const upy::MatchCase& match_case : node.cases) {
            branches.push_back(lower_body(match_case.body, context));
          }
          Program branched = branches.size() == 1
                                 ? std::move(branches.front())
                                 : fold_branches(std::move(branches));
          if (subject->kind() == Kind::kSkip) return branched;
          return seq(std::move(subject), std::move(branched));
        } else {
          return skip();
        }
      },
      stmt->node);
}

}  // namespace

std::optional<Symbol> tracked_call_event(const upy::ExprPtr& expr,
                                         const LoweringContext& context) {
  const auto* call_node = upy::as<CallExpr>(expr);
  if (call_node == nullptr) return std::nullopt;
  const auto* method = upy::as<AttributeExpr>(call_node->callee);
  if (method == nullptr) return std::nullopt;
  const auto* field = upy::as<AttributeExpr>(method->value);
  if (field == nullptr) return std::nullopt;
  const auto* base = upy::as<NameExpr>(field->value);
  if (base == nullptr || base->id != "self") return std::nullopt;
  if (!context.tracked_fields.contains(field->attr)) return std::nullopt;
  assert(context.symbols != nullptr);
  return context.symbols->intern(field->attr + "." + method->attr);
}

std::vector<Symbol> events_in_expr(const upy::ExprPtr& expr,
                                   const LoweringContext& context) {
  std::vector<Symbol> out;
  collect_events(expr, context, out);
  return out;
}

Program lower_block(const upy::Block& block, const LoweringContext& context) {
  return lower_body(block, context);
}

}  // namespace shelley::ir
