// Lowering MicroPython method bodies to the IR (§3.2 "Supported Python
// constructs"):
//
//   * `self.<field>.<method>(...)` where <field> is a tracked subsystem
//     becomes the event  <field>.<method>()  -- arguments are walked for
//     nested tracked calls but their values are discarded;
//   * `if`/`elif`/`else` and `match`/`case` become if(★);
//   * `while` and `for` become loop(★);
//   * `return` becomes return (the returned value is handled separately by
//     the specification extraction);
//   * every other statement becomes skip;
//   * Python exceptions are not modeled; `break`/`continue` are outside the
//     subset and reported as errors.
#pragma once

#include <set>
#include <string>

#include "ir/program.hpp"
#include "support/diagnostics.hpp"
#include "support/symbol.hpp"
#include "upy/ast.hpp"

namespace shelley::ir {

struct LoweringContext {
  /// Names of `self.<field>` receivers whose calls are events.
  std::set<std::string> tracked_fields;
  SymbolTable* symbols = nullptr;
  DiagnosticEngine* diagnostics = nullptr;  // optional
  /// When set, each lowered return is tagged with *next_return_id, which is
  /// then incremented.  Returns are visited in source order, so the assigned
  /// ids line up with core::ExitPoint ids.
  std::uint32_t* next_return_id = nullptr;
};

/// Lowers a method body.  Always returns a well-formed program; unsupported
/// constructs lower to skip after reporting a diagnostic.
[[nodiscard]] Program lower_block(const upy::Block& block,
                                  const LoweringContext& context);

/// Collects the events produced by evaluating `expr`, in evaluation order
/// (arguments before the call itself).
[[nodiscard]] std::vector<Symbol> events_in_expr(
    const upy::ExprPtr& expr, const LoweringContext& context);

/// If `expr` is a tracked call `self.x.m(...)`, returns its event symbol.
[[nodiscard]] std::optional<Symbol> tracked_call_event(
    const upy::ExprPtr& expr, const LoweringContext& context);

}  // namespace shelley::ir
