// The trace semantics of Figure 4:  s ⊢ l ∈ p, with status s either
// ongoing (0) or returned (R).
//
// Two executable forms are provided:
//
//  * `derives(p, l, s)` -- an exact decision procedure for the judgment,
//    by structural recursion with memoized word spans.  This is the
//    reference oracle used to mechanize Theorems 1 and 2 as tests.
//
//  * `enumerate_traces(p, ...)` -- bounded forward enumeration of all
//    derivable (trace, status) pairs, with loops unrolled up to a bound.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "support/symbol.hpp"

namespace shelley::ir {

enum class Status : std::uint8_t {
  kOngoing,   // 0 in the paper
  kReturned,  // R in the paper
};

struct Trace {
  Word word;
  Status status = Status::kOngoing;

  friend bool operator==(const Trace&, const Trace&) = default;
  friend auto operator<=>(const Trace&, const Trace&) = default;
};

/// Exact decision of  s ⊢ l ∈ p  (no bounds; terminates for every input).
[[nodiscard]] bool derives(const Program& p, const Word& word, Status status);

/// True iff l ∈ L(p) = { l | ∃s. s ⊢ l ∈ p }  (Definition 1).
[[nodiscard]] bool in_language(const Program& p, const Word& word);

struct EnumerationLimits {
  std::size_t max_length = 8;      // drop traces longer than this
  std::size_t max_loop_unroll = 4; // iterate each loop at most this often
};

/// All (trace, status) pairs derivable within the limits, sorted and
/// duplicate-free.  For loop-free programs with max_length >= p->size()
/// this is the complete trace set.
[[nodiscard]] std::vector<Trace> enumerate_traces(const Program& p,
                                                  EnumerationLimits limits);

}  // namespace shelley::ir
