#include "ir/inference.hpp"

#include "rex/derivative.hpp"
#include "support/trace.hpp"

namespace shelley::ir {
namespace {

/// Inserts `r` unless an entry with equal structure and exit id is already
/// present, modelling set union while keeping deterministic order.
void insert_unique(std::vector<ReturnedBehavior>& set, ReturnedBehavior r) {
  for (const ReturnedBehavior& existing : set) {
    if (existing.exit_id == r.exit_id &&
        rex::structurally_equal(existing.regex, r.regex)) {
      return;
    }
  }
  set.push_back(std::move(r));
}

}  // namespace

Behavior analyze(const Program& p) {
  switch (p->kind()) {
    case Kind::kCall:
      return {rex::symbol(p->symbol()), {}};
    case Kind::kSkip:
      return {rex::epsilon(), {}};
    case Kind::kReturn:
      return {rex::empty(), {{rex::epsilon(), p->exit_id()}}};
    case Kind::kSeq: {
      const Behavior b1 = analyze(p->left());
      const Behavior b2 = analyze(p->right());
      Behavior out;
      out.ongoing = rex::concat(b1.ongoing, b2.ongoing);
      for (const ReturnedBehavior& r : b2.returned) {
        insert_unique(out.returned,
                      {rex::concat(b1.ongoing, r.regex), r.exit_id});
      }
      for (const ReturnedBehavior& r : b1.returned) {
        insert_unique(out.returned, r);
      }
      return out;
    }
    case Kind::kIf: {
      const Behavior b1 = analyze(p->left());
      const Behavior b2 = analyze(p->right());
      Behavior out;
      out.ongoing = rex::alt(b1.ongoing, b2.ongoing);
      for (const ReturnedBehavior& r : b1.returned) {
        insert_unique(out.returned, r);
      }
      for (const ReturnedBehavior& r : b2.returned) {
        insert_unique(out.returned, r);
      }
      return out;
    }
    case Kind::kLoop: {
      const Behavior b1 = analyze(p->left());
      Behavior out;
      out.ongoing = rex::star(b1.ongoing);
      for (const ReturnedBehavior& r : b1.returned) {
        insert_unique(out.returned,
                      {rex::concat(out.ongoing, r.regex), r.exit_id});
      }
      return out;
    }
  }
  return {rex::empty(), {}};
}

rex::Regex infer(const Program& p) {
  const Behavior behavior = analyze(p);
  rex::Regex out = behavior.ongoing;
  for (const ReturnedBehavior& r : behavior.returned) {
    out = rex::alt(std::move(out), r.regex);
  }
  return out;
}

rex::Regex infer_simplified(const Program& p) {
  support::trace::Span span("ir.infer");
  rex::Regex out = rex::simplify(infer(p));
  span.arg("regex_nodes", static_cast<std::uint64_t>(out->size()));
  return out;
}

}  // namespace shelley::ir
