#include "ir/generator.hpp"

namespace shelley::ir {

ProgramGenerator::ProgramGenerator(std::uint64_t seed,
                                   GeneratorOptions options,
                                   SymbolTable& table)
    : rng_(seed), options_(options) {
  symbols_.reserve(options_.alphabet_size);
  for (std::size_t i = 0; i < options_.alphabet_size; ++i) {
    symbols_.push_back(table.intern("f" + std::to_string(i)));
  }
}

Program ProgramGenerator::next() { return generate(options_.max_depth); }

Program ProgramGenerator::generate(std::size_t depth) {
  const GeneratorOptions& o = options_;
  // At depth 0 only leaves are available.
  const unsigned leaf_total = o.call_weight + o.skip_weight + o.return_weight;
  const unsigned total =
      depth == 0 ? leaf_total
                 : leaf_total + o.seq_weight + o.if_weight + o.loop_weight;
  std::uniform_int_distribution<unsigned> dist(0, total - 1);
  unsigned pick = dist(rng_);

  if (pick < o.call_weight) {
    std::uniform_int_distribution<std::size_t> sym(0, symbols_.size() - 1);
    return call(symbols_[sym(rng_)]);
  }
  pick -= o.call_weight;
  if (pick < o.skip_weight) return skip();
  pick -= o.skip_weight;
  if (pick < o.return_weight) return ret();
  pick -= o.return_weight;
  if (pick < o.seq_weight) {
    return seq(generate(depth - 1), generate(depth - 1));
  }
  pick -= o.seq_weight;
  if (pick < o.if_weight) {
    return branch(generate(depth - 1), generate(depth - 1));
  }
  return loop(generate(depth - 1));
}

}  // namespace shelley::ir
