#include "ir/program.hpp"

#include <functional>
#include <cassert>

namespace shelley::ir {

Node::Node(Kind kind, Symbol sym, Program left, Program right,
           std::uint32_t exit_id)
    : kind_(kind),
      sym_(sym),
      left_(std::move(left)),
      right_(std::move(right)),
      exit_id_(exit_id) {
  size_ = 1;
  if (left_) size_ += left_->size();
  if (right_) size_ += right_->size();
}

Program call(Symbol f) {
  assert(f.valid());
  return std::make_shared<const Node>(Kind::kCall, f, nullptr, nullptr);
}

Program skip() {
  static const Program instance =
      std::make_shared<const Node>(Kind::kSkip, Symbol{}, nullptr, nullptr);
  return instance;
}

Program ret() {
  static const Program instance =
      std::make_shared<const Node>(Kind::kReturn, Symbol{}, nullptr, nullptr);
  return instance;
}

Program ret_with_id(std::uint32_t exit_id) {
  return std::make_shared<const Node>(Kind::kReturn, Symbol{}, nullptr,
                                      nullptr, exit_id);
}

Program seq(Program a, Program b) {
  assert(a && b);
  return std::make_shared<const Node>(Kind::kSeq, Symbol{}, std::move(a),
                                      std::move(b));
}

Program branch(Program then_program, Program else_program) {
  assert(then_program && else_program);
  return std::make_shared<const Node>(Kind::kIf, Symbol{},
                                      std::move(then_program),
                                      std::move(else_program));
}

Program loop(Program body) {
  assert(body);
  return std::make_shared<const Node>(Kind::kLoop, Symbol{}, std::move(body),
                                      nullptr);
}

Program seq_of(const std::vector<Program>& programs) {
  if (programs.empty()) return skip();
  Program out = programs.back();
  for (std::size_t i = programs.size() - 1; i-- > 0;) {
    out = seq(programs[i], std::move(out));
  }
  return out;
}

std::set<Symbol> alphabet(const Program& p) {
  std::set<Symbol> out;
  const std::function<void(const Program&)> walk = [&](const Program& node) {
    if (!node) return;
    if (node->kind() == Kind::kCall) out.insert(node->symbol());
    walk(node->left());
    walk(node->right());
  };
  walk(p);
  return out;
}

bool structurally_equal(const Program& a, const Program& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case Kind::kSkip:
    case Kind::kReturn:
      return true;
    case Kind::kCall:
      return a->symbol() == b->symbol();
    case Kind::kLoop:
      return structurally_equal(a->left(), b->left());
    case Kind::kSeq:
    case Kind::kIf:
      return structurally_equal(a->left(), b->left()) &&
             structurally_equal(a->right(), b->right());
  }
  return false;
}

namespace {

void render(const Program& p, const SymbolTable& table, std::string& out) {
  switch (p->kind()) {
    case Kind::kCall:
      out += table.name(p->symbol());
      out += "()";
      break;
    case Kind::kSkip:
      out += "skip";
      break;
    case Kind::kReturn:
      out += "return";
      break;
    case Kind::kSeq:
      render(p->left(), table, out);
      out += "; ";
      render(p->right(), table, out);
      break;
    case Kind::kIf:
      out += "if(★){ ";
      render(p->left(), table, out);
      out += " } else { ";
      render(p->right(), table, out);
      out += " }";
      break;
    case Kind::kLoop:
      out += "loop(★){ ";
      render(p->left(), table, out);
      out += " }";
      break;
  }
}

}  // namespace

std::string to_string(const Program& p, const SymbolTable& table) {
  std::string out;
  render(p, table, out);
  return out;
}

}  // namespace shelley::ir
