#include "ir/semantics.hpp"

#include <map>
#include <set>
#include <span>
#include <tuple>

namespace shelley::ir {
namespace {

// Memoized decision of  s ⊢ word[begin..end) ∈ p.
//
// Rule coverage (Figure 4):
//   CALL / SKIP / RETURN  -- leaves.
//   SEQ-1: R ⊢ l ∈ p1             => R ⊢ l ∈ p1;p2
//   SEQ-2: 0 ⊢ l1 ∈ p1, s ⊢ l2 ∈ p2 => s ⊢ l1·l2 ∈ p1;p2
//   IF-1 / IF-2                   -- either branch.
//   LOOP-1: 0 ⊢ [] ∈ loop
//   LOOP-2: R ⊢ l ∈ p             => R ⊢ l ∈ loop
//   LOOP-3: 0 ⊢ l1 ∈ p, s ⊢ l2 ∈ loop => s ⊢ l1·l2 ∈ loop
//
// For LOOP-3 we only need splits with non-empty l1: an empty l1 makes the
// conclusion identical to the second premise, so it derives nothing new;
// this restriction is what makes the recursion well-founded (the suffix
// strictly shrinks on every loop re-entry).
class Decider {
 public:
  Decider(const Word& word) : word_(word) {}

  bool decide(const Node* p, std::size_t begin, std::size_t end,
              Status status) {
    const Key key{p, begin, end, status};
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
    const bool result = compute(p, begin, end, status);
    memo_.emplace(key, result);
    return result;
  }

 private:
  using Key = std::tuple<const Node*, std::size_t, std::size_t, Status>;

  bool compute(const Node* p, std::size_t begin, std::size_t end,
               Status status) {
    const std::size_t len = end - begin;
    switch (p->kind()) {
      case Kind::kCall:
        return status == Status::kOngoing && len == 1 &&
               word_[begin] == p->symbol();
      case Kind::kSkip:
        return status == Status::kOngoing && len == 0;
      case Kind::kReturn:
        return status == Status::kReturned && len == 0;
      case Kind::kSeq: {
        // SEQ-1
        if (status == Status::kReturned &&
            decide(p->left().get(), begin, end, Status::kReturned)) {
          return true;
        }
        // SEQ-2: all splits, including empty halves.
        for (std::size_t mid = begin; mid <= end; ++mid) {
          if (decide(p->left().get(), begin, mid, Status::kOngoing) &&
              decide(p->right().get(), mid, end, status)) {
            return true;
          }
        }
        return false;
      }
      case Kind::kIf:
        return decide(p->left().get(), begin, end, status) ||
               decide(p->right().get(), begin, end, status);
      case Kind::kLoop: {
        // LOOP-1
        if (status == Status::kOngoing && len == 0) return true;
        // LOOP-2
        if (status == Status::kReturned &&
            decide(p->left().get(), begin, end, Status::kReturned)) {
          return true;
        }
        // LOOP-3 with non-empty first iteration.
        for (std::size_t mid = begin + 1; mid <= end; ++mid) {
          if (decide(p->left().get(), begin, mid, Status::kOngoing) &&
              decide(p, mid, end, status)) {
            return true;
          }
        }
        return false;
      }
    }
    return false;
  }

  const Word& word_;
  std::map<Key, bool> memo_;
};

}  // namespace

bool derives(const Program& p, const Word& word, Status status) {
  Decider decider(word);
  return decider.decide(p.get(), 0, word.size(), status);
}

bool in_language(const Program& p, const Word& word) {
  Decider decider(word);
  return decider.decide(p.get(), 0, word.size(), Status::kOngoing) ||
         decider.decide(p.get(), 0, word.size(), Status::kReturned);
}

namespace {

using TraceSet = std::set<Trace>;

Word concat_words(const Word& a, const Word& b) {
  Word out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

TraceSet enumerate(const Node* p, const EnumerationLimits& limits) {
  switch (p->kind()) {
    case Kind::kCall:
      if (limits.max_length == 0) return {};
      return {Trace{{p->symbol()}, Status::kOngoing}};
    case Kind::kSkip:
      return {Trace{{}, Status::kOngoing}};
    case Kind::kReturn:
      return {Trace{{}, Status::kReturned}};
    case Kind::kSeq: {
      const TraceSet lhs = enumerate(p->left().get(), limits);
      const TraceSet rhs = enumerate(p->right().get(), limits);
      TraceSet out;
      for (const Trace& t1 : lhs) {
        if (t1.status == Status::kReturned) {
          out.insert(t1);  // SEQ-1
          continue;
        }
        for (const Trace& t2 : rhs) {  // SEQ-2
          if (t1.word.size() + t2.word.size() > limits.max_length) continue;
          out.insert(Trace{concat_words(t1.word, t2.word), t2.status});
        }
      }
      return out;
    }
    case Kind::kIf: {
      TraceSet out = enumerate(p->left().get(), limits);
      const TraceSet rhs = enumerate(p->right().get(), limits);
      out.insert(rhs.begin(), rhs.end());
      return out;
    }
    case Kind::kLoop: {
      const TraceSet body = enumerate(p->left().get(), limits);
      // Seed: LOOP-1 plus LOOP-2 (body traces that return).
      TraceSet out{Trace{{}, Status::kOngoing}};
      for (const Trace& t : body) {
        if (t.status == Status::kReturned) out.insert(t);
      }
      // LOOP-3: prepend up to max_loop_unroll ongoing body iterations.
      TraceSet frontier = out;
      for (std::size_t round = 0; round < limits.max_loop_unroll; ++round) {
        TraceSet next;
        for (const Trace& t1 : body) {
          if (t1.status != Status::kOngoing) continue;
          for (const Trace& t2 : frontier) {
            if (t1.word.size() + t2.word.size() > limits.max_length) continue;
            Trace combined{concat_words(t1.word, t2.word), t2.status};
            if (!out.contains(combined)) next.insert(std::move(combined));
          }
        }
        if (next.empty()) break;
        out.insert(next.begin(), next.end());
        frontier = std::move(next);
      }
      return out;
    }
  }
  return {};
}

}  // namespace

std::vector<Trace> enumerate_traces(const Program& p,
                                    EnumerationLimits limits) {
  const TraceSet traces = enumerate(p.get(), limits);
  return {traces.begin(), traces.end()};
}

}  // namespace shelley::ir
