// The paper's source calculus (§3.2, Figure 4):
//
//   p ::= f() | skip | return | p ; p | if(★){p} else {p} | loop(★){p}
//
// Programs are immutable shared trees.  `f` ranges over interned event
// symbols (qualified method calls such as "a.open").
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "support/symbol.hpp"

namespace shelley::ir {

enum class Kind : std::uint8_t {
  kCall,    // f()
  kSkip,    // skip
  kReturn,  // return
  kSeq,     // p1 ; p2
  kIf,      // if(★){p1} else {p2}
  kLoop,    // loop(★){p}
};

class Node;
using Program = std::shared_ptr<const Node>;

class Node {
 public:
  Node(Kind kind, Symbol sym, Program left, Program right,
       std::uint32_t exit_id = 0);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] Symbol symbol() const { return sym_; }
  [[nodiscard]] const Program& left() const { return left_; }
  [[nodiscard]] const Program& right() const { return right_; }
  /// Node count of the subtree.
  [[nodiscard]] std::size_t size() const { return size_; }
  /// For kReturn: which source-level exit point this return represents
  /// (the index assigned by the frontend; 0 when untagged).  The formal
  /// semantics ignores this -- it only exists so the composite-system
  /// construction can route each returned behavior to its exit node.
  [[nodiscard]] std::uint32_t exit_id() const { return exit_id_; }

 private:
  Kind kind_;
  Symbol sym_;
  Program left_;
  Program right_;
  std::size_t size_;
  std::uint32_t exit_id_ = 0;
};

[[nodiscard]] Program call(Symbol f);
[[nodiscard]] Program skip();
[[nodiscard]] Program ret();
/// A return tagged with a frontend exit-point id.
[[nodiscard]] Program ret_with_id(std::uint32_t exit_id);
[[nodiscard]] Program seq(Program a, Program b);
[[nodiscard]] Program branch(Program then_program, Program else_program);
[[nodiscard]] Program loop(Program body);

/// Folds statements into a right-nested sequence; empty input yields skip.
[[nodiscard]] Program seq_of(const std::vector<Program>& programs);

/// Every symbol called anywhere in the program.
[[nodiscard]] std::set<Symbol> alphabet(const Program& p);

[[nodiscard]] bool structurally_equal(const Program& a, const Program& b);

/// Renders in the paper's concrete syntax, e.g.
/// `loop(★){ a(); if(★){ b(); return } else { c() } }`.
[[nodiscard]] std::string to_string(const Program& p,
                                    const SymbolTable& table);

}  // namespace shelley::ir
