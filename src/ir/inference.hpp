// Behavior inference (Figure 4):
//
//   ⟦f()⟧     = (f, ∅)
//   ⟦skip⟧    = (ε, ∅)
//   ⟦return⟧  = (∅, {ε})
//   ⟦p1;p2⟧   = (r1·r2, {r1·r | r ∈ s2} ∪ s1)
//   ⟦if⟧      = (r1+r2, s1 ∪ s2)
//   ⟦loop p⟧  = (r1*, {r1*·r | r ∈ s1})
//
//   infer(p)  = r + r'1 + ... + r'n    where ⟦p⟧ = (r, {r'1, ..., r'n})
//
// `analyze` builds the *raw* regex structure exactly as written in the paper
// (so Example 3's shape, including the `b·∅` subterm, is reproduced
// verbatim); `infer_simplified` additionally normalizes with the smart
// constructors, which is what the verification pipeline consumes.
#pragma once

#include <vector>

#include "ir/program.hpp"
#include "rex/regex.hpp"

namespace shelley::ir {

/// One element of the returned-behavior set s, tagged with the frontend
/// exit-point id of the return statement it arose from (0 for untagged
/// programs built directly in the calculus).
struct ReturnedBehavior {
  rex::Regex regex;
  std::uint32_t exit_id = 0;
};

/// The pair ⟦p⟧ = (r, s): ongoing behavior plus the returned behaviors.
/// `returned` preserves first-derivation order and is duplicate-free on
/// (structure, exit_id) pairs (it models the paper's finite set s).
struct Behavior {
  rex::Regex ongoing;
  std::vector<ReturnedBehavior> returned;
};

/// Computes ⟦p⟧ with raw (non-simplifying) regex constructors.
[[nodiscard]] Behavior analyze(const Program& p);

/// infer(p) = ongoing + returned_1 + ... + returned_n  (raw constructors).
[[nodiscard]] rex::Regex infer(const Program& p);

/// infer(p) normalized by rex::simplify; language-equal to infer(p).
[[nodiscard]] rex::Regex infer_simplified(const Program& p);

}  // namespace shelley::ir
