#include "viz/dot.hpp"

#include <set>

#include "support/strings.hpp"

namespace shelley::viz {
namespace {

std::string quoted(std::string_view text) {
  return "\"" + escape_quotes(text) + "\"";
}

}  // namespace

std::string dot_class_diagram(const core::ClassSpec& spec) {
  std::string out = "digraph " + spec.name + " {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=circle, fontname=\"Helvetica\"];\n";
  out += "  __start [shape=point];\n";

  for (const core::Operation& op : spec.operations) {
    std::string attrs = "shape=" +
                        std::string(op.final ? "doublecircle" : "circle");
    out += "  " + quoted(op.name) + " [" + attrs + "];\n";
  }
  for (const core::Operation& op : spec.operations) {
    if (op.initial) {
      out += "  __start -> " + quoted(op.name) + ";\n";
    }
  }
  // One edge per (operation, successor) pair; exits sharing successors are
  // merged for readability, like the paper's Figure 1.
  for (const core::Operation& op : spec.operations) {
    std::set<std::string> successors;
    for (const core::ExitPoint& exit : op.exits) {
      for (const std::string& successor : exit.successors) {
        successors.insert(successor);
      }
    }
    for (const std::string& successor : successors) {
      out += "  " + quoted(op.name) + " -> " + quoted(successor) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string dot_dependency_graph(const core::ClassSpec& spec,
                                 const core::DependencyGraph& graph) {
  std::string out = "digraph " + spec.name + "_model {\n";
  out += "  rankdir=LR;\n";
  out += "  fontname=\"Helvetica\";\n";
  const auto& nodes = graph.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const core::DependencyNode& node = nodes[i];
    if (node.type == core::DependencyNode::Type::kEntry) {
      out += "  n" + std::to_string(i) + " [label=" + quoted(node.operation) +
             ", shape=box];\n";
    } else {
      const core::Operation* op = spec.find_operation(node.operation);
      std::string label = "exit " + std::to_string(node.exit_id);
      if (op != nullptr && node.exit_id < op->exits.size()) {
        std::vector<std::string> succ;
        for (const std::string& s : op->exits[node.exit_id].successors) {
          succ.push_back(s);
        }
        label = "return [" + join(succ, ", ") + "]";
      }
      out += "  n" + std::to_string(i) + " [label=" + quoted(label) +
             ", shape=ellipse, style=dashed];\n";
    }
  }
  for (const core::DependencyEdge& edge : graph.edges()) {
    out += "  n" + std::to_string(edge.from) + " -> n" +
           std::to_string(edge.to) + ";\n";
  }
  out += "}\n";
  return out;
}

std::string dot_system_model(const core::SystemModel& model,
                             const SymbolTable& table,
                             const Word& highlight) {
  std::set<Symbol> highlighted(highlight.begin(), highlight.end());
  std::string out = "digraph system {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=circle, fontname=\"Helvetica\"];\n";
  const fsm::Nfa& nfa = model.nfa;
  for (fsm::StateId s = 0; s < nfa.state_count(); ++s) {
    std::string attrs;
    if (nfa.is_accepting(s)) attrs = " [shape=doublecircle]";
    out += "  s" + std::to_string(s) + attrs + ";\n";
  }
  for (fsm::StateId s : nfa.initial_states()) {
    out += "  __start [shape=point];\n";
    out += "  __start -> s" + std::to_string(s) + ";\n";
  }
  for (const fsm::Transition& t : nfa.transitions()) {
    std::string label = t.is_epsilon() ? "ε" : table.name(t.symbol);
    std::string attrs = "label=" + quoted(label);
    if (!t.is_epsilon() && highlighted.contains(t.symbol)) {
      attrs += ", color=red, penwidth=2";
    }
    out += "  s" + std::to_string(t.from) + " -> s" + std::to_string(t.to) +
           " [" + attrs + "];\n";
  }
  out += "}\n";
  return out;
}

std::string dot_nfa(const fsm::Nfa& nfa, const SymbolTable& table,
                    std::string_view name) {
  std::string out = "digraph " + std::string(name) + " {\n  rankdir=LR;\n";
  for (fsm::StateId s = 0; s < nfa.state_count(); ++s) {
    out += "  s" + std::to_string(s) +
           (nfa.is_accepting(s) ? " [shape=doublecircle];\n"
                                : " [shape=circle];\n");
  }
  out += "  __start [shape=point];\n";
  for (fsm::StateId s : nfa.initial_states()) {
    out += "  __start -> s" + std::to_string(s) + ";\n";
  }
  for (const fsm::Transition& t : nfa.transitions()) {
    out += "  s" + std::to_string(t.from) + " -> s" + std::to_string(t.to) +
           " [label=" +
           quoted(t.is_epsilon() ? "ε" : table.name(t.symbol)) + "];\n";
  }
  out += "}\n";
  return out;
}

std::string dot_dfa(const fsm::Dfa& dfa, const SymbolTable& table,
                    std::string_view name) {
  std::string out = "digraph " + std::string(name) + " {\n  rankdir=LR;\n";
  for (fsm::StateId s = 0; s < dfa.state_count(); ++s) {
    out += "  s" + std::to_string(s) +
           (dfa.is_accepting(s) ? " [shape=doublecircle];\n"
                                : " [shape=circle];\n");
  }
  out += "  __start [shape=point];\n";
  out += "  __start -> s" + std::to_string(dfa.initial()) + ";\n";
  for (fsm::StateId s = 0; s < dfa.state_count(); ++s) {
    for (std::size_t letter = 0; letter < dfa.alphabet().size(); ++letter) {
      out += "  s" + std::to_string(s) + " -> s" +
             std::to_string(dfa.transition(s, letter)) + " [label=" +
             quoted(table.name(dfa.alphabet()[letter])) + "];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace shelley::viz
