// Graphviz/DOT emitters -- the visualization tool of §2 ("Shelley includes a
// visualization tool that automatically generates behavior diagrams based on
// the code annotations and based on the control flow").
//
//   * dot_class_diagram      -- Figure 1: operations as nodes, successor
//                               constraints as edges, initial/final marks.
//   * dot_dependency_graph   -- Figure 3: entry/exit nodes and arcs (§3.1).
//   * dot_system_model       -- Figure 2: the composite system automaton,
//                               optionally highlighting a counterexample.
//   * dot_nfa / dot_dfa      -- raw automata dumps for debugging.
#pragma once

#include <string>

#include "fsm/dfa.hpp"
#include "fsm/nfa.hpp"
#include "shelley/automata.hpp"
#include "shelley/graph.hpp"
#include "shelley/spec.hpp"

namespace shelley::viz {

[[nodiscard]] std::string dot_class_diagram(const core::ClassSpec& spec);

[[nodiscard]] std::string dot_dependency_graph(
    const core::ClassSpec& spec, const core::DependencyGraph& graph);

[[nodiscard]] std::string dot_system_model(const core::SystemModel& model,
                                           const SymbolTable& table,
                                           const Word& highlight = {});

[[nodiscard]] std::string dot_nfa(const fsm::Nfa& nfa,
                                  const SymbolTable& table,
                                  std::string_view name = "nfa");

[[nodiscard]] std::string dot_dfa(const fsm::Dfa& dfa,
                                  const SymbolTable& table,
                                  std::string_view name = "dfa");

}  // namespace shelley::viz
