#include "rex/regex.hpp"

#include <cassert>
#include <functional>

namespace shelley::rex {
namespace {

std::size_t combine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

std::size_t node_hash(Kind kind, Symbol sym, const Regex& left,
                      const Regex& right) {
  std::size_t h = static_cast<std::size_t>(kind) * 0x100000001b3ull;
  if (kind == Kind::kSymbol) h = combine(h, sym.id());
  if (left) h = combine(h, left->hash());
  if (right) h = combine(h, right->hash());
  return h;
}

std::size_t node_size(const Regex& left, const Regex& right) {
  std::size_t n = 1;
  if (left) n += left->size();
  if (right) n += right->size();
  return n;
}

}  // namespace

Node::Node(Kind kind, Symbol sym, Regex left, Regex right)
    : kind_(kind),
      sym_(sym),
      left_(std::move(left)),
      right_(std::move(right)),
      hash_(node_hash(kind, sym, left_, right_)),
      size_(node_size(left_, right_)) {}

Regex empty() {
  static const Regex instance =
      std::make_shared<const Node>(Kind::kEmpty, Symbol{}, nullptr, nullptr);
  return instance;
}

Regex epsilon() {
  static const Regex instance =
      std::make_shared<const Node>(Kind::kEpsilon, Symbol{}, nullptr, nullptr);
  return instance;
}

Regex symbol(Symbol s) {
  assert(s.valid());
  return std::make_shared<const Node>(Kind::kSymbol, s, nullptr, nullptr);
}

Regex concat(Regex a, Regex b) {
  assert(a && b);
  return std::make_shared<const Node>(Kind::kConcat, Symbol{}, std::move(a),
                                      std::move(b));
}

Regex alt(Regex a, Regex b) {
  assert(a && b);
  return std::make_shared<const Node>(Kind::kUnion, Symbol{}, std::move(a),
                                      std::move(b));
}

Regex star(Regex a) {
  assert(a);
  return std::make_shared<const Node>(Kind::kStar, Symbol{}, std::move(a),
                                      nullptr);
}

Regex alt_of(const std::vector<Regex>& alternatives) {
  if (alternatives.empty()) return empty();
  Regex out = alternatives.front();
  for (std::size_t i = 1; i < alternatives.size(); ++i) {
    out = alt(std::move(out), alternatives[i]);
  }
  return out;
}

Regex concat_of(const std::vector<Regex>& factors) {
  if (factors.empty()) return epsilon();
  Regex out = factors.front();
  for (std::size_t i = 1; i < factors.size(); ++i) {
    out = concat(std::move(out), factors[i]);
  }
  return out;
}

bool structurally_equal(const Regex& a, const Regex& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  if (a->hash() != b->hash() || a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case Kind::kEmpty:
    case Kind::kEpsilon:
      return true;
    case Kind::kSymbol:
      return a->symbol() == b->symbol();
    case Kind::kStar:
      return structurally_equal(a->left(), b->left());
    case Kind::kConcat:
    case Kind::kUnion:
      return structurally_equal(a->left(), b->left()) &&
             structurally_equal(a->right(), b->right());
  }
  return false;
}

int structural_compare(const Regex& a, const Regex& b) {
  if (a.get() == b.get()) return 0;
  if (a->kind() != b->kind()) {
    return static_cast<int>(a->kind()) < static_cast<int>(b->kind()) ? -1 : 1;
  }
  switch (a->kind()) {
    case Kind::kEmpty:
    case Kind::kEpsilon:
      return 0;
    case Kind::kSymbol:
      if (a->symbol() == b->symbol()) return 0;
      return a->symbol() < b->symbol() ? -1 : 1;
    case Kind::kStar:
      return structural_compare(a->left(), b->left());
    case Kind::kConcat:
    case Kind::kUnion: {
      const int c = structural_compare(a->left(), b->left());
      if (c != 0) return c;
      return structural_compare(a->right(), b->right());
    }
  }
  return 0;
}

std::set<Symbol> alphabet(const Regex& r) {
  std::set<Symbol> out;
  const std::function<void(const Regex&)> walk = [&](const Regex& node) {
    if (!node) return;
    if (node->kind() == Kind::kSymbol) out.insert(node->symbol());
    walk(node->left());
    walk(node->right());
  };
  walk(r);
  return out;
}

namespace {

// Precedence levels: union (1) < concat (2) < star/atom (3).
void print(const Regex& r, const SymbolTable& table, int parent_level,
           bool unicode, std::string& out) {
  const auto wrap = [&](int level, auto&& body) {
    const bool parens = level < parent_level;
    if (parens) out += '(';
    body();
    if (parens) out += ')';
  };
  switch (r->kind()) {
    case Kind::kEmpty:
      out += unicode ? "∅" : "void";
      break;
    case Kind::kEpsilon:
      out += unicode ? "ε" : "eps";
      break;
    case Kind::kSymbol:
      out += table.name(r->symbol());
      break;
    case Kind::kUnion:
      wrap(1, [&] {
        print(r->left(), table, 1, unicode, out);
        out += " + ";
        print(r->right(), table, 1, unicode, out);
      });
      break;
    case Kind::kConcat:
      wrap(2, [&] {
        print(r->left(), table, 2, unicode, out);
        out += unicode ? " · " : " ";
        print(r->right(), table, 2, unicode, out);
      });
      break;
    case Kind::kStar:
      wrap(3, [&] {
        print(r->left(), table, 4, unicode, out);
        out += '*';
      });
      break;
  }
}

}  // namespace

std::string to_string(const Regex& r, const SymbolTable& table) {
  std::string out;
  print(r, table, 0, /*unicode=*/true, out);
  return out;
}

std::string to_ascii(const Regex& r, const SymbolTable& table) {
  std::string out;
  print(r, table, 0, /*unicode=*/false, out);
  return out;
}

}  // namespace shelley::rex
