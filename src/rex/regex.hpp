// Regular expressions over interned event symbols (paper §3.2):
//
//   r ::= ε | ∅ | f | r · r | r + r | r*
//
// Nodes are immutable and shared (value semantics via shared_ptr<const>).
// The factory functions here build the *raw* structure with no algebraic
// simplification -- the behavior-inference function of Figure 4 must produce
// exactly the paper's shapes (e.g. Example 3 contains the subterm `b · ∅`).
// Use rex::simplify (derivative.hpp) to normalize.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "support/symbol.hpp"

namespace shelley::rex {

enum class Kind : std::uint8_t {
  kEmpty,    // ∅ : the empty language
  kEpsilon,  // ε : the language {""}
  kSymbol,   // f : the language {f}
  kConcat,   // r1 · r2
  kUnion,    // r1 + r2
  kStar,     // r*
};

class Node;
/// Shared immutable regex handle.  A default-constructed Regex is invalid;
/// always build through the factories below.
using Regex = std::shared_ptr<const Node>;

class Node {
 public:
  Node(Kind kind, Symbol sym, Regex left, Regex right);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] Symbol symbol() const { return sym_; }
  [[nodiscard]] const Regex& left() const { return left_; }
  [[nodiscard]] const Regex& right() const { return right_; }
  [[nodiscard]] std::size_t hash() const { return hash_; }
  /// Number of nodes in this subtree (counts every constructor).
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  Kind kind_;
  Symbol sym_;
  Regex left_;
  Regex right_;
  std::size_t hash_;
  std::size_t size_;
};

// -- Raw factories (no simplification) --------------------------------------

[[nodiscard]] Regex empty();
[[nodiscard]] Regex epsilon();
[[nodiscard]] Regex symbol(Symbol s);
[[nodiscard]] Regex concat(Regex a, Regex b);
[[nodiscard]] Regex alt(Regex a, Regex b);  // union; `alt` avoids the keyword
[[nodiscard]] Regex star(Regex a);

/// Folds a sequence of alternatives into r1 + r2 + ... + rn; empty input
/// yields ∅ (the identity of +).
[[nodiscard]] Regex alt_of(const std::vector<Regex>& alternatives);

/// Folds a sequence into r1 · r2 · ... · rn; empty input yields ε.
[[nodiscard]] Regex concat_of(const std::vector<Regex>& factors);

// -- Structural queries ------------------------------------------------------

/// Deep structural equality (exact tree shape, not language equality).
[[nodiscard]] bool structurally_equal(const Regex& a, const Regex& b);

/// Deterministic structural total order (-1/0/+1); used to canonicalize
/// unions and to key memo tables.
[[nodiscard]] int structural_compare(const Regex& a, const Regex& b);

/// Collects every symbol appearing in `r`.
[[nodiscard]] std::set<Symbol> alphabet(const Regex& r);

/// Paper-style rendering: `∅`, `ε`, `f`, `a · b`, `a + b`, `a*`, with
/// minimal parentheses (star > concat > union, both binops associative in
/// print).  Symbols print via `table`.
[[nodiscard]] std::string to_string(const Regex& r, const SymbolTable& table);

/// ASCII rendering used by parsers/tests: `void`, `eps`, juxtaposition for
/// concat, `+`, `*`.
[[nodiscard]] std::string to_ascii(const Regex& r, const SymbolTable& table);

}  // namespace shelley::rex
