// A small parser for regular expressions, used by tests and the CLI-style
// examples.  Accepts both the paper's Unicode notation and an ASCII form:
//
//   union   := concat ('+' concat)*
//   concat  := postfix (('·' | juxtaposition) postfix)*
//   postfix := atom '*'*
//   atom    := '(' union ')' | 'eps' | 'ε' | 'void' | '∅' | symbol
//
// Symbols are dotted identifiers (`a.open`); the dot binds tighter than any
// operator and must not be surrounded by whitespace.  Symbols are interned
// into the provided table.  Throws ParseError on malformed input.
#pragma once

#include <string_view>

#include "rex/regex.hpp"
#include "support/diagnostics.hpp"
#include "support/symbol.hpp"

namespace shelley::rex {

/// `origin` is the position of `text` inside its enclosing file (e.g. the
/// annotation that carried the expression); error locations are reported
/// relative to it, so a regex embedded on line 12 reports line 12.
[[nodiscard]] Regex parse(std::string_view text, SymbolTable& table,
                          SourceLoc origin = {1, 1});

}  // namespace shelley::rex
