// Brzozowski derivatives: nullability, word membership, and the algebraic
// simplification ("smart constructor") layer that keeps derivative chains
// finite modulo associativity/commutativity/idempotence of `+`.
#pragma once

#include "rex/regex.hpp"
#include "support/symbol.hpp"

namespace shelley::rex {

/// True iff ε ∈ L(r).
[[nodiscard]] bool nullable(const Regex& r);

/// True iff L(r) = ∅.  (Purely syntactic bottom-up check; exact because
/// the only emptiness sources are ∅ and concatenation with ∅.)
[[nodiscard]] bool is_empty_language(const Regex& r);

// -- Simplifying (smart) constructors ---------------------------------------
// These apply the identities  ∅·r = r·∅ = ∅,  ε·r = r·ε = r,  ∅+r = r,
// r+r = r,  (r*)* = r*,  ε* = ∅* = ε,  and flatten/sort/dedupe unions so
// ACI-equal unions become structurally equal.

[[nodiscard]] Regex smart_concat(Regex a, Regex b);
[[nodiscard]] Regex smart_alt(Regex a, Regex b);
[[nodiscard]] Regex smart_star(Regex a);

/// Recursively rebuilds `r` with the smart constructors, yielding a
/// normal form in which ACI-equivalent terms coincide structurally.
/// Language-preserving: L(simplify(r)) = L(r).
[[nodiscard]] Regex simplify(const Regex& r);

/// The Brzozowski derivative d_a(r): the language { w | a·w ∈ L(r) }.
/// The result is built with smart constructors.
[[nodiscard]] Regex derivative(const Regex& r, Symbol a);

/// Word membership via iterated derivatives: w ∈ L(r).
[[nodiscard]] bool matches(const Regex& r, const Word& word);

/// Enumerates every word of L(r) whose length is <= `max_length`.
/// Intended for property tests on small regexes; the result is sorted
/// (shortlex) and duplicate-free.
[[nodiscard]] std::vector<Word> enumerate_language(const Regex& r,
                                                   std::size_t max_length);

}  // namespace shelley::rex
