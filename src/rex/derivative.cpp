#include "rex/derivative.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "support/metrics.hpp"

namespace shelley::rex {

bool nullable(const Regex& r) {
  switch (r->kind()) {
    case Kind::kEmpty:
    case Kind::kSymbol:
      return false;
    case Kind::kEpsilon:
    case Kind::kStar:
      return true;
    case Kind::kConcat:
      return nullable(r->left()) && nullable(r->right());
    case Kind::kUnion:
      return nullable(r->left()) || nullable(r->right());
  }
  return false;
}

bool is_empty_language(const Regex& r) {
  switch (r->kind()) {
    case Kind::kEmpty:
      return true;
    case Kind::kEpsilon:
    case Kind::kSymbol:
    case Kind::kStar:
      return false;
    case Kind::kConcat:
      return is_empty_language(r->left()) || is_empty_language(r->right());
    case Kind::kUnion:
      return is_empty_language(r->left()) && is_empty_language(r->right());
  }
  return false;
}

namespace {

void flatten_union(const Regex& r, std::vector<Regex>& out) {
  if (r->kind() == Kind::kUnion) {
    flatten_union(r->left(), out);
    flatten_union(r->right(), out);
  } else if (r->kind() != Kind::kEmpty) {
    out.push_back(r);
  }
}

}  // namespace

Regex smart_concat(Regex a, Regex b) {
  if (a->kind() == Kind::kEmpty || b->kind() == Kind::kEmpty) return empty();
  if (a->kind() == Kind::kEpsilon) return b;
  if (b->kind() == Kind::kEpsilon) return a;
  // Right-associate: (x·y)·b => x·(y·b), so canonical concats are chains.
  if (a->kind() == Kind::kConcat) {
    return smart_concat(a->left(), smart_concat(a->right(), std::move(b)));
  }
  return concat(std::move(a), std::move(b));
}

Regex smart_alt(Regex a, Regex b) {
  std::vector<Regex> alts;
  flatten_union(a, alts);
  flatten_union(b, alts);
  if (alts.empty()) return empty();
  std::sort(alts.begin(), alts.end(),
            [](const Regex& x, const Regex& y) { return structural_compare(x, y) < 0; });
  alts.erase(std::unique(alts.begin(), alts.end(),
                         [](const Regex& x, const Regex& y) {
                           return structural_compare(x, y) == 0;
                         }),
             alts.end());
  Regex out = alts.back();
  for (std::size_t i = alts.size() - 1; i-- > 0;) {
    out = alt(alts[i], std::move(out));
  }
  return out;
}

Regex smart_star(Regex a) {
  if (a->kind() == Kind::kEmpty || a->kind() == Kind::kEpsilon) {
    return epsilon();
  }
  if (a->kind() == Kind::kStar) return a;
  return star(std::move(a));
}

namespace {

Regex simplify_impl(const Regex& r) {
  switch (r->kind()) {
    case Kind::kEmpty:
    case Kind::kEpsilon:
    case Kind::kSymbol:
      return r;
    case Kind::kConcat:
      return smart_concat(simplify_impl(r->left()),
                          simplify_impl(r->right()));
    case Kind::kUnion:
      return smart_alt(simplify_impl(r->left()), simplify_impl(r->right()));
    case Kind::kStar:
      return smart_star(simplify_impl(r->left()));
  }
  return r;
}

}  // namespace

Regex simplify(const Regex& r) {
  Regex out = simplify_impl(r);
  support::metrics::record_regex_simplify(r->size(), out->size());
  return out;
}

Regex derivative(const Regex& r, Symbol a) {
  switch (r->kind()) {
    case Kind::kEmpty:
    case Kind::kEpsilon:
      return empty();
    case Kind::kSymbol:
      return r->symbol() == a ? epsilon() : empty();
    case Kind::kConcat: {
      Regex head = smart_concat(derivative(r->left(), a), r->right());
      if (nullable(r->left())) {
        return smart_alt(std::move(head), derivative(r->right(), a));
      }
      return head;
    }
    case Kind::kUnion:
      return smart_alt(derivative(r->left(), a), derivative(r->right(), a));
    case Kind::kStar:
      return smart_concat(derivative(r->left(), a), r);
  }
  return empty();
}

bool matches(const Regex& r, const Word& word) {
  Regex current = simplify(r);
  for (Symbol s : word) {
    if (current->kind() == Kind::kEmpty) return false;
    current = derivative(current, s);
  }
  return nullable(current);
}

namespace {

bool shortlex_less(const Word& a, const Word& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

using WordSet = std::set<Word>;

WordSet enumerate(const Regex& r, std::size_t max_length) {
  switch (r->kind()) {
    case Kind::kEmpty:
      return {};
    case Kind::kEpsilon:
      return {Word{}};
    case Kind::kSymbol:
      if (max_length == 0) return {};
      return {Word{r->symbol()}};
    case Kind::kUnion: {
      WordSet out = enumerate(r->left(), max_length);
      WordSet rhs = enumerate(r->right(), max_length);
      out.insert(rhs.begin(), rhs.end());
      return out;
    }
    case Kind::kConcat: {
      const WordSet lhs = enumerate(r->left(), max_length);
      WordSet out;
      for (const Word& prefix : lhs) {
        const std::size_t room = max_length - prefix.size();
        for (const Word& suffix : enumerate(r->right(), room)) {
          Word w = prefix;
          w.insert(w.end(), suffix.begin(), suffix.end());
          out.insert(std::move(w));
        }
      }
      return out;
    }
    case Kind::kStar: {
      WordSet out{Word{}};
      // Iterate concatenation with non-empty body words until no new word
      // fits under the length cap.
      const WordSet body = enumerate(r->left(), max_length);
      bool grew = true;
      while (grew) {
        grew = false;
        WordSet next = out;
        for (const Word& prefix : out) {
          for (const Word& extension : body) {
            if (extension.empty()) continue;
            if (prefix.size() + extension.size() > max_length) continue;
            Word w = prefix;
            w.insert(w.end(), extension.begin(), extension.end());
            if (next.insert(std::move(w)).second) grew = true;
          }
        }
        out = std::move(next);
      }
      return out;
    }
  }
  return {};
}

}  // namespace

std::vector<Word> enumerate_language(const Regex& r, std::size_t max_length) {
  const WordSet words = enumerate(r, max_length);
  std::vector<Word> out(words.begin(), words.end());
  std::sort(out.begin(), out.end(), shortlex_less);
  return out;
}

}  // namespace shelley::rex
