#include "rex/parser.hpp"

#include <cctype>
#include <string>
#include <vector>

#include "support/guard.hpp"

namespace shelley::rex {
namespace {

enum class Tok { kLParen, kRParen, kPlus, kStar, kDotOp, kName, kEnd };

struct Token {
  Tok kind;
  std::string text;
  std::uint32_t column;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  Lexer(std::string_view text, SourceLoc origin)
      : text_(text), origin_(origin) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const auto col = static_cast<std::uint32_t>(pos_ + 1);
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({Tok::kLParen, "(", col});
        ++pos_;
      } else if (c == ')') {
        out.push_back({Tok::kRParen, ")", col});
        ++pos_;
      } else if (c == '+') {
        out.push_back({Tok::kPlus, "+", col});
        ++pos_;
      } else if (c == '*') {
        out.push_back({Tok::kStar, "*", col});
        ++pos_;
      } else if (consume_utf8("·")) {
        out.push_back({Tok::kDotOp, "·", col});
      } else if (consume_utf8("ε")) {
        out.push_back({Tok::kName, "ε", col});
      } else if (consume_utf8("∅")) {
        out.push_back({Tok::kName, "∅", col});
      } else if (is_ident_start(c)) {
        out.push_back({Tok::kName, lex_dotted_name(), col});
      } else {
          throw ParseError(at(col),
                         std::string("unexpected character '") + c +
                             "' in regular expression");
      }
    }
    out.push_back({Tok::kEnd, "", static_cast<std::uint32_t>(pos_ + 1)});
    return out;
  }

 private:
  // Offsets the 1-based in-text column by the origin of the embedded
  // expression, so errors point into the enclosing .py file.
  [[nodiscard]] SourceLoc at(std::uint32_t column) const {
    return {origin_.line, origin_.column + column - 1};
  }

  bool consume_utf8(std::string_view utf8) {
    if (text_.substr(pos_, utf8.size()) == utf8) {
      pos_ += utf8.size();
      return true;
    }
    return false;
  }

  std::string lex_dotted_name() {
    std::string name;
    while (true) {
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) {
        name += text_[pos_++];
      }
      // A dot glued between identifier characters continues the name.
      if (pos_ + 1 < text_.size() && text_[pos_] == '.' &&
          is_ident_start(text_[pos_ + 1])) {
        name += text_[pos_++];
        continue;
      }
      return name;
    }
  }

  std::string_view text_;
  SourceLoc origin_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable& table, SourceLoc origin)
      : tokens_(std::move(tokens)), table_(table), origin_(origin) {}

  Regex run() {
    Regex r = parse_union();
    expect(Tok::kEnd, "end of input");
    return r;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[index_]; }
  const Token& advance() { return tokens_[index_++]; }

  [[nodiscard]] SourceLoc here() const {
    return {origin_.line, origin_.column + peek().column - 1};
  }

  void expect(Tok kind, std::string_view what) {
    if (peek().kind != kind) {
      throw ParseError(here(), "expected " + std::string(what) +
                                   ", found '" + peek().text + "'");
    }
    advance();
  }

  [[nodiscard]] bool at_atom_start() const {
    return peek().kind == Tok::kLParen || peek().kind == Tok::kName;
  }

  Regex parse_union() {
    support::guard::DepthGuard depth(here());
    Regex r = parse_concat();
    while (peek().kind == Tok::kPlus) {
      advance();
      r = alt(std::move(r), parse_concat());
    }
    return r;
  }

  Regex parse_concat() {
    Regex r = parse_postfix();
    while (peek().kind == Tok::kDotOp || at_atom_start()) {
      if (peek().kind == Tok::kDotOp) advance();
      r = concat(std::move(r), parse_postfix());
    }
    return r;
  }

  Regex parse_postfix() {
    Regex r = parse_atom();
    while (peek().kind == Tok::kStar) {
      advance();
      r = star(std::move(r));
    }
    return r;
  }

  Regex parse_atom() {
    if (peek().kind == Tok::kLParen) {
      advance();
      Regex r = parse_union();
      expect(Tok::kRParen, "')'");
      return r;
    }
    if (peek().kind == Tok::kName) {
      const std::string name = advance().text;
      if (name == "eps" || name == "ε") return epsilon();
      if (name == "void" || name == "∅") return empty();
      return symbol(table_.intern(name));
    }
    throw ParseError(here(),
                     "expected an atom, found '" + peek().text + "'");
  }

  std::vector<Token> tokens_;
  SymbolTable& table_;
  SourceLoc origin_;
  std::size_t index_ = 0;
};

}  // namespace

Regex parse(std::string_view text, SymbolTable& table, SourceLoc origin) {
  support::guard::check_input_size(text.size(), origin);
  return Parser(Lexer(text, origin).run(), table, origin).run();
}

}  // namespace shelley::rex
