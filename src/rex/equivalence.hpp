// Language equivalence and inclusion of regular expressions via
// derivative-pair bisimulation (Antimirov/Brzozowski style).
//
// Termination: derivatives are normalized by the smart constructors, so the
// set of reachable (simplified) derivative states is finite modulo ACI of
// `+`; the visited-pair set therefore closes.
#pragma once

#include "rex/regex.hpp"

namespace shelley::rex {

/// True iff L(a) = L(b).
[[nodiscard]] bool equivalent(const Regex& a, const Regex& b);

/// True iff L(a) ⊆ L(b).
[[nodiscard]] bool included(const Regex& a, const Regex& b);

/// If L(a) != L(b), returns a word in exactly one of the two languages
/// (a shortest distinguishing word found by BFS); std::nullopt otherwise.
[[nodiscard]] std::optional<Word> distinguishing_word(const Regex& a,
                                                      const Regex& b);

}  // namespace shelley::rex
