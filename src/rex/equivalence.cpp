#include "rex/equivalence.hpp"

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "rex/derivative.hpp"

namespace shelley::rex {
namespace {

struct PairLess {
  bool operator()(const std::pair<Regex, Regex>& x,
                  const std::pair<Regex, Regex>& y) const {
    const int c = structural_compare(x.first, y.first);
    if (c != 0) return c < 0;
    return structural_compare(x.second, y.second) < 0;
  }
};

std::set<Symbol> joint_alphabet(const Regex& a, const Regex& b) {
  std::set<Symbol> sigma = alphabet(a);
  const std::set<Symbol> rhs = alphabet(b);
  sigma.insert(rhs.begin(), rhs.end());
  return sigma;
}

}  // namespace

std::optional<Word> distinguishing_word(const Regex& a, const Regex& b) {
  const std::set<Symbol> sigma = joint_alphabet(a, b);

  struct State {
    Regex left;
    Regex right;
    Word path;
  };

  std::set<std::pair<Regex, Regex>, PairLess> visited;
  std::deque<State> queue;
  queue.push_back(State{simplify(a), simplify(b), {}});
  visited.insert({queue.front().left, queue.front().right});

  while (!queue.empty()) {
    State state = std::move(queue.front());
    queue.pop_front();
    if (nullable(state.left) != nullable(state.right)) return state.path;
    for (Symbol s : sigma) {
      Regex dl = derivative(state.left, s);
      Regex dr = derivative(state.right, s);
      // Both dead: no word with this prefix distinguishes.
      if (is_empty_language(dl) && is_empty_language(dr)) continue;
      if (!visited.insert({dl, dr}).second) continue;
      Word path = state.path;
      path.push_back(s);
      queue.push_back(State{std::move(dl), std::move(dr), std::move(path)});
    }
  }
  return std::nullopt;
}

bool equivalent(const Regex& a, const Regex& b) {
  return !distinguishing_word(a, b).has_value();
}

bool included(const Regex& a, const Regex& b) {
  // L(a) ⊆ L(b)  iff  L(a + b) = L(b).
  return equivalent(smart_alt(a, b), b);
}

}  // namespace shelley::rex
