// Full reproduction of §2.2: verifying class BadSector (Listing 2.2) against
// the Valve specification (Listing 2.1).
//
// Expected findings, as printed in the paper:
//
//   Error in specification: INVALID SUBSYSTEM USAGE
//   Counter example: open_a, a.test, a.open
//   Subsystems errors:
//     * Valve 'a': test, >open< (not final)
//
//   Error in specification: FAIL TO MEET REQUIREMENT
//   Formula: (!a.open) W b.open
//   Counter example: a.test, a.open, b.open, ...
//
// Afterwards the corrected GoodSector (open valve b first) passes.
#include <cstdio>
#include <string>

#include "shelley/verifier.hpp"
#include "viz/dot.hpp"

#include "paper_sources.hpp"

namespace {

void verify(const char* title, const char* extra_source) {
  using namespace shelley;
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(extra_source);
  const core::Report report = verifier.verify_all();

  std::printf("== %s ==\n", title);
  std::printf("verification %s\n\n", report.ok() ? "PASSED" : "FAILED");
  const std::string errors = report.render(verifier.symbols());
  if (!errors.empty()) std::printf("%s\n", errors.c_str());
  const std::string diagnostics = verifier.diagnostics().render();
  if (!diagnostics.empty()) std::printf("%s\n", diagnostics.c_str());
}

}  // namespace

int main() {
  verify("BadSector (Listing 2.2, invalid)",
         shelley::examples::kBadSectorSource);
  verify("GoodSector (corrected: open b before a)",
         shelley::examples::kGoodSectorSource);
  return 0;
}
