// Runtime enforcement: the static model (annotations) compiled into an
// online monitor guarding a *simulated* valve -- the closest stand-in for
// the paper's physical testbed (GPIO-driven irrigation valves).  The
// simulator produces sensor readings; a small controller decides calls;
// the monitor checks every call against the Valve specification and a
// sampler generates valid call sequences for soak-testing.
#include <cstdio>
#include <random>
#include <string>

#include "shelley/monitor.hpp"
#include "shelley/sampler.hpp"
#include "shelley/verifier.hpp"

#include "paper_sources.hpp"

namespace {

using namespace shelley;

/// A tiny physical model of the valve: debris accumulates; `test` senses
/// it; `open`/`close`/`clean` actuate.  This plays the role of the
/// MicroPython `Pin` objects in Listing 2.1.
class SimulatedValve {
 public:
  explicit SimulatedValve(std::uint64_t seed) : rng_(seed) {}

  /// Returns true when the valve is clear (may open), false when it needs
  /// cleaning -- the two exits of Valve.test.
  bool test() { return debris_level_ < 3; }

  void open() { open_ = true; }
  void close() { open_ = false; }
  void clean() { debris_level_ = 0; }

  void weather_tick() { debris_level_ += rng_() % 2; }
  [[nodiscard]] bool is_open() const { return open_; }

 private:
  std::mt19937_64 rng_;
  int debris_level_ = 0;
  bool open_ = false;
};

}  // namespace

int main() {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const core::ClassSpec* valve_spec = verifier.find_class("Valve");

  core::Monitor monitor(*valve_spec, verifier.symbols());
  SimulatedValve valve(2026);

  std::printf("== Monitored irrigation cycles (simulated valve) ==\n");
  for (int cycle = 0; cycle < 5; ++cycle) {
    valve.weather_tick();
    // Controller logic mirroring GoodSector: test, then open or clean.
    const auto guarded = [&](const char* op, auto&& action) {
      const core::Verdict verdict = monitor.feed(op);
      std::printf("  cycle %d: %-6s -> %s\n", cycle, op,
                  std::string(core::to_string(verdict)).c_str());
      if (verdict != core::Verdict::kViolation) action();
    };
    if (valve.test()) {
      guarded("test", [] {});
      guarded("open", [&] { valve.open(); });
      guarded("close", [&] { valve.close(); });
    } else {
      guarded("test", [] {});
      guarded("clean", [&] { valve.clean(); });
    }
  }
  std::printf("lifecycle complete: %s, valve open: %s\n\n",
              monitor.completed() ? "yes" : "no",
              valve.is_open() ? "yes" : "no");

  // A buggy controller that skips the mandated test: caught immediately.
  std::printf("== Buggy controller (skips test) ==\n");
  monitor.reset();
  const core::Verdict verdict = monitor.feed("open");
  std::printf("  open first -> %s\n",
              std::string(core::to_string(verdict)).c_str());
  std::printf("  allowed instead:");
  monitor.reset();
  for (const std::string& op : monitor.allowed_next()) {
    std::printf(" %s", op.c_str());
  }
  std::printf("\n\n");

  // Soak test: drive the simulator with sampled valid call sequences.
  std::printf("== Soak test with sampled valid traces ==\n");
  core::TraceSampler sampler(*valve_spec, verifier.symbols(), 7);
  std::size_t calls = 0;
  for (int round = 0; round < 100; ++round) {
    monitor.reset();
    for (const std::string& op : sampler.sample(12)) {
      if (monitor.feed(op) == core::Verdict::kViolation) {
        std::printf("UNEXPECTED violation in sampled trace!\n");
        return 1;
      }
      if (op == "open") valve.open();
      if (op == "close") valve.close();
      if (op == "clean") valve.clean();
      ++calls;
    }
    if (!monitor.completed()) {
      std::printf("UNEXPECTED incomplete sampled trace!\n");
      return 1;
    }
  }
  std::printf("100 sampled lifecycles, %zu calls, all valid and complete\n",
              calls);
  return 0;
}
