// Quickstart: verify the paper's Valve class (Listing 2.1), print the
// automatically generated behavior diagram (Figure 1), and explore the
// valid-usage language of the class.
#include <cstdio>
#include <string>

#include "fsm/ops.hpp"
#include "shelley/automata.hpp"
#include "shelley/verifier.hpp"
#include "viz/dot.hpp"

#include "paper_sources.hpp"

int main() {
  using namespace shelley;

  // 1. Load the MicroPython source and run the full pipeline.
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const core::Report report = verifier.verify_all();

  std::printf("== Verifying class Valve ==\n");
  std::printf("verification %s\n", report.ok() ? "PASSED" : "FAILED");
  const std::string errors = report.render(verifier.symbols());
  if (!errors.empty()) std::printf("%s", errors.c_str());
  const std::string diagnostics = verifier.diagnostics().render();
  if (!diagnostics.empty()) std::printf("%s", diagnostics.c_str());

  // 2. The behavior diagram of Figure 1, generated from the annotations.
  const core::ClassSpec* valve = verifier.find_class("Valve");
  std::printf("\n== Figure 1: Valve diagram (DOT) ==\n%s",
              viz::dot_class_diagram(*valve).c_str());

  // 3. The valid-usage language as a minimal DFA.
  const fsm::Nfa usage = core::usage_nfa(*valve, verifier.symbols());
  const fsm::Dfa dfa = fsm::minimize(fsm::determinize(usage));
  std::printf("\n== Valid-usage automaton: %zu states (minimal) ==\n",
              dfa.state_count());

  const auto word = [&](std::initializer_list<const char*> ops) {
    Word out;
    for (const char* op : ops) {
      out.push_back(verifier.symbols().intern(op));
    }
    return out;
  };
  const auto show = [&](std::initializer_list<const char*> ops) {
    const Word w = word(ops);
    std::printf("  %-32s %s\n",
                to_string(w, verifier.symbols()).c_str(),
                dfa.accepts(w) ? "valid" : "INVALID");
  };
  std::printf("\n== Sample usages ==\n");
  show({"test", "open", "close"});
  show({"test", "clean"});
  show({"test", "open", "close", "test", "clean"});
  show({"test", "open"});          // valve left open: not a final op
  show({"open", "close"});         // must test first
  show({"test", "clean", "test", "open", "close"});
  return report.ok() ? 0 : 1;
}
