// Refactoring support: when a class's implementation is rewritten, its
// *contract* (the valid-usage language derived from annotations and
// returns) must not change.  compare_specs decides language equality and
// produces a shortest distinguishing usage when it doesn't hold -- here on
// three rewrites of the Valve contract.
#include <cstdio>

#include "fsm/ops.hpp"
#include "fsm/to_regex.hpp"
#include "shelley/automata.hpp"
#include "shelley/compare.hpp"
#include "shelley/verifier.hpp"

#include "paper_sources.hpp"

namespace {

using namespace shelley;

// Rewrite 1: if/elif instead of separate returns -- same contract.
constexpr const char* kValveRefactored = R"py(
@sys
class ValveRefactored:
    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        elif True:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
)py";

// Rewrite 2: someone made `open` final "for convenience" -- contract change!
constexpr const char* kValveLoosened = R"py(
@sys
class ValveLoosened:
    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op_final
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
)py";

void compare(const char* title, const core::ClassSpec& before,
             const core::ClassSpec& after, SymbolTable& table) {
  std::printf("== %s ==\n", title);
  const auto difference = core::compare_specs(before, after, table);
  if (!difference) {
    std::printf("contracts are EQUIVALENT\n\n");
    return;
  }
  std::printf("contracts DIFFER; usage [%s] is valid only for %s\n\n",
              to_string(difference->witness, table).c_str(),
              difference->in_first ? before.name.c_str()
                                   : after.name.c_str());
}

}  // namespace

int main() {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(kValveRefactored);
  verifier.add_source(kValveLoosened);
  SymbolTable& table = verifier.symbols();

  const core::ClassSpec* valve = verifier.find_class("Valve");
  std::printf("Valve usage language: %s\n\n",
              rex::to_string(
                  fsm::to_regex(fsm::minimize(fsm::determinize(
                      core::usage_nfa(*valve, table)))),
                  table)
                  .c_str());

  compare("match-returns vs if/elif rewrite", *valve,
          *verifier.find_class("ValveRefactored"), table);
  compare("original vs '@op_final open' rewrite", *valve,
          *verifier.find_class("ValveLoosened"), table);
  return 0;
}
