// Model inference two ways (the title of the paper, both readings):
//
//   1. static extraction -- the paper's route: the usage model is derived
//      from annotations and return statements;
//   2. active learning -- the LearnLib/AALpy route: Angluin's L* infers the
//      model by querying a black-box object (here: a live Valve guarded by
//      the runtime monitor), never looking at the source.
//
// The two models are then checked to be language-equal, and the learned
// model re-finds the paper's BadSector violation.
#include <cstdio>

#include "fsm/ops.hpp"
#include "fsm/to_regex.hpp"
#include "learn/lstar.hpp"
#include "shelley/automata.hpp"
#include "shelley/monitor.hpp"
#include "shelley/verifier.hpp"

#include "paper_sources.hpp"

int main() {
  using namespace shelley;

  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const core::ClassSpec* valve = verifier.find_class("Valve");
  SymbolTable& table = verifier.symbols();

  // Route 1: static extraction.
  const fsm::Dfa extracted =
      fsm::minimize(fsm::determinize(core::usage_nfa(*valve, table)));
  std::printf("== Static extraction (the paper) ==\n");
  std::printf("usage model: %zu states over %zu operations\n",
              extracted.state_count(), extracted.alphabet().size());

  // Route 2: L* against the black-box monitor.
  core::Monitor monitor(*valve, table);
  std::vector<Symbol> alphabet;
  for (const core::Operation& op : valve->operations) {
    alphabet.push_back(table.intern(op.name));
  }
  learn::BlackBoxTeacher teacher(
      [&](const Word& word) {
        monitor.reset();
        for (Symbol s : word) {
          if (monitor.feed(table.name(s)) == core::Verdict::kViolation) {
            return false;
          }
        }
        return monitor.completed();
      },
      alphabet, /*test_depth=*/7);
  const learn::LearnResult learned = learn::learn_dfa(teacher, alphabet);

  std::printf("\n== Active learning (L*) ==\n");
  std::printf("learned in %zu rounds, %zu membership queries, "
              "%zu equivalence queries\n",
              learned.rounds, learned.membership_queries,
              learned.equivalence_queries);
  std::printf("learned model: %zu states (minimal: %zu)\n",
              learned.dfa.state_count(),
              fsm::minimize(learned.dfa).state_count());

  // The punchline: both routes produce the same model.
  const bool equal = fsm::equivalent(learned.dfa, extracted);
  std::printf("\nlearned == extracted: %s\n", equal ? "YES" : "NO");

  // And the learned model rejects the paper's bad behavior.
  const Word bad{table.intern("test"), table.intern("open")};
  std::printf("learned model accepts [test, open] (valve left open): %s\n",
              learned.dfa.accepts(bad) ? "yes (BUG)" : "no -- rejected");

  std::printf("\nlearned usage language: %s\n",
              rex::to_string(fsm::to_regex(fsm::minimize(learned.dfa)),
                             table)
                  .c_str());
  return equal ? 0 : 1;
}
