// Reproduction of §3.1 / Figure 3: the method-dependency graph of class
// Sector (Listing 3.1) -- entry node per method, exit node per return, arcs
// for the ordering constraints -- rendered as the Shelley model diagram.
#include <cstdio>

#include "ir/inference.hpp"
#include "ir/lowering.hpp"
#include "shelley/automata.hpp"
#include "shelley/graph.hpp"
#include "shelley/verifier.hpp"
#include "viz/dot.hpp"

#include "paper_sources.hpp"

int main() {
  using namespace shelley;

  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kSectorSource);

  const core::ClassSpec* sector = verifier.find_class("Sector");
  core::DependencyGraph graph =
      core::DependencyGraph::build(*sector, verifier.diagnostics());

  std::printf("== Method dependency graph of class Sector (Section 3.1) ==\n");
  std::printf("nodes: %zu (4 entries + one exit per return)\n",
              graph.nodes().size());
  for (const core::DependencyNode& node : graph.nodes()) {
    std::printf("  %s %s\n",
                node.type == core::DependencyNode::Type::kEntry ? "entry"
                                                                : "exit ",
                node.label().c_str());
  }
  std::printf("edges: %zu\n", graph.edges().size());
  for (const core::DependencyEdge& edge : graph.edges()) {
    std::printf("  %s -> %s\n", graph.nodes()[edge.from].label().c_str(),
                graph.nodes()[edge.to].label().c_str());
  }

  std::printf("\n== Figure 3: Shelley model of class Sector (DOT) ==\n%s",
              viz::dot_dependency_graph(*sector, graph).c_str());

  // Per-method behavior extraction (Section 3.2) over the subsystem calls.
  std::printf("\n== Inferred method behaviors (infer(p), simplified) ==\n");
  const auto behaviors =
      core::extract_behaviors(*sector, verifier.symbols(),
                              verifier.diagnostics());
  for (const auto& [name, behavior] : behaviors) {
    std::printf("  %-10s p  = %s\n", name.c_str(),
                ir::to_string(behavior.program, verifier.symbols()).c_str());
    std::printf("  %-10s r  = %s\n", "",
                rex::to_string(behavior.inferred, verifier.symbols()).c_str());
  }

  const core::Report report = verifier.verify_all();
  std::printf("\nSector verification %s\n",
              report.ok() ? "PASSED" : "FAILED");
  const std::string errors = report.render(verifier.symbols());
  if (!errors.empty()) std::printf("%s", errors.c_str());
  return 0;
}
