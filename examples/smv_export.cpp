// The NuSMV delegation path (§5 Future work): translate the system
// automaton of a composite class into a NuSMV model -- encoding the regular
// language as an ω-regular one by padding finite traces with `_end` -- and
// check the temporal claim against the emitted model with the built-in
// explicit-state evaluator (standing in for the NuSMV binary).
#include <cstdio>
#include <string>

#include "fsm/ops.hpp"
#include "ltlf/parser.hpp"
#include "shelley/automata.hpp"
#include "shelley/verifier.hpp"
#include "smv/smv.hpp"
#include "support/strings.hpp"

#include "paper_sources.hpp"

int main() {
  using namespace shelley;

  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);

  const core::ClassSpec* bad_sector = verifier.find_class("BadSector");
  const auto behaviors = core::extract_behaviors(
      *bad_sector, verifier.symbols(), verifier.diagnostics());
  const core::SystemModel model = core::build_system_model(
      *bad_sector, behaviors, verifier.symbols(), verifier.diagnostics());

  // Project to subsystem events (what the claim talks about) and emit.
  std::set<Symbol> op_labels(model.op_symbols.begin(),
                             model.op_symbols.end());
  const fsm::Nfa projected = fsm::map_labels(
      model.nfa,
      [&](Symbol s) { return op_labels.contains(s) ? Symbol{} : s; });
  const fsm::Dfa dfa = fsm::minimize(
      fsm::determinize(projected, model.event_symbols));

  smv::SmvModel smv_model =
      smv::from_dfa(dfa, verifier.symbols(), "bad_sector");
  const ltlf::Formula claim =
      ltlf::parse("(!a.open) W b.open", verifier.symbols());
  smv::add_ltlspec(smv_model, claim, verifier.symbols());

  std::printf("== Generated NuSMV model ==\n%s",
              smv::emit(smv_model).c_str());

  std::printf("\n== Explicit-state check of the emitted LTLSPEC ==\n");
  const auto witness =
      smv::check_ltlspec(smv_model, claim, verifier.symbols());
  if (witness) {
    std::printf("LTLSPEC is false; counterexample: %s\n",
                join(*witness, ", ").c_str());
  } else {
    std::printf("LTLSPEC holds\n");
  }
  return 0;
}
