// The MicroPython listings of the paper, verbatim (Listings 2.1, 2.2, 3.1),
// plus a corrected sector used to show a passing verification.  Shared by
// the examples and reused (in string form) by the integration tests.
#pragma once

namespace shelley::examples {

// Listing 2.1 -- class Valve.
inline constexpr const char* kValveSource = R"(
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
)";

// Listing 2.2 -- class BadSector (invalid usage of valves).
inline constexpr const char* kBadSectorSource = R"(
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
)";

// Listing 3.1 -- class Sector (returns only; bodies elided in the paper).
inline constexpr const char* kSectorSource = R"(
@sys(["a", "b"])
class Sector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial
    def open_a(self):
        if self.a.test() == ["open"]:
            self.a.open()
            return ["close_a", "open_b"]
        else:
            self.a.clean()
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op_final
    def close_a(self):
        self.a.close()
        return ["open_a"]

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
)";

// A corrected sector: valve b is opened before valve a, so both the Valve
// specification and the temporal claim hold.
inline constexpr const char* kGoodSectorSource = R"(
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class GoodSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                return ["open_a"]
            case ["clean"]:
                self.b.clean()
                print("b failed")
                return ["fail"]

    @op_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                self.b.close()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                self.b.close()
                return ["open_b"]

    @op_final
    def fail(self):
        return ["open_b"]
)";

}  // namespace shelley::examples
