// The paper's motivating industrial use case (§2): a battery-operated
// wireless controller that switches water valves according to a scheduled
// irrigation plan.  This example builds a three-level hierarchy --
//
//     Controller
//       ├── power : Power          (battery rail)
//       ├── s1,s2 : GoodSector     (each itself composed of two Valves)
//       └── timer : Timer          (scheduler tick)
//
// -- and shows (1) modular verification of every level, (2) a seeded bug in
// BadController that ignores a sector's failure exit, caught as INVALID
// SUBSYSTEM USAGE, and (3) temporal claims about power management.
#include <cstdio>
#include <string>

#include "shelley/verifier.hpp"

#include "paper_sources.hpp"

namespace {

constexpr const char* kSubstrateSource = R"py(
@sys
class Power:
    def __init__(self):
        self.rail = Pin(2, OUT)

    @op_initial
    def on(self):
        self.rail.on()
        return ["off"]

    @op_final
    def off(self):
        self.rail.off()
        return ["on"]

@sys
class Timer:
    @op_initial_final
    def wait(self):
        return ["wait"]
)py";

constexpr const char* kControllerSource = R"py(
@claim("(!s1.open_a) W power.on")
@claim("G (power.off -> N power.on)")
@sys(["power", "s1", "s2", "timer"])
class Controller:
    def __init__(self):
        self.power = Power()
        self.s1 = GoodSector()
        self.s2 = GoodSector()
        self.timer = Timer()

    @op_initial
    def start(self):
        self.power.on()
        return ["irrigate"]

    @op
    def irrigate(self):
        match self.s1.open_b():
            case ["open_a"]:
                self.s1.open_a()
            case ["fail"]:
                self.s1.fail()
        match self.s2.open_b():
            case ["open_a"]:
                self.s2.open_a()
            case ["fail"]:
                self.s2.fail()
        self.timer.wait()
        return ["irrigate", "stop"]

    @op_final
    def stop(self):
        self.power.off()
        return ["start"]
)py";

// The seeded bug: ignores that open_b may take the failure exit, and keeps
// irrigating regardless.
constexpr const char* kBadControllerSource = R"py(
@sys(["power", "s1"])
class BadController:
    def __init__(self):
        self.power = Power()
        self.s1 = GoodSector()

    @op_initial
    def start(self):
        self.power.on()
        return ["irrigate"]

    @op
    def irrigate(self):
        self.s1.open_b()
        self.s1.open_a()
        return ["stop"]

    @op_final
    def stop(self):
        self.power.off()
        return ["start"]
)py";

void verify(const char* title, const char* controller_source) {
  using namespace shelley;
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kGoodSectorSource);
  verifier.add_source(kSubstrateSource);
  verifier.add_source(controller_source);
  const core::Report report = verifier.verify_all();

  std::printf("== %s ==\n", title);
  for (const core::ClassReport& cls : report.classes) {
    std::printf("  %-14s %s\n", cls.class_name.c_str(),
                cls.ok() ? "ok" : "FAILED");
  }
  const std::string errors = report.render(verifier.symbols());
  if (!errors.empty()) std::printf("\n%s", errors.c_str());
  const std::string diagnostics = verifier.diagnostics().render();
  if (!diagnostics.empty()) std::printf("\n%s", diagnostics.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  verify("Irrigation controller (correct plan)", kControllerSource);
  verify("Irrigation controller with a seeded bug (failure exit ignored)",
         kBadControllerSource);
  return 0;
}
