// Table 2: return statements and their meanings.  Regenerates the table by
// decoding each documented form, then times return decoding at scale.
#include "bench_common.hpp"

#include "shelley/annotations.hpp"
#include "upy/parser.hpp"

namespace {

using namespace shelley;

upy::ExprPtr return_value(const std::string& text) {
  const upy::Module module = upy::parse_module(
      "class C:\n    def m(self):\n        return " + text + "\n");
  return upy::as<upy::ReturnStmt>(module.classes.at(0).methods.at(0)
                                      .body.at(0))
      ->value;
}

void print_table2() {
  shelley::bench::artifact_banner("Table 2 -- return statements");
  const char* forms[] = {
      "[\"close\"]",          "[\"open\", \"clean\"]", "[\"close\"], 2",
      "[\"close\"], True",    "[\"open\", \"clean\"], 2",
  };
  for (const char* form : forms) {
    DiagnosticEngine diagnostics;
    const auto successors =
        core::decode_return_successors(return_value(form), {}, diagnostics);
    std::string meaning = "expecting ";
    for (std::size_t i = 0; i < successors->size(); ++i) {
      if (i != 0) meaning += " or ";
      meaning += "\"" + (*successors)[i] + "\"";
    }
    meaning += " to be invoked next";
    std::printf("| return %-24s | %s\n", form, meaning.c_str());
  }
  shelley::bench::end_banner();
}

void BM_DecodeReturn(benchmark::State& state) {
  const upy::ExprPtr value = return_value("[\"open\", \"clean\"], 2");
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(
        core::decode_return_successors(value, {}, diagnostics));
  }
}
BENCHMARK(BM_DecodeReturn);

void BM_ParseAndDecodeReturnStatements(benchmark::State& state) {
  // End to end: parse a method with N returns, decode them all.
  std::string body = "class C:\n    def m(self):\n";
  for (int i = 0; i < state.range(0); ++i) {
    body += "        if x" + std::to_string(i) + ":\n";
    body += "            return [\"a\", \"b\"], " + std::to_string(i) + "\n";
  }
  body += "        return []\n";
  for (auto _ : state) {
    const upy::Module module = upy::parse_module(body);
    DiagnosticEngine diagnostics;
    std::size_t decoded = 0;
    for (const auto* ret :
         core::collect_returns(module.classes.at(0).methods.at(0).body)) {
      if (core::decode_return_successors(ret->value, {}, diagnostics)) {
        ++decoded;
      }
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParseAndDecodeReturnStatements)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
