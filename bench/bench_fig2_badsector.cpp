// Figure 2 / §2.2: verification of BadSector, regenerating both error
// messages (INVALID SUBSYSTEM USAGE with counterexample and subsystem
// detail; FAIL TO MEET REQUIREMENT with formula and counterexample), then
// timing the composite checks.
#include "bench_common.hpp"

#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/parser.hpp"
#include "shelley/automata.hpp"
#include "shelley/checker.hpp"
#include "viz/dot.hpp"

namespace {

using namespace shelley;

void print_figure2() {
  shelley::bench::artifact_banner(
      "Figure 2 / Section 2.2 -- BadSector verification report");
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  const core::Report report = verifier.verify_all();
  std::printf("%s", report.render(verifier.symbols()).c_str());
  shelley::bench::end_banner();
}

struct Fixture {
  core::Verifier verifier;
  const core::ClassSpec* bad_sector = nullptr;
  core::ClassLookup lookup;

  Fixture() {
    verifier.add_source(examples::kValveSource);
    verifier.add_source(examples::kBadSectorSource);
    bad_sector = verifier.find_class("BadSector");
    lookup = [this](const std::string& name) {
      return verifier.find_class(name);
    };
  }
};

void BM_CheckComposite_BadSector(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(core::check_composite(
        *fixture.bad_sector, fixture.lookup, fixture.verifier.symbols(),
        diagnostics));
  }
}
BENCHMARK(BM_CheckComposite_BadSector);

void BM_BuildSystemModel_BadSector(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    const auto behaviors = core::extract_behaviors(
        *fixture.bad_sector, fixture.verifier.symbols(), diagnostics);
    benchmark::DoNotOptimize(core::build_system_model(
        *fixture.bad_sector, behaviors, fixture.verifier.symbols(),
        diagnostics));
  }
}
BENCHMARK(BM_BuildSystemModel_BadSector);

void BM_SubsystemInclusionCheck(benchmark::State& state) {
  Fixture fixture;
  DiagnosticEngine diagnostics;
  SymbolTable& table = fixture.verifier.symbols();
  const auto behaviors =
      core::extract_behaviors(*fixture.bad_sector, table, diagnostics);
  const core::SystemModel model = core::build_system_model(
      *fixture.bad_sector, behaviors, table, diagnostics);
  const auto alphabet = model.full_alphabet();
  const fsm::Dfa system =
      fsm::minimize(fsm::determinize(model.nfa, alphabet));
  const core::ClassSpec* valve = fixture.verifier.find_class("Valve");
  const fsm::Dfa usage =
      fsm::minimize(fsm::determinize(core::usage_nfa(*valve, table, "a.")));
  const fsm::Dfa monitor = fsm::extend_alphabet_ignore(usage, alphabet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::inclusion_witness(system, monitor));
  }
}
BENCHMARK(BM_SubsystemInclusionCheck);

void BM_ClaimCheck_WeakUntil(benchmark::State& state) {
  Fixture fixture;
  DiagnosticEngine diagnostics;
  SymbolTable& table = fixture.verifier.symbols();
  const auto behaviors =
      core::extract_behaviors(*fixture.bad_sector, table, diagnostics);
  const core::SystemModel model = core::build_system_model(
      *fixture.bad_sector, behaviors, table, diagnostics);
  std::set<Symbol> ops(model.op_symbols.begin(), model.op_symbols.end());
  const fsm::Nfa projected = fsm::map_labels(model.nfa, [&](Symbol s) {
    return ops.contains(s) ? Symbol{} : s;
  });
  const fsm::Dfa dfa =
      fsm::minimize(fsm::determinize(projected, model.event_symbols));
  const ltlf::Formula claim = ltlf::parse("(!a.open) W b.open", table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ltlf::counterexample(dfa, claim));
  }
}
BENCHMARK(BM_ClaimCheck_WeakUntil);

void BM_FullReport_BadSector(benchmark::State& state) {
  for (auto _ : state) {
    core::Verifier verifier;
    verifier.add_source(examples::kValveSource);
    verifier.add_source(examples::kBadSectorSource);
    const core::Report report = verifier.verify_all();
    benchmark::DoNotOptimize(report.render(verifier.symbols()));
  }
}
BENCHMARK(BM_FullReport_BadSector);

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
