// Incremental verification on the ring-200 bench: a cold verify_all of the
// synthetic ring class (cache miss + full pipeline + store) against a warm
// one (pure replay from the on-disk behavior cache).
//
// The artifact section is the correctness half of the claim: it runs the
// cold and warm paths once, checks the rendered reports are byte-identical,
// and prints the cache counters that prove which path each run took.  The
// timed benchmarks below are the performance half; tools/bench_to_json.sh
// folds their ratio into BENCH_automata.json as "incremental_verify".
#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "shelley/cache.hpp"
#include "upy/parser.hpp"

namespace {

using namespace shelley;

constexpr std::size_t kRingOps = 200;
constexpr std::size_t kRingExits = 8;

// Parsed once: the timed loops measure verification, not parsing (the CLI
// pays parsing on both the cold and the warm run, so it cancels out there).
const upy::Module& ring_module() {
  static const upy::Module module = upy::parse_module(
      shelley::bench::synthetic_class(kRingOps, kRingExits));
  return module;
}

const std::string& cache_directory() {
  static const std::string dir = [] {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "shelley_bench_cache_XXXXXX")
                           .string();
    if (mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("bench_incremental: mkdtemp failed");
    }
    return tmpl;
  }();
  return dir;
}

void clear_cache_directory() {
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_directory())) {
    std::filesystem::remove(entry.path());
  }
}

std::string verify_ring(core::BehaviorCache& cache) {
  core::Verifier verifier;
  verifier.set_cache(&cache);
  verifier.add_class(ring_module().classes.at(0));
  return verifier.verify_all().render(verifier.symbols());
}

void print_artifact() {
  shelley::bench::artifact_banner(
      "incremental verification: ring-200 cold vs warm replay");
  clear_cache_directory();
  core::BehaviorCache cache(cache_directory());
  const std::string cold = verify_ring(cache);
  const core::CacheStats after_cold = cache.stats();
  const std::string warm = verify_ring(cache);
  const core::CacheStats after_warm = cache.stats();
  std::printf("ring: %zu ops, %zu exits/op\n", kRingOps, kRingExits);
  std::printf("cold run: %llu misses, %llu stores\n",
              static_cast<unsigned long long>(after_cold.misses),
              static_cast<unsigned long long>(after_cold.stores));
  std::printf("warm run: %llu hits\n",
              static_cast<unsigned long long>(after_warm.hits));
  std::printf("byte-identical replay: %s\n", cold == warm ? "yes" : "NO");
  if (cold != warm || after_warm.hits == 0) {
    // A wrong replay makes the timings below meaningless; fail loudly.
    std::fprintf(stderr, "bench_incremental: warm replay diverged\n");
    std::exit(1);
  }
  shelley::bench::end_banner();
}

void BM_VerifyRing200_Cold(benchmark::State& state) {
  core::BehaviorCache cache(cache_directory());
  for (auto _ : state) {
    state.PauseTiming();
    clear_cache_directory();
    state.ResumeTiming();
    core::Verifier verifier;
    verifier.set_cache(&cache);
    verifier.add_class(ring_module().classes.at(0));
    benchmark::DoNotOptimize(verifier.verify_all());
  }
  state.counters["cache_hits"] =
      static_cast<double>(cache.stats().hits);  // stays 0: every run misses
}
BENCHMARK(BM_VerifyRing200_Cold)->Unit(benchmark::kMillisecond);

void BM_VerifyRing200_Warm(benchmark::State& state) {
  core::BehaviorCache cache(cache_directory());
  clear_cache_directory();
  (void)verify_ring(cache);  // populate once
  for (auto _ : state) {
    core::Verifier verifier;
    verifier.set_cache(&cache);
    verifier.add_class(ring_module().classes.at(0));
    benchmark::DoNotOptimize(verifier.verify_all());
  }
  state.counters["cache_misses_after_populate"] =
      static_cast<double>(cache.stats().misses - 1);  // stays 0: all hits
}
BENCHMARK(BM_VerifyRing200_Warm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  std::error_code ec;
  std::filesystem::remove_all(cache_directory(), ec);
  return 0;
}
