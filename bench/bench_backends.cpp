// Backends and runtime support: NuSMV emission / parsing / checking
// round-trip cost, online-monitor feed throughput, and valid-trace sampling
// throughput.  (Beyond the paper's artifacts; documents the cost of the §5
// delegation path and of the runtime layer.)
#include "bench_common.hpp"

#include "fsm/ops.hpp"
#include "ltlf/parser.hpp"
#include "shelley/automata.hpp"
#include "shelley/monitor.hpp"
#include "shelley/sampler.hpp"
#include "smv/parser.hpp"
#include "smv/smv.hpp"
#include "upy/parser.hpp"

namespace {

using namespace shelley;

void print_artifact() {
  shelley::bench::artifact_banner(
      "backends: NuSMV round trip + runtime monitor/sampler");
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  const core::ClassSpec* bad = verifier.find_class("BadSector");
  DiagnosticEngine diagnostics;
  const auto behaviors =
      core::extract_behaviors(*bad, verifier.symbols(), diagnostics);
  const core::SystemModel model = core::build_system_model(
      *bad, behaviors, verifier.symbols(), diagnostics);
  const fsm::Dfa dfa = fsm::minimize(
      fsm::determinize(model.nfa, model.full_alphabet()));
  smv::SmvModel smv_model =
      smv::from_dfa(dfa, verifier.symbols(), "bad_sector");
  const std::string text = smv::emit(smv_model);
  const smv::SmvModel parsed = smv::parse_model(text);
  std::printf("emitted %zu bytes of NuSMV; parsed back %zu states, "
              "%zu events\n",
              text.size(), parsed.state_names.size(),
              parsed.event_names.size());
  shelley::bench::end_banner();
}

struct ValveFixture {
  core::Verifier verifier;
  const core::ClassSpec* valve = nullptr;

  ValveFixture() {
    verifier.add_source(examples::kValveSource);
    valve = verifier.find_class("Valve");
  }
};

void BM_SmvEmit(benchmark::State& state) {
  ValveFixture fixture;
  const fsm::Dfa dfa = fsm::minimize(fsm::determinize(
      core::usage_nfa(*fixture.valve, fixture.verifier.symbols())));
  const smv::SmvModel model =
      smv::from_dfa(dfa, fixture.verifier.symbols(), "valve");
  for (auto _ : state) {
    benchmark::DoNotOptimize(smv::emit(model));
  }
}
BENCHMARK(BM_SmvEmit);

void BM_SmvParse(benchmark::State& state) {
  ValveFixture fixture;
  const fsm::Dfa dfa = fsm::minimize(fsm::determinize(
      core::usage_nfa(*fixture.valve, fixture.verifier.symbols())));
  const std::string text =
      smv::emit(smv::from_dfa(dfa, fixture.verifier.symbols(), "valve"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(smv::parse_model(text));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_SmvParse);

void BM_SmvCheckLtlspec(benchmark::State& state) {
  ValveFixture fixture;
  SymbolTable& table = fixture.verifier.symbols();
  const fsm::Dfa dfa = fsm::minimize(
      fsm::determinize(core::usage_nfa(*fixture.valve, table)));
  const smv::SmvModel model = smv::from_dfa(dfa, table, "valve");
  const ltlf::Formula claim = ltlf::parse("G (open -> F close)", table);
  for (auto _ : state) {
    SymbolTable fresh;
    benchmark::DoNotOptimize(smv::check_ltlspec(model, claim, fresh));
  }
}
BENCHMARK(BM_SmvCheckLtlspec);

void BM_MonitorFeed(benchmark::State& state) {
  ValveFixture fixture;
  core::Monitor monitor(*fixture.valve, fixture.verifier.symbols());
  const char* cycle[] = {"test", "open", "close"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.feed(cycle[i % 3]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonitorFeed);

void BM_MonitorConstruction(benchmark::State& state) {
  ValveFixture fixture;
  for (auto _ : state) {
    SymbolTable table;
    benchmark::DoNotOptimize(core::Monitor(*fixture.valve, table));
  }
}
BENCHMARK(BM_MonitorConstruction);

void BM_SamplerSample(benchmark::State& state) {
  ValveFixture fixture;
  core::TraceSampler sampler(*fixture.valve, fixture.verifier.symbols(),
                             12345);
  std::size_t calls = 0;
  for (auto _ : state) {
    const auto trace = sampler.sample(32);
    calls += trace.size();
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(calls));
}
BENCHMARK(BM_SamplerSample);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
