// Figure 4 / Examples 1-3: the trace semantics and the behavior-inference
// function.  Regenerates all three worked examples, then times the
// semantics oracle, the inference, and simplification as programs grow.
#include "bench_common.hpp"

#include "ir/generator.hpp"
#include "ir/inference.hpp"
#include "ir/semantics.hpp"
#include "rex/derivative.hpp"

namespace {

using namespace shelley;

ir::Program example_program(SymbolTable& table) {
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  const Symbol c = table.intern("c");
  return ir::loop(ir::seq(
      ir::call(a),
      ir::branch(ir::seq(ir::call(b), ir::ret()), ir::call(c))));
}

void print_figure4() {
  shelley::bench::artifact_banner(
      "Figure 4 -- Examples 1-3 (semantics & inference)");
  SymbolTable table;
  const ir::Program p = example_program(table);
  const Symbol a = *table.lookup("a");
  const Symbol b = *table.lookup("b");
  const Symbol c = *table.lookup("c");

  std::printf("p = %s\n", ir::to_string(p, table).c_str());
  std::printf("Example 1: 0 |- [a, c, a, c] in p : %s\n",
              ir::derives(p, {a, c, a, c}, ir::Status::kOngoing) ? "yes"
                                                                 : "NO");
  std::printf("Example 2: R |- [a, c, a, b] in p : %s\n",
              ir::derives(p, {a, c, a, b}, ir::Status::kReturned) ? "yes"
                                                                  : "NO");
  const ir::Behavior behavior = ir::analyze(p);
  std::printf("Example 3: [[p]] = (%s, {",
              rex::to_string(behavior.ongoing, table).c_str());
  for (std::size_t i = 0; i < behavior.returned.size(); ++i) {
    if (i != 0) std::printf(", ");
    std::printf("%s", rex::to_string(behavior.returned[i].regex,
                                     table).c_str());
  }
  std::printf("})\n");
  std::printf("infer(p) = %s\n",
              rex::to_string(ir::infer(p), table).c_str());
  std::printf("simplified = %s\n",
              rex::to_string(ir::infer_simplified(p), table).c_str());
  shelley::bench::end_banner();
}

void BM_DerivesExample1(benchmark::State& state) {
  SymbolTable table;
  const ir::Program p = example_program(table);
  const Symbol a = *table.lookup("a");
  const Symbol c = *table.lookup("c");
  const Word word{a, c, a, c};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::derives(p, word, ir::Status::kOngoing));
  }
}
BENCHMARK(BM_DerivesExample1);

void BM_InferExample3(benchmark::State& state) {
  SymbolTable table;
  const ir::Program p = example_program(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::infer(p));
  }
}
BENCHMARK(BM_InferExample3);

void BM_Infer_ProgramSizeSweep(benchmark::State& state) {
  SymbolTable table;
  ir::GeneratorOptions options;
  options.max_depth = static_cast<std::size_t>(state.range(0));
  ir::ProgramGenerator generator(12345, options, table);
  std::vector<ir::Program> programs;
  std::size_t total_nodes = 0;
  for (int i = 0; i < 32; ++i) {
    programs.push_back(generator.next());
    total_nodes += programs.back()->size();
  }
  for (auto _ : state) {
    for (const ir::Program& p : programs) {
      benchmark::DoNotOptimize(ir::infer(p));
    }
  }
  state.counters["avg_nodes"] =
      static_cast<double>(total_nodes) / static_cast<double>(programs.size());
  state.SetComplexityN(static_cast<benchmark::IterationCount>(total_nodes));
}
BENCHMARK(BM_Infer_ProgramSizeSweep)->DenseRange(3, 11, 2)->Complexity();

void BM_InferSimplified_ProgramSizeSweep(benchmark::State& state) {
  SymbolTable table;
  ir::GeneratorOptions options;
  options.max_depth = static_cast<std::size_t>(state.range(0));
  ir::ProgramGenerator generator(12345, options, table);
  std::vector<ir::Program> programs;
  for (int i = 0; i < 32; ++i) programs.push_back(generator.next());
  for (auto _ : state) {
    for (const ir::Program& p : programs) {
      benchmark::DoNotOptimize(ir::infer_simplified(p));
    }
  }
}
BENCHMARK(BM_InferSimplified_ProgramSizeSweep)->DenseRange(3, 11, 2);

void BM_Derives_WordLengthSweep(benchmark::State& state) {
  SymbolTable table;
  const ir::Program p = example_program(table);
  const Symbol a = *table.lookup("a");
  const Symbol c = *table.lookup("c");
  Word word;
  for (int i = 0; i < state.range(0); ++i) {
    word.push_back(i % 2 == 0 ? a : c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::in_language(p, word));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Derives_WordLengthSweep)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

void BM_EnumerateTraces(benchmark::State& state) {
  SymbolTable table;
  const ir::Program p = example_program(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::enumerate_traces(
        p, {static_cast<std::size_t>(state.range(0)), 4}));
  }
}
BENCHMARK(BM_EnumerateTraces)->DenseRange(4, 12, 2);

}  // namespace

int main(int argc, char** argv) {
  print_figure4();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
