// Theorems 1-2 / Corollary 1: the property-check harness itself, reported
// as a benchmark -- how fast the executable mechanization validates
// soundness + completeness across random programs, and the end-to-end cost
// of the regularity pipeline (infer -> simplify -> NFA -> DFA -> minimize).
#include "bench_common.hpp"

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "ir/generator.hpp"
#include "ir/inference.hpp"
#include "ir/semantics.hpp"
#include "rex/derivative.hpp"

namespace {

using namespace shelley;

// One theorem round: both directions on one program.
bool theorem_round(const ir::Program& p, std::size_t max_length) {
  const rex::Regex inferred = ir::infer(p);
  for (const ir::Trace& trace : ir::enumerate_traces(p, {max_length, 3})) {
    if (!rex::matches(inferred, trace.word)) return false;  // Thm 1 broken
  }
  const rex::Regex simplified = rex::simplify(inferred);
  for (const Word& w : rex::enumerate_language(simplified, max_length)) {
    if (!ir::in_language(p, w)) return false;  // Thm 2 broken
  }
  return true;
}

void print_artifact() {
  shelley::bench::artifact_banner(
      "Theorems 1-2 -- property-check verdicts on random programs");
  SymbolTable table;
  ir::GeneratorOptions options;
  options.max_depth = 5;
  ir::ProgramGenerator generator(2023, options, table);
  std::size_t checked = 0;
  std::size_t sound = 0;
  for (int i = 0; i < 200; ++i) {
    const ir::Program p = generator.next();
    ++checked;
    if (theorem_round(p, 6)) ++sound;
  }
  std::printf("programs checked: %zu, sound+complete: %zu (expected %zu)\n",
              checked, sound, checked);
  shelley::bench::end_banner();
}

void BM_TheoremRound(benchmark::State& state) {
  SymbolTable table;
  ir::GeneratorOptions options;
  options.max_depth = static_cast<std::size_t>(state.range(0));
  ir::ProgramGenerator generator(99, options, table);
  std::vector<ir::Program> programs;
  for (int i = 0; i < 16; ++i) programs.push_back(generator.next());
  for (auto _ : state) {
    for (const ir::Program& p : programs) {
      benchmark::DoNotOptimize(theorem_round(p, 5));
    }
  }
}
BENCHMARK(BM_TheoremRound)->DenseRange(3, 7, 2);

void BM_RegularityPipeline(benchmark::State& state) {
  // Corollary 1 executably: program -> regex -> NFA -> DFA -> minimal DFA.
  SymbolTable table;
  ir::GeneratorOptions options;
  options.max_depth = static_cast<std::size_t>(state.range(0));
  ir::ProgramGenerator generator(7, options, table);
  std::vector<ir::Program> programs;
  for (int i = 0; i < 16; ++i) programs.push_back(generator.next());
  std::size_t states = 0;
  for (auto _ : state) {
    states = 0;
    for (const ir::Program& p : programs) {
      const fsm::Dfa dfa = fsm::minimize(fsm::determinize(
          fsm::from_regex(ir::infer_simplified(p))));
      states += dfa.state_count();
      benchmark::DoNotOptimize(dfa);
    }
  }
  state.counters["minimal_states_total"] = static_cast<double>(states);
}
BENCHMARK(BM_RegularityPipeline)->DenseRange(3, 9, 2);

void BM_ExactDecisionProcedure(benchmark::State& state) {
  // The cost of `derives` (the memoized oracle) on adversarial inputs:
  // deeply nested seq/loop with long words.
  SymbolTable table;
  const Symbol a = table.intern("a");
  ir::Program p = ir::call(a);
  for (int i = 0; i < state.range(0); ++i) {
    p = ir::seq(ir::loop(p), ir::call(a));
  }
  Word word(16, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::in_language(p, word));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactDecisionProcedure)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
