// Shared helpers for the benchmark harness: each bench binary first
// *regenerates* its paper artifact (table/figure/error message) on stdout,
// then runs its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "paper_sources.hpp"
#include "shelley/verifier.hpp"

namespace shelley::bench {

/// Builds the source text of a synthetic @sys class with `ops` operations.
/// Each operation returns the next operation (a ring), so the usage
/// automaton is a cycle; `exits_per_op` > 1 adds branching returns.
inline std::string synthetic_class(std::size_t ops,
                                   std::size_t exits_per_op = 1,
                                   const std::string& name = "Ring") {
  std::string out = "@sys\nclass " + name + ":\n";
  for (std::size_t i = 0; i < ops; ++i) {
    const std::string op = "op" + std::to_string(i);
    const std::string next = "op" + std::to_string((i + 1) % ops);
    out += i == 0 ? "    @op_initial_final\n" : "    @op_final\n";
    out += "    def " + op + "(self):\n";
    if (exits_per_op <= 1) {
      out += "        return [\"" + next + "\"]\n";
    } else {
      out += "        if x:\n";
      for (std::size_t e = 0; e + 1 < exits_per_op; ++e) {
        const std::string target =
            "op" + std::to_string((i + 1 + e) % ops);
        out += "            return [\"" + target + "\"]\n";
        if (e + 2 < exits_per_op) out += "        elif y:\n";
      }
      out += "        else:\n";
      out += "            return [\"" + next + "\"]\n";
    }
  }
  return out;
}

/// A composite class driving `subsystems` Valves through a full cycle each.
inline std::string synthetic_composite(std::size_t subsystems,
                                       const std::string& name = "Farm") {
  std::string fields = "[";
  for (std::size_t i = 0; i < subsystems; ++i) {
    if (i != 0) fields += ", ";
    fields += "\"v" + std::to_string(i) + "\"";
  }
  fields += "]";

  std::string out = "@sys(" + fields + ")\nclass " + name + ":\n";
  out += "    def __init__(self):\n";
  for (std::size_t i = 0; i < subsystems; ++i) {
    out += "        self.v" + std::to_string(i) + " = Valve()\n";
  }
  out += "    @op_initial_final\n    def run(self):\n";
  for (std::size_t i = 0; i < subsystems; ++i) {
    const std::string v = "self.v" + std::to_string(i);
    out += "        match " + v + ".test():\n";
    out += "            case [\"open\"]:\n";
    out += "                " + v + ".open()\n";
    out += "                " + v + ".close()\n";
    out += "            case [\"clean\"]:\n";
    out += "                " + v + ".clean()\n";
  }
  out += "        return [\"run\"]\n";
  return out;
}

/// Prints a banner separating the regenerated artifact from the timings.
inline void artifact_banner(const char* what) {
  std::printf("==== regenerated artifact: %s ====\n", what);
}

inline void end_banner() {
  std::printf("==== timings ====\n");
  std::fflush(stdout);
}

}  // namespace shelley::bench
