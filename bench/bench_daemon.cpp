// Warm daemon vs cold CLI on the ring-200 bench: what a shelleyd session
// saves over re-running shelleyc per request.
//
// The cold benchmark pays what every shelleyc invocation pays -- a fresh
// workspace, a full parse, a full verify.  The warm benchmark is one
// persistent workspace + query engine answering the same request again,
// the way the daemon holds them across requests: the parse memo and the
// report memo hit, and only the render runs.  The artifact section proves
// the warm answer byte-identical first (a wrong replay would make the
// timings meaningless); tools/bench_to_json.sh folds the ratio into
// BENCH_automata.json as "daemon_verify".
#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/query.hpp"
#include "engine/workspace.hpp"

namespace {

using namespace shelley;

constexpr std::size_t kRingOps = 200;
constexpr std::size_t kRingExits = 8;

const std::string& ring_source() {
  static const std::string source =
      shelley::bench::synthetic_class(kRingOps, kRingExits);
  return source;
}

/// One cold shelleyc-shaped run: fresh workspace, parse, verify, render.
std::string cold_run() {
  engine::Workspace workspace;
  workspace.load_source("ring.py", ring_source());
  engine::QueryEngine engine(workspace);
  const core::Report report = engine.verify_all(1);
  return report.render(workspace.verifier().symbols());
}

/// One warm daemon request against a persistent engine.
std::string warm_request(engine::QueryEngine& engine) {
  engine.workspace().rewind_to_loaded();
  const core::Report report = engine.verify_all(1);
  return report.render(engine.workspace().verifier().symbols());
}

void print_artifact() {
  shelley::bench::artifact_banner(
      "demand-driven engine: ring-200 warm daemon vs cold CLI");
  const std::string cold = cold_run();

  engine::Workspace workspace;
  workspace.load_source("ring.py", ring_source());
  engine::QueryEngine engine(workspace);
  (void)warm_request(engine);  // the priming request (a cold one)
  const std::string warm = warm_request(engine);
  const engine::QueryStats stats = engine.stats();

  std::printf("ring: %zu ops, %zu exits/op\n", kRingOps, kRingExits);
  std::printf("warm request: %llu report hits, %llu misses\n",
              static_cast<unsigned long long>(stats.report_hits),
              static_cast<unsigned long long>(stats.report_misses));
  std::printf("byte-identical to cold CLI: %s\n",
              cold == warm ? "yes" : "NO");
  if (cold != warm || stats.report_hits == 0) {
    std::fprintf(stderr, "bench_daemon: warm replay diverged\n");
    std::exit(1);
  }
  shelley::bench::end_banner();
}

void BM_DaemonRing200_ColdCli(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cold_run());
  }
}
BENCHMARK(BM_DaemonRing200_ColdCli)->Unit(benchmark::kMillisecond);

void BM_DaemonRing200_Warm(benchmark::State& state) {
  engine::Workspace workspace;
  workspace.load_source("ring.py", ring_source());
  engine::QueryEngine engine(workspace);
  (void)warm_request(engine);  // populate the memo once
  for (auto _ : state) {
    benchmark::DoNotOptimize(warm_request(engine));
  }
  if (engine.stats().report_misses > 1) {
    // Every timed iteration must be a memo hit.
    std::fprintf(stderr, "bench_daemon: warm loop fell out of the memo\n");
    std::exit(1);
  }
}
BENCHMARK(BM_DaemonRing200_Warm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
