// Figure 1: the Valve diagram automatically generated from annotations.
// Regenerates the DOT rendering, then times each pipeline stage (parse,
// extract, usage automaton, diagram emission).
#include "bench_common.hpp"

#include "fsm/ops.hpp"
#include "upy/parser.hpp"
#include "shelley/automata.hpp"
#include "viz/dot.hpp"

namespace {

using namespace shelley;

void print_figure1() {
  shelley::bench::artifact_banner("Figure 1 -- Valve diagram (DOT)");
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  std::printf("%s",
              viz::dot_class_diagram(*verifier.find_class("Valve")).c_str());
  shelley::bench::end_banner();
}

void BM_ParseValve(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(upy::parse_module(examples::kValveSource));
  }
}
BENCHMARK(BM_ParseValve);

void BM_ExtractValveSpec(benchmark::State& state) {
  const upy::Module module = upy::parse_module(examples::kValveSource);
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(
        core::extract_class_spec(module.classes.at(0), diagnostics));
  }
}
BENCHMARK(BM_ExtractValveSpec);

void BM_ValveUsageAutomaton(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const core::ClassSpec* valve = verifier.find_class("Valve");
  for (auto _ : state) {
    SymbolTable table;
    const fsm::Nfa nfa = core::usage_nfa(*valve, table);
    benchmark::DoNotOptimize(fsm::minimize(fsm::determinize(nfa)));
  }
}
BENCHMARK(BM_ValveUsageAutomaton);

void BM_EmitValveDiagram(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const core::ClassSpec* valve = verifier.find_class("Valve");
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::dot_class_diagram(*valve));
  }
}
BENCHMARK(BM_EmitValveDiagram);

void BM_FullPipelineValve(benchmark::State& state) {
  for (auto _ : state) {
    core::Verifier verifier;
    verifier.add_source(examples::kValveSource);
    benchmark::DoNotOptimize(verifier.verify_all());
  }
}
BENCHMARK(BM_FullPipelineValve);

}  // namespace

int main(int argc, char** argv) {
  print_figure1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
