// Multi-session socket server throughput: hundreds of interleaved client
// sessions against one in-process SocketServer over real Unix sockets.
//
// Eight client threads each replay 32 sequential sessions (load valve,
// verify, edit, verify, shutdown) against one server sharing a memo tier
// and the process thread pool, so the run covers connection churn, the
// round-robin scheduler under contention, and cross-session memo hits.
// Per-request latency is measured client-side (send to reply); the final
// stdout line is one JSON object -- throughput plus latency quantiles --
// that tools/bench_to_json.sh splices into BENCH_automata.json as
// "server_sessions" and tools/check_bench_regression.sh gates.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/driver.hpp"
#include "engine/server.hpp"
#include "paper_sources.hpp"
#include "support/json.hpp"

namespace {

using namespace shelley;

constexpr int kClients = 8;
constexpr int kSessionsPerClient = 32;

/// One blocking NDJSON exchange: send the line, read exactly one reply.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      std::fprintf(stderr, "bench_server: connect failed\n");
      std::exit(1);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string request(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        std::fprintf(stderr, "bench_server: send failed\n");
        std::exit(1);
      }
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string reply = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        std::fprintf(stderr, "bench_server: connection lost\n");
        std::exit(1);
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bench_server_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string valve_path = (dir / "valve.py").string();
  {
    std::ofstream out(valve_path, std::ios::binary);
    out << examples::kValveSource;
  }

  // The per-session request script: load, verify, edit, verify, revert,
  // shutdown -- the editor loop shape, with the second verify a memo miss
  // (edited sources) and the others cross-session hits.
  std::string edited = examples::kValveSource;
  const auto pos = edited.find("return [\"test\"]");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "bench_server: unexpected valve source\n");
    return 1;
  }
  edited.replace(pos, 15, "return [\"test\", \"clean\"]");
  const auto json_request = [&](auto fill) {
    JsonWriter writer;
    writer.begin_object();
    fill(writer);
    writer.end_object();
    return writer.str();
  };
  const std::vector<std::string> script = {
      json_request([&](JsonWriter& w) {
        w.key("cmd").value("load");
        w.key("files").begin_array();
        w.value(valve_path);
        w.end_array();
      }),
      R"({"cmd":"verify","jobs":1})",
      json_request([&](JsonWriter& w) {
        w.key("cmd").value("update");
        w.key("file").value(valve_path);
        w.key("text").value(edited);
      }),
      R"({"cmd":"verify","jobs":1})",
      json_request([&](JsonWriter& w) {
        w.key("cmd").value("update");
        w.key("file").value(valve_path);
        w.key("text").value(examples::kValveSource);
      }),
      R"({"cmd":"shutdown"})",
  };

  engine::CliOptions defaults;
  defaults.jobs = 1;
  engine::SocketServer::Options options;
  options.socket_path = (dir / "shelleyd.sock").string();
  engine::SocketServer server(defaults, options, /*cache=*/nullptr);
  std::ostringstream server_err;
  if (!server.start(server_err)) {
    std::fprintf(stderr, "bench_server: %s\n", server_err.str().c_str());
    return 1;
  }
  std::thread serving([&server] { (void)server.serve(); });

  std::vector<std::uint64_t> latencies_us;
  std::mutex latencies_mutex;
  std::uint64_t bad_replies = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::uint64_t> local;
      local.reserve(kSessionsPerClient * script.size());
      std::uint64_t local_bad = 0;
      for (int s = 0; s < kSessionsPerClient; ++s) {
        Client client(options.socket_path);
        for (const std::string& line : script) {
          const auto start = std::chrono::steady_clock::now();
          const std::string reply = client.request(line);
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
          if (reply.find("\"ok\":true") == std::string::npos) ++local_bad;
        }
      }
      const std::lock_guard<std::mutex> lock(latencies_mutex);
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      bad_replies += local_bad;
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  server.request_stop();
  serving.join();

  const engine::Scheduler::Stats stats = server.scheduler().stats();
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto requests = latencies_us.size();
  const double throughput =
      wall_ms > 0 ? 1000.0 * static_cast<double>(requests) / wall_ms : 0.0;

  std::fprintf(stderr,
               "bench_server: %d clients x %d sessions, %zu requests in "
               "%.1f ms (%.0f req/s), %llu bad replies, %llu rejected\n",
               kClients, kSessionsPerClient, requests, wall_ms, throughput,
               static_cast<unsigned long long>(bad_replies),
               static_cast<unsigned long long>(stats.rejected));
  std::filesystem::remove_all(dir);
  if (bad_replies != 0 || stats.rejected != 0 ||
      requests != static_cast<std::size_t>(kClients) * kSessionsPerClient *
                      script.size()) {
    std::fprintf(stderr, "bench_server: run invalid; not reporting\n");
    return 1;
  }

  // The one stdout line: the JSON object bench_to_json.sh splices in.
  std::printf(
      "{\"clients\":%d,\"sessions\":%d,\"requests\":%zu,"
      "\"wall_ms\":%.1f,\"throughput_rps\":%.1f,"
      "\"p50_us\":%llu,\"p90_us\":%llu,\"p99_us\":%llu,\"max_us\":%llu}\n",
      kClients, kClients * kSessionsPerClient, requests, wall_ms, throughput,
      static_cast<unsigned long long>(percentile(latencies_us, 0.50)),
      static_cast<unsigned long long>(percentile(latencies_us, 0.90)),
      static_cast<unsigned long long>(percentile(latencies_us, 0.99)),
      static_cast<unsigned long long>(
          latencies_us.empty() ? 0 : latencies_us.back()));
  return 0;
}
