// The two LTLf claim engines head to head (docs/ARCHITECTURE.md): the
// on-the-fly tableau (ltlf/tableau.hpp) against the progression-DFA oracle
// (ltlf/automaton.hpp) on the two workloads that separate them --
//
//   * shallow counterexample: the claim is violated a step or two into the
//     system, so the tableau's early exit touches a handful of frames while
//     the oracle still pays the full determinize-and-product pipeline;
//   * deep proof: the claim holds, so both engines must exhaust the whole
//     reachable product and the comparison is honest apples-to-apples.
//
// System size is the sweep axis (a ring of N states), which is exactly the
// shape the demand-driven engine meets per class.
#include "bench_common.hpp"

#include "fsm/nfa.hpp"
#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/parser.hpp"
#include "ltlf/tableau.hpp"

namespace {

using namespace shelley;

struct RingFixture {
  SymbolTable table;
  Symbol a = table.intern("step");
  Symbol brk = table.intern("brk");
  std::vector<Symbol> alphabet{a, brk};

  /// A ring of `n` states: `step` advances, state 0 additionally offers
  /// `brk` (also advancing), every state is accepting.  The `brk` edge is
  /// what the shallow family's violated invariant trips over immediately;
  /// because every `brk` is followed by `step` (or the trace ends), the
  /// deep family's `G (brk -> N step)` genuinely holds and forces a full
  /// sweep.
  fsm::Nfa ring(std::size_t n) const {
    fsm::Nfa nfa;
    for (std::size_t i = 0; i < n; ++i) (void)nfa.add_state();
    for (std::size_t i = 0; i < n; ++i) {
      nfa.add_transition(static_cast<fsm::StateId>(i), a,
                         static_cast<fsm::StateId>((i + 1) % n));
      nfa.mark_accepting(static_cast<fsm::StateId>(i));
    }
    nfa.add_transition(0, brk, static_cast<fsm::StateId>(1 % n));
    nfa.mark_initial(0);
    return nfa;
  }
};

void print_artifact() {
  shelley::bench::artifact_banner(
      "ltlf engines: tableau vs progression-DFA oracle");
  RingFixture fixture;
  const fsm::Nfa nfa = fixture.ring(64);
  const ltlf::Formula violated = ltlf::parse("G !brk", fixture.table);
  const ltlf::Formula held = ltlf::parse("G (brk -> N step)", fixture.table);
  const ltlf::TableauResult shallow =
      ltlf::check_tableau(nfa, fixture.alphabet, violated);
  const ltlf::TableauResult deep =
      ltlf::check_tableau(nfa, fixture.alphabet, held);
  std::printf("ring(64): shallow verdict=%s after %zu frames, "
              "deep verdict=%s after %zu frames\n",
              shallow.verdict == ltlf::TableauVerdict::kCounterexample
                  ? "counterexample"
                  : "holds",
              shallow.frames,
              deep.verdict == ltlf::TableauVerdict::kHolds ? "holds"
                                                           : "counterexample",
              deep.frames);
  shelley::bench::end_banner();
}

// -- Shallow counterexample: violated one letter in ------------------------

void BM_LtlfShallow_Tableau(benchmark::State& state) {
  RingFixture fixture;
  const fsm::Nfa nfa = fixture.ring(static_cast<std::size_t>(state.range(0)));
  const ltlf::Formula f = ltlf::parse("G !brk", fixture.table);
  for (auto _ : state) {
    const auto result = ltlf::check_tableau(nfa, fixture.alphabet, f);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LtlfShallow_Tableau)->Arg(16)->Arg(128)->Arg(512);

void BM_LtlfShallow_Dfa(benchmark::State& state) {
  RingFixture fixture;
  const fsm::Nfa nfa = fixture.ring(static_cast<std::size_t>(state.range(0)));
  const ltlf::Formula f = ltlf::parse("G !brk", fixture.table);
  for (auto _ : state) {
    const auto witness = ltlf::counterexample(
        fsm::minimize(fsm::determinize(nfa, fixture.alphabet)), f);
    benchmark::DoNotOptimize(witness);
  }
}
BENCHMARK(BM_LtlfShallow_Dfa)->Arg(16)->Arg(128)->Arg(512);

// -- Deep proof: the claim holds, both engines sweep everything ------------

void BM_LtlfDeep_Tableau(benchmark::State& state) {
  RingFixture fixture;
  const fsm::Nfa nfa = fixture.ring(static_cast<std::size_t>(state.range(0)));
  const ltlf::Formula f =
      ltlf::parse("G (brk -> N step)", fixture.table);
  for (auto _ : state) {
    const auto result = ltlf::check_tableau(nfa, fixture.alphabet, f);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LtlfDeep_Tableau)->Arg(16)->Arg(128)->Arg(512);

void BM_LtlfDeep_Dfa(benchmark::State& state) {
  RingFixture fixture;
  const fsm::Nfa nfa = fixture.ring(static_cast<std::size_t>(state.range(0)));
  const ltlf::Formula f =
      ltlf::parse("G (brk -> N step)", fixture.table);
  for (auto _ : state) {
    const auto witness = ltlf::counterexample(
        fsm::minimize(fsm::determinize(nfa, fixture.alphabet)), f);
    benchmark::DoNotOptimize(witness);
  }
}
BENCHMARK(BM_LtlfDeep_Dfa)->Arg(16)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
