// Active model inference (L*): query complexity and wall-clock versus the
// size of the target specification -- the hand-rolled counterpart of
// LearnLib/AALpy benchmarks, with static extraction as the baseline.
#include "bench_common.hpp"

#include "fsm/ops.hpp"
#include "learn/lstar.hpp"
#include "shelley/automata.hpp"
#include "upy/parser.hpp"

namespace {

using namespace shelley;

fsm::Dfa ring_target(std::size_t ops, SymbolTable& table) {
  core::Verifier verifier;
  verifier.add_source(shelley::bench::synthetic_class(ops));
  return fsm::minimize(fsm::determinize(
      core::usage_nfa(*verifier.find_class("Ring"), table)));
}

void print_artifact() {
  shelley::bench::artifact_banner(
      "L* model inference vs static extraction");
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  SymbolTable& table = verifier.symbols();
  const fsm::Dfa target = fsm::minimize(fsm::determinize(
      core::usage_nfa(*verifier.find_class("Valve"), table)));
  learn::DfaTeacher teacher(target);
  const learn::LearnResult result =
      learn::learn_dfa(teacher, target.alphabet());
  std::printf("Valve: learned %zu-state model in %zu rounds, "
              "%zu membership + %zu equivalence queries; "
              "equivalent to extraction: %s\n",
              result.dfa.state_count(), result.rounds,
              result.membership_queries, result.equivalence_queries,
              fsm::equivalent(result.dfa, target) ? "yes" : "NO");
  shelley::bench::end_banner();
}

void BM_LStar_RingSweep(benchmark::State& state) {
  SymbolTable table;
  const fsm::Dfa target =
      ring_target(static_cast<std::size_t>(state.range(0)), table);
  std::size_t queries = 0;
  for (auto _ : state) {
    learn::DfaTeacher teacher(target);
    const learn::LearnResult result =
        learn::learn_dfa(teacher, target.alphabet());
    queries = result.membership_queries;
    benchmark::DoNotOptimize(result);
  }
  state.counters["membership_queries"] = static_cast<double>(queries);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LStar_RingSweep)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity();

void BM_StaticExtraction_RingSweep(benchmark::State& state) {
  // Baseline: the paper's route on the same targets.
  core::Verifier verifier;
  verifier.add_source(shelley::bench::synthetic_class(
      static_cast<std::size_t>(state.range(0))));
  const core::ClassSpec* ring = verifier.find_class("Ring");
  for (auto _ : state) {
    SymbolTable table;
    benchmark::DoNotOptimize(
        fsm::minimize(fsm::determinize(core::usage_nfa(*ring, table))));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StaticExtraction_RingSweep)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity();

void BM_Ablation_LStarClassic(benchmark::State& state) {
  SymbolTable table;
  const fsm::Dfa target =
      ring_target(static_cast<std::size_t>(state.range(0)), table);
  std::size_t queries = 0;
  for (auto _ : state) {
    learn::DfaTeacher teacher(target);
    const learn::LearnResult result = learn::learn_dfa(
        teacher, target.alphabet(), 4096,
        learn::CexStrategy::kAllPrefixes);
    queries = result.membership_queries;
    benchmark::DoNotOptimize(result);
  }
  state.counters["membership_queries"] = static_cast<double>(queries);
}
BENCHMARK(BM_Ablation_LStarClassic)->DenseRange(2, 10, 4);

void BM_Ablation_LStarRivestSchapire(benchmark::State& state) {
  SymbolTable table;
  const fsm::Dfa target =
      ring_target(static_cast<std::size_t>(state.range(0)), table);
  std::size_t queries = 0;
  for (auto _ : state) {
    learn::DfaTeacher teacher(target);
    const learn::LearnResult result = learn::learn_dfa(
        teacher, target.alphabet(), 4096,
        learn::CexStrategy::kRivestSchapire);
    queries = result.membership_queries;
    benchmark::DoNotOptimize(result);
  }
  state.counters["membership_queries"] = static_cast<double>(queries);
}
BENCHMARK(BM_Ablation_LStarRivestSchapire)->DenseRange(2, 10, 4);

void BM_LStar_ValveThroughDfaTeacher(benchmark::State& state) {
  SymbolTable table;
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const fsm::Dfa target = fsm::minimize(fsm::determinize(
      core::usage_nfa(*verifier.find_class("Valve"), table)));
  for (auto _ : state) {
    learn::DfaTeacher teacher(target);
    benchmark::DoNotOptimize(learn::learn_dfa(teacher, target.alphabet()));
  }
}
BENCHMARK(BM_LStar_ValveThroughDfaTeacher);

void BM_WMethodEquivalence(benchmark::State& state) {
  SymbolTable table;
  const fsm::Dfa target =
      ring_target(static_cast<std::size_t>(state.range(0)), table);
  std::size_t tests = 0;
  for (auto _ : state) {
    learn::WMethodTeacher teacher(
        [&](const Word& word) { return target.accepts(word); },
        target.alphabet(), /*extra_states=*/1);
    const learn::LearnResult result =
        learn::learn_dfa(teacher, target.alphabet());
    tests = teacher.tests_executed();
    benchmark::DoNotOptimize(result);
  }
  state.counters["conformance_tests"] = static_cast<double>(tests);
}
BENCHMARK(BM_WMethodEquivalence)->DenseRange(2, 10, 4);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
