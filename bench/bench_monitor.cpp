// Streaming-monitor throughput: the compiled ring-200 table checking
// pre-encoded SMEV event frames through monitor::StreamChecker.
//
// The stream is a seeded valid random walk (every event legal for its
// device), so the hot path is the pure table sweep: decode + route + step
// with no violation reporting.  Two configurations run over identical
// bytes -- single shard and a multi-shard fleet -- plus a violation-heavy
// control stream to keep the reporting path honest.  The final stdout
// line is one JSON object (ns/event, events/sec, per-batch latency
// quantiles) that tools/bench_to_json.sh splices into BENCH_automata.json
// as "monitor_stream" and tools/check_bench_regression.sh gates.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fsm/ops.hpp"
#include "fsm/table.hpp"
#include "monitor/stream.hpp"
#include "shelley/automata.hpp"
#include "shelley/spec.hpp"
#include "upy/parser.hpp"

namespace {

using namespace shelley;

constexpr std::size_t kRingOps = 200;
constexpr std::size_t kRingExits = 8;
constexpr std::size_t kDevices = 256;
constexpr std::size_t kEventsPerBatch = std::size_t{1} << 16;
constexpr std::size_t kBatches = 64;  // ~4.2M events per configuration

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct RunResult {
  double ns_per_event = 0;
  double events_per_sec = 0;
  std::uint64_t p50_batch_us = 0;
  std::uint64_t p99_batch_us = 0;
  std::uint64_t events = 0;
  std::uint64_t violations = 0;
};

/// Feeds every pre-encoded frame body through a fresh checker, timing each
/// ingest_binary call (decode + route + parallel sweep) as one batch.
RunResult run_stream(const fsm::CompiledDfa& table,
                     const std::vector<std::string>& bodies,
                     std::size_t shards) {
  monitor::StreamChecker::Options options;
  options.shards = shards;
  monitor::StreamChecker checker(table, options);
  std::vector<std::uint64_t> batch_us;
  batch_us.reserve(bodies.size());
  const auto started = std::chrono::steady_clock::now();
  for (const std::string& body : bodies) {
    const auto batch_start = std::chrono::steady_clock::now();
    checker.ingest_binary(body);
    batch_us.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  }
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  std::sort(batch_us.begin(), batch_us.end());
  RunResult result;
  result.events = checker.stats().events;
  result.violations = checker.stats().violations;
  result.ns_per_event = total_ns / static_cast<double>(result.events);
  result.events_per_sec =
      1e9 * static_cast<double>(result.events) / total_ns;
  result.p50_batch_us = percentile(batch_us, 0.50);
  result.p99_batch_us = percentile(batch_us, 0.99);
  return result;
}

void print_result(const char* key, std::size_t shards,
                  const RunResult& result) {
  std::printf(
      "\"%s\":{\"shards\":%zu,\"events\":%llu,\"violations\":%llu,"
      "\"ns_per_event\":%.2f,\"events_per_sec\":%.0f,"
      "\"p50_batch_us\":%llu,\"p99_batch_us\":%llu}",
      key, shards, static_cast<unsigned long long>(result.events),
      static_cast<unsigned long long>(result.violations),
      result.ns_per_event, result.events_per_sec,
      static_cast<unsigned long long>(result.p50_batch_us),
      static_cast<unsigned long long>(result.p99_batch_us));
}

}  // namespace

int main() {
  // Compile the ring-200 table the way the engine does: spec -> usage NFA
  // -> determinize -> minimize -> dense table.
  const std::string source =
      shelley::bench::synthetic_class(kRingOps, kRingExits);
  const upy::Module module = upy::parse_module(source);
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);
  SymbolTable symbols;
  const fsm::Dfa dfa =
      fsm::minimize(fsm::determinize(core::usage_nfa(spec, symbols)));
  const fsm::CompiledDfa table = fsm::CompiledDfa::compile(dfa, symbols);

  // Pre-encode the whole stream as SMEV frame bodies: a seeded valid
  // random walk per device, so timing covers only the checker.
  std::vector<std::string> device_names;
  device_names.reserve(kDevices);
  for (std::size_t i = 0; i < kDevices; ++i) {
    device_names.push_back("dev" + std::to_string(i));
  }
  std::vector<std::string> op_names;
  for (const std::string& name : table.event_names()) {
    op_names.push_back(name);
  }
  std::mt19937_64 rng(0xb33fc200u);
  std::vector<std::uint32_t> device_state(kDevices, table.initial());
  std::vector<fsm::CompiledDfa::Letter> allowed;
  std::vector<std::string> bodies;
  bodies.reserve(kBatches);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> events;
  events.reserve(kEventsPerBatch);
  for (std::size_t batch = 0; batch < kBatches; ++batch) {
    events.clear();
    for (std::size_t i = 0; i < kEventsPerBatch; ++i) {
      const auto device =
          static_cast<std::uint32_t>(rng() % kDevices);
      allowed.clear();
      table.allowed_letters(device_state[device], allowed);
      const fsm::CompiledDfa::Letter letter =
          allowed[rng() % allowed.size()];
      device_state[device] = table.step(device_state[device], letter);
      events.emplace_back(device, letter);
    }
    // Frame bodies only (no SMEV magic/size header): ingest_binary is the
    // unit under test; framing is exercised by the CLI tests.
    std::string frame =
        monitor::encode_binary_frame(device_names, op_names, events);
    bodies.push_back(frame.substr(12));
  }

  // Control stream: every second op is illegal, exercising report
  // construction and the latched fast path.
  std::vector<std::string> hostile_bodies;
  {
    events.clear();
    for (std::size_t i = 0; i < kEventsPerBatch; ++i) {
      const auto device = static_cast<std::uint32_t>(rng() % kDevices);
      events.emplace_back(device,
                          static_cast<std::uint32_t>(rng() % op_names.size()));
    }
    std::string frame =
        monitor::encode_binary_frame(device_names, op_names, events);
    hostile_bodies.push_back(frame.substr(12));
  }

  const std::size_t wide = std::max<std::size_t>(
      2, std::min<std::size_t>(8, std::thread::hardware_concurrency()));
  const RunResult single = run_stream(table, bodies, 1);
  const RunResult sharded = run_stream(table, bodies, wide);
  const RunResult hostile = run_stream(table, hostile_bodies, 1);

  std::printf("{\"ring_ops\":%zu,\"ring_exits\":%zu,\"devices\":%zu,"
              "\"table_states\":%u,\"table_letters\":%u,",
              kRingOps, kRingExits, kDevices, table.state_count(),
              table.letter_count());
  print_result("single", 1, single);
  std::printf(",");
  print_result("sharded", wide, sharded);
  std::printf(",");
  print_result("hostile", 1, hostile);
  std::printf("}\n");
  return 0;
}
