// Table 1: Shelley's annotations, where to apply them, and their meanings.
// Regenerates the table by decoding a class that uses all seven
// annotations, then times annotation decoding and spec extraction.
#include "bench_common.hpp"

#include "shelley/annotations.hpp"
#include "shelley/spec.hpp"
#include "upy/parser.hpp"

namespace {

constexpr const char* kAllAnnotations = R"py(
@claim("G (a.open -> F a.close)")
@sys(["a"])
class Everything:
    def __init__(self):
        self.a = Valve()

    @op_initial
    def begin(self):
        return ["middle"]

    @op
    def middle(self):
        return ["stop", "once"]

    @op_final
    def stop(self):
        return ["begin"]

    @op_initial_final
    def once(self):
        return []
)py";

void print_table1() {
  using namespace shelley;
  shelley::bench::artifact_banner("Table 1 -- annotations and meanings");
  const upy::Module module = upy::parse_module(kAllAnnotations);
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);

  std::printf("| %-22s | %-8s | %s\n", "Annotation", "Applies", "Decoded as");
  std::printf("| @claim(\"...\")          | class    | temporal requirement: %s\n",
              spec.claims.at(0).text.c_str());
  std::printf("| @sys([\"a\"])            | class    | composite class, subsystems:");
  for (const auto& subsystem : spec.subsystems) {
    std::printf(" %s:%s", subsystem.field.c_str(),
                subsystem.class_name.c_str());
  }
  std::printf("\n");
  for (const auto& op : spec.operations) {
    const char* meaning = op.initial && op.final
                              ? "invoke in first and last places"
                          : op.initial ? "invoke in first place"
                          : op.final   ? "invoke in last place"
                                       : "invoke in between";
    std::printf("| @op%-19s | method   | %-10s: %s\n",
                op.initial && op.final ? "_initial_final"
                : op.initial          ? "_initial"
                : op.final            ? "_final"
                                      : "",
                op.name.c_str(), meaning);
  }
  shelley::bench::end_banner();
}

void BM_DecodeClassAnnotations(benchmark::State& state) {
  using namespace shelley;
  const upy::Module module = upy::parse_module(kAllAnnotations);
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(
        core::decode_class_annotations(module.classes.at(0), diagnostics));
  }
}
BENCHMARK(BM_DecodeClassAnnotations);

void BM_DecodeOpAnnotations(benchmark::State& state) {
  using namespace shelley;
  const upy::Module module = upy::parse_module(kAllAnnotations);
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    for (const upy::FunctionDef& method : module.classes.at(0).methods) {
      benchmark::DoNotOptimize(
          core::decode_op_annotation(method, diagnostics));
    }
  }
}
BENCHMARK(BM_DecodeOpAnnotations);

void BM_ExtractSpec_AnnotatedClass(benchmark::State& state) {
  using namespace shelley;
  const std::string source =
      shelley::bench::synthetic_class(static_cast<std::size_t>(state.range(0)));
  const upy::Module module = upy::parse_module(source);
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(
        core::extract_class_spec(module.classes.at(0), diagnostics));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractSpec_AnnotatedClass)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
