// Scaling and ablation benchmarks for the design decisions called out in
// DESIGN.md:
//
//   #1 interned symbols vs string-keyed lookups for event labels;
//   #2 raw vs smart-constructor (simplified) regexes downstream;
//   scalability sweeps the paper's restricted model implies: number of
//   operations, exits per operation, subsystems per composite, claim size.
#include "bench_common.hpp"

#include <map>
#include <string>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "fsm/to_regex.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/parser.hpp"
#include "shelley/automata.hpp"
#include "shelley/checker.hpp"
#include "support/alloc.hpp"
#include "upy/parser.hpp"

namespace {

using namespace shelley;

void print_artifact() {
  shelley::bench::artifact_banner(
      "scaling sweeps (ops, exits, subsystems, claim size) + ablations");
  std::printf("see timings below; counters carry model sizes\n");
  shelley::bench::end_banner();
}

// -- Sweep: operations per class ------------------------------------------------

void BM_UsageAutomaton_OpsSweep(benchmark::State& state) {
  const std::string source = shelley::bench::synthetic_class(
      static_cast<std::size_t>(state.range(0)), 2);
  const upy::Module module = upy::parse_module(source);
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);
  std::size_t states = 0;
  for (auto _ : state) {
    SymbolTable table;
    const fsm::Dfa dfa =
        fsm::minimize(fsm::determinize(core::usage_nfa(spec, table)));
    states = dfa.state_count();
    benchmark::DoNotOptimize(dfa);
  }
  state.counters["minimal_states"] = static_cast<double>(states);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UsageAutomaton_OpsSweep)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

// -- Sweep: exits per operation --------------------------------------------------

void BM_UsageAutomaton_ExitsSweep(benchmark::State& state) {
  const std::string source = shelley::bench::synthetic_class(
      16, static_cast<std::size_t>(state.range(0)));
  const upy::Module module = upy::parse_module(source);
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);
  for (auto _ : state) {
    SymbolTable table;
    benchmark::DoNotOptimize(
        fsm::determinize(core::usage_nfa(spec, table)));
  }
}
BENCHMARK(BM_UsageAutomaton_ExitsSweep)->DenseRange(1, 6, 1);

// -- Sweep: subsystems per composite ---------------------------------------------

void BM_CompositeCheck_SubsystemSweep(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(shelley::bench::synthetic_composite(
      static_cast<std::size_t>(state.range(0))));
  const core::ClassSpec* farm = verifier.find_class("Farm");
  const core::ClassLookup lookup = [&](const std::string& name) {
    return verifier.find_class(name);
  };
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(core::check_composite(
        *farm, lookup, verifier.symbols(), diagnostics));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompositeCheck_SubsystemSweep)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity();

// -- Sweep: claim size -------------------------------------------------------------

void BM_LtlfToDfa_FormulaSizeSweep(benchmark::State& state) {
  SymbolTable table;
  // G (e0 -> X (e1 -> X (e2 -> ...)))  -- nested response chains.
  std::string text;
  for (int i = 0; i < state.range(0); ++i) {
    text += "G (e" + std::to_string(i) + " -> X ";
  }
  text += "true";
  for (int i = 0; i < state.range(0); ++i) text += ")";
  const ltlf::Formula formula = ltlf::parse(text, table);
  std::vector<Symbol> sigma;
  for (int i = 0; i < state.range(0); ++i) {
    sigma.push_back(table.intern("e" + std::to_string(i)));
  }
  std::size_t states = 0;
  for (auto _ : state) {
    const fsm::Dfa dfa = ltlf::to_dfa(formula, sigma);
    states = dfa.state_count();
    benchmark::DoNotOptimize(dfa);
  }
  state.counters["dfa_states"] = static_cast<double>(states);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LtlfToDfa_FormulaSizeSweep)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity();

// -- Ablation #1: interned symbols vs string maps ----------------------------------

void BM_Ablation_InternedTransitionLookup(benchmark::State& state) {
  SymbolTable table;
  std::vector<Symbol> alphabet;
  for (int i = 0; i < 64; ++i) {
    alphabet.push_back(table.intern("subsystem.op" + std::to_string(i)));
  }
  std::sort(alphabet.begin(), alphabet.end());
  fsm::Dfa dfa(64, alphabet);
  for (fsm::StateId s = 0; s < 64; ++s) {
    for (std::size_t letter = 0; letter < alphabet.size(); ++letter) {
      dfa.set_transition(s, letter,
                         static_cast<fsm::StateId>((s + letter) % 64));
    }
  }
  Word word;
  for (int i = 0; i < 1024; ++i) word.push_back(alphabet[i % 64]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfa.run(word));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Ablation_InternedTransitionLookup);

void BM_Ablation_StringKeyedTransitionLookup(benchmark::State& state) {
  // The same machine with a std::map<std::string, ...> transition table --
  // what the implementation would look like without interning.
  std::vector<std::string> alphabet;
  for (int i = 0; i < 64; ++i) {
    alphabet.push_back("subsystem.op" + std::to_string(i));
  }
  std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> table;
  for (std::uint32_t s = 0; s < 64; ++s) {
    for (std::uint32_t letter = 0; letter < 64; ++letter) {
      table[{s, alphabet[letter]}] = (s + letter) % 64;
    }
  }
  std::vector<std::string> word;
  for (int i = 0; i < 1024; ++i) word.push_back(alphabet[i % 64]);
  for (auto _ : state) {
    std::uint32_t current = 0;
    for (const std::string& event : word) {
      current = table.at({current, event});
    }
    benchmark::DoNotOptimize(current);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Ablation_StringKeyedTransitionLookup);

// -- Ablation #2: raw vs simplified regexes downstream ------------------------------

void BM_Ablation_DeterminizeRawRegex(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  DiagnosticEngine diagnostics;
  const auto behaviors = core::extract_behaviors(
      *verifier.find_class("BadSector"), verifier.symbols(), diagnostics);
  for (auto _ : state) {
    for (const auto& [name, behavior] : behaviors) {
      rex::Regex raw = behavior.behavior.ongoing;
      for (const auto& returned : behavior.behavior.returned) {
        raw = rex::alt(raw, returned.regex);
      }
      benchmark::DoNotOptimize(
          fsm::determinize(fsm::from_regex(raw)));
    }
  }
}
BENCHMARK(BM_Ablation_DeterminizeRawRegex);

void BM_Ablation_DeterminizeSimplifiedRegex(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  DiagnosticEngine diagnostics;
  const auto behaviors = core::extract_behaviors(
      *verifier.find_class("BadSector"), verifier.symbols(), diagnostics);
  for (auto _ : state) {
    for (const auto& [name, behavior] : behaviors) {
      benchmark::DoNotOptimize(
          fsm::determinize(fsm::from_regex(behavior.inferred)));
    }
  }
}
BENCHMARK(BM_Ablation_DeterminizeSimplifiedRegex);

// -- Ablation: Moore vs Brzozowski minimization --------------------------------

fsm::Dfa ring_dfa(std::size_t ops) {
  core::Verifier verifier;
  verifier.add_source(shelley::bench::synthetic_class(ops, 2));
  SymbolTable table;
  return fsm::determinize(
      core::usage_nfa(*verifier.find_class("Ring"), table));
}

void BM_Ablation_MinimizeMoore(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::minimize_moore(dfa));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Ablation_MinimizeMoore)->RangeMultiplier(2)->Range(4, 64)
    ->Complexity();

void BM_Ablation_MinimizeBrzozowski(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::minimize_brzozowski(dfa));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Ablation_MinimizeBrzozowski)->RangeMultiplier(2)->Range(4, 64)
    ->Complexity();

// -- Automata-kernel micro-benchmarks (minimize / inclusion / equivalence) -----
//
// The production-sized rings the verifier meets in practice: 50..400
// operations, i.e. DFAs with ~100..800 states over alphabets of the same
// order.  Each new algorithm is benchmarked against the eager reference it
// replaced; the eager product references stop at 200 ops because the
// materialized n·m product at 400 ops costs ~1 GB.

/// The seed's eager inclusion check: full difference product + BFS.
std::optional<Word> eager_inclusion(const fsm::Dfa& a, const fsm::Dfa& b) {
  std::vector<Symbol> joined = a.alphabet();
  joined.insert(joined.end(), b.alphabet().begin(), b.alphabet().end());
  std::sort(joined.begin(), joined.end());
  joined.erase(std::unique(joined.begin(), joined.end()), joined.end());
  return fsm::shortest_word(fsm::product(fsm::extend_alphabet(a, joined),
                                         fsm::extend_alphabet(b, joined),
                                         fsm::ProductMode::kDifference));
}

/// The tentpole target: determinize+minimize on the ring-N family (the
/// branching rings the incremental/daemon benches verify end to end), timed
/// with the heap-allocation counter alongside so the flat-kernel claims --
/// time *and* allocations -- are recorded in BENCH_automata.json.
void BM_Kernel_DeterminizeMinimize(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(shelley::bench::synthetic_class(
      static_cast<std::size_t>(state.range(0)), 8));
  SymbolTable table;
  const fsm::Nfa nfa =
      core::usage_nfa(*verifier.find_class("Ring"), table);
  std::size_t states = 0;
  // One warmup outside the timed loop so thread-local scratch pools are
  // already grown; the steady-state allocation count is the claim.
  benchmark::DoNotOptimize(fsm::minimize(fsm::determinize(nfa)));
  const std::uint64_t allocs_before = support::alloc::allocation_count();
  std::uint64_t iters = 0;
  for (auto _ : state) {
    const fsm::Dfa minimal = fsm::minimize(fsm::determinize(nfa));
    states = minimal.state_count();
    ++iters;
    benchmark::DoNotOptimize(minimal);
  }
  const std::uint64_t allocs =
      support::alloc::allocation_count() - allocs_before;
  state.counters["minimal_states"] = static_cast<double>(states);
  state.counters["heap_allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(iters == 0 ? 1 : iters);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Kernel_DeterminizeMinimize)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Complexity();

void BM_Minimize_Hopcroft(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::minimize_hopcroft(dfa));
  }
  state.counters["states"] = static_cast<double>(dfa.state_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Minimize_Hopcroft)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Complexity();

void BM_Minimize_Moore(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::minimize_moore(dfa));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Minimize_Moore)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Complexity();

void BM_Inclusion_Lazy(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  const fsm::Dfa minimal = fsm::minimize(dfa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::inclusion_witness(dfa, minimal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Inclusion_Lazy)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Complexity();

void BM_Inclusion_EagerProduct(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  const fsm::Dfa minimal = fsm::minimize(dfa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eager_inclusion(dfa, minimal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Inclusion_EagerProduct)->Arg(50)->Arg(100)->Arg(200)
    ->Complexity();

void BM_Equivalence_UnionFind(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  const fsm::Dfa minimal = fsm::minimize(dfa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::equivalent(dfa, minimal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Equivalence_UnionFind)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Complexity();

void BM_Equivalence_EagerProduct(benchmark::State& state) {
  const fsm::Dfa dfa = ring_dfa(static_cast<std::size_t>(state.range(0)));
  const fsm::Dfa minimal = fsm::minimize(dfa);
  for (auto _ : state) {
    const bool eq = !eager_inclusion(dfa, minimal).has_value() &&
                    !eager_inclusion(minimal, dfa).has_value();
    benchmark::DoNotOptimize(eq);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Equivalence_EagerProduct)->Arg(50)->Arg(100)->Arg(200)
    ->Complexity();

// -- Usage language back to a regex (Kleene round trip) -------------------------

void BM_UsageLanguageToRegex(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(shelley::bench::synthetic_class(
      static_cast<std::size_t>(state.range(0))));
  const core::ClassSpec* spec = verifier.find_class("Ring");
  std::size_t regex_size = 0;
  for (auto _ : state) {
    SymbolTable table;
    const rex::Regex r = fsm::to_regex(core::usage_nfa(*spec, table));
    regex_size = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["regex_nodes"] = static_cast<double>(regex_size);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UsageLanguageToRegex)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
