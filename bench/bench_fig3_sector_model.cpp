// Figure 3 / §3.1: the Shelley model (method-dependency graph) of class
// Sector.  Regenerates the graph and its DOT rendering, then times
// dependency extraction and behavior extraction as the class grows.
#include "bench_common.hpp"

#include "shelley/automata.hpp"
#include "shelley/graph.hpp"
#include "upy/parser.hpp"
#include "viz/dot.hpp"

namespace {

using namespace shelley;

void print_figure3() {
  shelley::bench::artifact_banner(
      "Figure 3 -- Shelley model of class Sector (DOT)");
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kSectorSource);
  const core::ClassSpec* sector = verifier.find_class("Sector");
  const core::DependencyGraph graph =
      core::DependencyGraph::build(*sector, verifier.diagnostics());
  std::printf("nodes=%zu edges=%zu\n%s", graph.nodes().size(),
              graph.edges().size(),
              viz::dot_dependency_graph(*sector, graph).c_str());
  shelley::bench::end_banner();
}

void BM_DependencyGraph_Sector(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kSectorSource);
  const core::ClassSpec* sector = verifier.find_class("Sector");
  for (auto _ : state) {
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(
        core::DependencyGraph::build(*sector, diagnostics));
  }
}
BENCHMARK(BM_DependencyGraph_Sector);

void BM_BehaviorExtraction_Sector(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kSectorSource);
  const core::ClassSpec* sector = verifier.find_class("Sector");
  for (auto _ : state) {
    SymbolTable table;
    DiagnosticEngine diagnostics;
    benchmark::DoNotOptimize(
        core::extract_behaviors(*sector, table, diagnostics));
  }
}
BENCHMARK(BM_BehaviorExtraction_Sector);

void BM_DependencyGraph_Scaling(benchmark::State& state) {
  const std::string source = shelley::bench::synthetic_class(
      static_cast<std::size_t>(state.range(0)), 2);
  const upy::Module module = upy::parse_module(source);
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);
  for (auto _ : state) {
    DiagnosticEngine inner;
    benchmark::DoNotOptimize(core::DependencyGraph::build(spec, inner));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DependencyGraph_Scaling)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_DotEmission_Sector(benchmark::State& state) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kSectorSource);
  const core::ClassSpec* sector = verifier.find_class("Sector");
  DiagnosticEngine diagnostics;
  const core::DependencyGraph graph =
      core::DependencyGraph::build(*sector, diagnostics);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::dot_dependency_graph(*sector, graph));
  }
}
BENCHMARK(BM_DotEmission_Sector);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
