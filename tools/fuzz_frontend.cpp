// fuzz_frontend -- deterministic mutation fuzzer for the whole frontend.
//
//   fuzz_frontend <corpus_dir> [iterations] [seed]
//
// Reads the seed corpus (sorted by filename, so runs are reproducible),
// then repeatedly mutates a random seed and feeds it through the pipeline
// that matches its extension:
//
//   .py           lex -> recovery parse -> spec extraction -> verify_all
//   .rex          rex::parse
//   .ltlf         ltlf::parse -> to_dfa (under a tight state budget)
//   .smv          smv::parse_model
//   .shc          cache entry decode (framing + verdict payload + DFA/table)
//   .ndjson       StreamChecker NDJSON event ingestion
//   .smev         StreamChecker binary (SMEV) frame decode
//
// The contract under test is the never-crash guarantee: every input either
// succeeds or fails with a structured diagnostic/ParseError (ResourceError
// included).  Any other exception -- or a crash/hang, which ctest's TIMEOUT
// catches -- is a bug; the offending input is dumped for reproduction.
//
// Everything is deterministic: fixed RNG seed, no wall-clock dependence in
// the mutation schedule (the per-iteration deadline only bounds runaway
// inputs and never changes what counts as a failure).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "fsm/serialize.hpp"
#include "fsm/table.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/parser.hpp"
#include "monitor/stream.hpp"
#include "rex/parser.hpp"
#include "shelley/cache.hpp"
#include "shelley/verifier.hpp"
#include "smv/parser.hpp"
#include "support/guard.hpp"
#include "support/hash.hpp"

namespace {

using namespace shelley;

struct SeedInput {
  std::string name;
  std::string extension;
  std::string content;
};

std::vector<SeedInput> load_corpus(const std::filesystem::path& dir) {
  std::vector<SeedInput> corpus;
  if (!std::filesystem::is_directory(dir)) return corpus;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream file(entry.path(), std::ios::binary);
    std::stringstream buffer;
    buffer << file.rdbuf();
    corpus.push_back(SeedInput{entry.path().filename().string(),
                               entry.path().extension().string(),
                               buffer.str()});
  }
  // directory_iterator order is unspecified; sort for determinism.
  std::sort(corpus.begin(), corpus.end(),
            [](const SeedInput& a, const SeedInput& b) {
              return a.name < b.name;
            });
  return corpus;
}

/// Tokens the mutator splices in: frontend keywords, structure characters,
/// and line-ending variants, so mutations reach deep into the grammars.
const char* const kDictionary[] = {
    "(",    ")",      ":",     "\n",     "\r\n",   "\t",    "    ",
    "\\",   "\"",     "def ",  "class ", "return", "@op",   "@sys",
    "@claim", "if ",  "else",  "match ", "case ",  "self.", "+",
    "*",    "G ",     "F ",    "X ",     "U ",     "!",     "&",
    "|",    "->",     "MODULE", "state =", "event =", "[",   "]",
    ",",    "#",      "end",   "0",      "\x01",   "\xff",
};

std::string mutate(const std::string& seed,
                   const std::vector<SeedInput>& corpus,
                   std::mt19937_64& rng) {
  std::string out = seed;
  const auto rand_index = [&](std::size_t bound) {
    return static_cast<std::size_t>(rng() % bound);
  };
  const std::size_t rounds = 1 + rand_index(8);
  for (std::size_t round = 0; round < rounds; ++round) {
    switch (rng() % 6) {
      case 0: {  // flip a byte
        if (out.empty()) break;
        out[rand_index(out.size())] =
            static_cast<char>(rng() % 256);
        break;
      }
      case 1: {  // delete a span
        if (out.empty()) break;
        const std::size_t begin = rand_index(out.size());
        const std::size_t length = 1 + rand_index(16);
        out.erase(begin, length);
        break;
      }
      case 2: {  // duplicate a span
        if (out.empty() || out.size() > (1u << 16)) break;
        const std::size_t begin = rand_index(out.size());
        const std::size_t length =
            1 + rand_index(std::min<std::size_t>(64, out.size() - begin));
        out.insert(rand_index(out.size() + 1),
                   out.substr(begin, length));
        break;
      }
      case 3: {  // insert a dictionary token
        const std::size_t count = sizeof(kDictionary) / sizeof(*kDictionary);
        out.insert(rand_index(out.size() + 1), kDictionary[rng() % count]);
        break;
      }
      case 4: {  // truncate
        if (out.empty()) break;
        out.resize(rand_index(out.size()));
        break;
      }
      default: {  // splice a prefix of another corpus file
        const SeedInput& other = corpus[rand_index(corpus.size())];
        if (other.content.empty()) break;
        out.insert(rand_index(out.size() + 1),
                   other.content.substr(
                       0, 1 + rand_index(other.content.size())));
        break;
      }
    }
  }
  return out;
}

/// The compiled table the event-stream fuzz targets walk: a small two-op
/// lifecycle, built once.  The checker is reconstructed per input so a
/// poisoned state never leaks between iterations.
const fsm::CompiledDfa& fuzz_table() {
  static SymbolTable symbols;
  static const fsm::CompiledDfa table = [] {
    fsm::Dfa dfa(2, {symbols.intern("start"), symbols.intern("stop")});
    dfa.set_transition(0, 0, 1);  // start: idle -> busy
    dfa.set_transition(0, 1, 0);  // stop from idle loops (self-loop default)
    dfa.set_transition(1, 0, 1);
    dfa.set_transition(1, 1, 0);  // stop: busy -> idle
    dfa.set_accepting(0, true);
    return fsm::CompiledDfa::compile(dfa, symbols);
  }();
  return table;
}

/// Runs one mutated input through the pipeline for its extension.  Returns
/// true when the contract held (success or structured error).
bool run_one(const std::string& extension, const std::string& input) {
  // Tight budgets keep each iteration bounded: pathological inputs fail
  // fast with a ResourceError instead of churning.
  support::guard::Limits limits;
  limits.max_recursion_depth = 64;
  limits.max_input_bytes = 1u << 20;
  limits.max_states = 512;
  limits.timeout_ms = 2000;
  support::guard::ScopedLimits scoped(limits);
  try {
    if (extension == ".rex") {
      SymbolTable table;
      (void)rex::parse(input, table);
    } else if (extension == ".ltlf") {
      SymbolTable table;
      const ltlf::Formula formula = ltlf::parse(input, table);
      (void)ltlf::to_dfa(formula, {});
    } else if (extension == ".smv") {
      (void)smv::parse_model(input);
    } else if (extension == ".ndjson") {
      // The streaming monitor's text surface: malformed lines must be
      // counted, never thrown; partial trailing lines stay unconsumed.
      monitor::StreamChecker checker(fuzz_table());
      std::string stream = input;
      const std::size_t consumed = checker.ingest_ndjson(stream);
      if (consumed < stream.size()) {
        stream.erase(0, consumed);
        stream.push_back('\n');
        (void)checker.ingest_ndjson(stream);
      }
      (void)checker.stats();
      (void)checker.violations();
    } else if (extension == ".smev") {
      // The binary frame decoder: mutated frames either parse and check,
      // stop at a partial frame, or reject with BinaryFormatError -- and a
      // rejected frame must have checked nothing from that frame.
      monitor::StreamChecker checker(fuzz_table());
      try {
        (void)monitor::ingest_binary_stream(checker, input);
      } catch (const support::BinaryFormatError&) {
        // Structured rejection is the contract.
      }
      (void)checker.stats();
    } else if (extension == ".shc") {
      // The cache loader's adversarial surface: mutated entries must decode
      // to nullopt (a structured miss) or a valid value -- never crash.
      // The expected key is recovered from the file image itself (bytes
      // 9..24) so framing-intact mutants exercise the payload decoders too.
      support::Digest128 key;
      if (input.size() >= 25) {
        const auto read_u64 = [&](std::size_t at) {
          std::uint64_t value = 0;
          for (int b = 7; b >= 0; --b) {
            value = (value << 8) |
                    static_cast<unsigned char>(input[at + static_cast<std::size_t>(b)]);
          }
          return value;
        };
        key.lo = read_u64(9);
        key.hi = read_u64(17);
      }
      for (const auto kind : {core::BehaviorCache::Kind::kVerdict,
                              core::BehaviorCache::Kind::kDfa,
                              core::BehaviorCache::Kind::kArtifact,
                              core::BehaviorCache::Kind::kTable}) {
        if (const auto payload =
                core::BehaviorCache::decode_file(input, key, kind)) {
          (void)core::BehaviorCache::decode_verdict(*payload);
          try {
            SymbolTable table;
            (void)fsm::dfa_from_bytes(*payload, table);
          } catch (const support::BinaryFormatError&) {
            // Structured rejection is the contract.
          }
          try {
            SymbolTable table;
            (void)fsm::CompiledDfa::from_bytes(*payload, table);
          } catch (const support::BinaryFormatError&) {
            // Structured rejection is the contract.
          }
        }
      }
      (void)core::BehaviorCache::decode_verdict(input);
    } else {
      core::Verifier verifier;
      (void)verifier.add_source_recover(input);
      const core::Report report = verifier.verify_all();
      (void)report.ok();
      (void)report.render(verifier.symbols());
    }
  } catch (const ParseError&) {
    // Structured failure (includes ResourceError) -- exactly the contract.
  }
  return true;
}

void dump_input(const std::string& input) {
  std::cerr << "--- offending input (" << input.size() << " bytes) ---\n";
  for (const char c : input) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte == '\n' || (byte >= 0x20 && byte < 0x7f)) {
      std::cerr << c;
    } else {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\x%02x", byte);
      std::cerr << buffer;
    }
  }
  std::cerr << "\n--- end ---\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fuzz_frontend <corpus_dir> [iterations] [seed]\n";
    return 2;
  }
  const std::filesystem::path corpus_dir = argv[1];
  const std::size_t iterations =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 10000;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  const std::vector<SeedInput> corpus = load_corpus(corpus_dir);
  if (corpus.empty()) {
    std::cerr << "fuzz_frontend: no corpus files in " << corpus_dir << "\n";
    return 2;
  }

  // With FUZZ_FRONTEND_LAST=<path> set, every input is persisted before it
  // runs, so even a hard crash (segfault, abort) leaves its reproducer and
  // iteration number on disk.
  const char* last_path = std::getenv("FUZZ_FRONTEND_LAST");

  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < iterations; ++i) {
    const SeedInput& base = corpus[rng() % corpus.size()];
    const std::string input = mutate(base.content, corpus, rng);
    if (last_path != nullptr) {
      std::ofstream last(last_path, std::ios::binary | std::ios::trunc);
      last << "iteration " << i << " seed-file " << base.name << "\n";
      last << input;
    }
    try {
      if (!run_one(base.extension, input)) {
        dump_input(input);
        return 1;
      }
    } catch (const std::exception& error) {
      std::cerr << "fuzz_frontend: iteration " << i << " (" << base.name
                << "): unexpected " << error.what() << "\n";
      dump_input(input);
      return 1;
    } catch (...) {
      std::cerr << "fuzz_frontend: iteration " << i << " (" << base.name
                << "): unexpected non-standard exception\n";
      dump_input(input);
      return 1;
    }
  }
  std::cout << "fuzz_frontend: " << iterations << " iterations on "
            << corpus.size() << " seeds, 0 crashes\n";
  return 0;
}
