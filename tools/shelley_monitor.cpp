// shelley-monitor -- the streaming-monitor front door: compiles one
// verified class's usage DFA into a dense transition table (cold, or warm
// through --cache) and checks event streams against it at millions of
// events per second.
//
//   shelley-monitor --class NAME spec.py... [--events FILE]
//       check an NDJSON event stream ({"device":...,"op":...} per line;
//       FILE defaults to stdin)
//   shelley-monitor --class NAME spec.py... --events FILE --format binary
//       check a length-prefixed SMEV binary stream (see docs/MONITORING.md)
//   shelley-monitor --class NAME spec.py... --emit-binary OUT [--events F]
//       convert an NDJSON stream to SMEV frames and exit
//
// Options: --shards N (parallel device shards), --max-violations N
// (reports retained), --cache DIR (warm table artifacts), --stats
// (throughput to stderr), --quiet (summary only).
//
// Exit status: 0 when the stream is violation-free, 1 when violations were
// found, 2 on usage/input errors (unknown class, unreadable files,
// malformed binary framing).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/driver.hpp"
#include "engine/query.hpp"
#include "engine/workspace.hpp"
#include "monitor/stream.hpp"
#include "shelley/cache.hpp"
#include "support/guard.hpp"
#include "support/json.hpp"

namespace {

using namespace shelley;

struct MonitorOptions {
  std::vector<std::string> files;
  std::string class_name;
  std::optional<std::string> events_file;  // absent = stdin
  bool binary = false;
  std::size_t shards = 1;
  std::size_t max_violations = 1024;
  std::optional<std::string> cache_dir;
  bool cache_stats = false;
  bool stats = false;
  bool quiet = false;
  std::optional<std::string> emit_binary;
  bool help = false;
};

void print_usage(std::ostream& out) {
  out << "usage: shelley-monitor --class NAME [options] <file.py>...\n"
         "  --events FILE        event stream (default: stdin)\n"
         "  --format ndjson|binary\n"
         "                       input format (default: ndjson)\n"
         "  --shards N           parallel device shards (default: 1)\n"
         "  --max-violations N   violation reports retained (default: 1024)\n"
         "  --cache DIR          behavior cache for warm table compiles\n"
         "  --cache-stats        print cache counters after the run\n"
         "  --stats              print throughput to stderr\n"
         "  --quiet              suppress per-violation lines\n"
         "  --emit-binary OUT    convert the NDJSON input to SMEV frames\n"
         "  --help               this text\n";
}

std::optional<MonitorOptions> parse_args(int argc, char** argv,
                                         std::ostream& err) {
  MonitorOptions options;
  const auto value = [&](int& i, const char* flag) -> std::optional<std::string> {
    if (i + 1 >= argc) {
      err << "shelley-monitor: " << flag << " needs a value\n";
      return std::nullopt;
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    } else if (arg == "--class") {
      const auto v = value(i, "--class");
      if (!v) return std::nullopt;
      options.class_name = *v;
    } else if (arg == "--events") {
      const auto v = value(i, "--events");
      if (!v) return std::nullopt;
      options.events_file = *v;
    } else if (arg == "--format") {
      const auto v = value(i, "--format");
      if (!v) return std::nullopt;
      if (*v == "binary") {
        options.binary = true;
      } else if (*v == "ndjson") {
        options.binary = false;
      } else {
        err << "shelley-monitor: unknown format '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--shards") {
      const auto v = value(i, "--shards");
      if (!v) return std::nullopt;
      options.shards = static_cast<std::size_t>(std::stoul(*v));
    } else if (arg == "--max-violations") {
      const auto v = value(i, "--max-violations");
      if (!v) return std::nullopt;
      options.max_violations = static_cast<std::size_t>(std::stoul(*v));
    } else if (arg == "--cache") {
      const auto v = value(i, "--cache");
      if (!v) return std::nullopt;
      options.cache_dir = *v;
    } else if (arg == "--cache-stats") {
      options.cache_stats = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--emit-binary") {
      const auto v = value(i, "--emit-binary");
      if (!v) return std::nullopt;
      options.emit_binary = *v;
    } else if (!arg.empty() && arg.front() == '-') {
      err << "shelley-monitor: unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      options.files.emplace_back(arg);
    }
  }
  if (options.class_name.empty()) {
    err << "shelley-monitor: --class is required\n";
    return std::nullopt;
  }
  if (options.files.empty()) {
    err << "shelley-monitor: no input files\n";
    return std::nullopt;
  }
  return options;
}

/// Streams `in` through `consume(buffer, final)`; consume returns the bytes
/// it used, the rest is carried into the next chunk.
template <typename Fn>
bool pump(std::istream& in, Fn&& consume) {
  std::string pending;
  std::string chunk(1 << 20, '\0');
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    pending.append(chunk.data(), static_cast<std::size_t>(got));
    const std::size_t used = consume(pending, false);
    pending.erase(0, used);
  }
  const std::size_t used = consume(pending, true);
  pending.erase(0, used);
  return pending.empty();
}

/// NDJSON -> SMEV converter (--emit-binary): one frame per ~1M events.
int emit_binary(const MonitorOptions& options, std::istream& in,
                std::ostream& err) {
  std::ofstream out(*options.emit_binary, std::ios::binary | std::ios::trunc);
  if (!out) {
    err << "shelley-monitor: cannot write '" << *options.emit_binary << "'\n";
    return 2;
  }
  constexpr std::size_t kFrameEvents = 1u << 20;
  std::vector<std::string> devices;
  std::unordered_map<std::string, std::uint32_t> device_index;
  std::vector<std::string> ops;
  std::unordered_map<std::string, std::uint32_t> op_index;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> events;
  std::uint64_t malformed = 0;
  const auto flush_frame = [&] {
    if (events.empty()) return;
    const std::string frame = monitor::encode_binary_frame(devices, ops, events);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    devices.clear();
    device_index.clear();
    ops.clear();
    op_index.clear();
    events.clear();
  };
  const auto intern = [](std::vector<std::string>& names,
                         std::unordered_map<std::string, std::uint32_t>& index,
                         const std::string& name) {
    const auto it = index.find(name);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names.size());
    names.push_back(name);
    index.emplace(name, id);
    return id;
  };
  pump(in, [&](const std::string& buffer, bool final) {
    std::size_t consumed = 0;
    while (true) {
      std::size_t end = buffer.find('\n', consumed);
      if (end == std::string::npos) {
        if (!final || consumed >= buffer.size()) break;
        end = buffer.size();
      }
      const std::string_view line(buffer.data() + consumed, end - consumed);
      consumed = end < buffer.size() ? end + 1 : end;
      if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
      try {
        const JsonValue value = parse_json(line);
        const JsonValue* device = value.find("device");
        const JsonValue* op = value.find("op");
        if (device == nullptr || op == nullptr || !device->is_string() ||
            !op->is_string()) {
          ++malformed;
          continue;
        }
        events.emplace_back(intern(devices, device_index, device->as_string()),
                            intern(ops, op_index, op->as_string()));
        if (events.size() >= kFrameEvents) flush_frame();
      } catch (const JsonParseError&) {
        ++malformed;
      }
    }
    return consumed;
  });
  flush_frame();
  if (malformed != 0) {
    err << "shelley-monitor: skipped " << malformed << " malformed lines\n";
  }
  return out.good() ? 0 : 2;
}

void print_violation(const monitor::Violation& violation, std::ostream& out) {
  out << "violation: device '" << violation.device << "' event #"
      << violation.event_index << ": operation '" << violation.operation
      << "'";
  if (violation.loc.known()) out << " (declared at " << to_string(violation.loc) << ")";
  out << " not allowed";
  if (!violation.allowed.empty()) {
    out << " (allowed:";
    for (const std::string& name : violation.allowed) out << " " << name;
    out << ")";
  }
  out << "\n";
}

int run(const MonitorOptions& options, std::istream& stdin_stream,
        std::ostream& out, std::ostream& err) {
  // Default resource guards cover the compile path, like shelleyc.
  const support::guard::ScopedLimits guard{support::guard::Limits{}};

  engine::Workspace workspace;
  std::optional<core::BehaviorCache> cache;
  if (options.cache_dir) {
    try {
      cache.emplace(*options.cache_dir);
    } catch (const std::exception& error) {
      err << "shelley-monitor: " << error.what() << "\n";
      return 2;
    }
    workspace.set_cache(&*cache);
  }
  engine::QueryEngine engine(workspace);
  if (engine::load_inputs(workspace, options.files, err)) return 2;
  const core::ClassSpec* spec =
      workspace.verifier().find_class(options.class_name);
  if (spec == nullptr) {
    err << "shelley-monitor: unknown class '" << options.class_name << "'\n";
    return 2;
  }

  std::ifstream file;
  std::istream* events = &stdin_stream;
  if (options.events_file) {
    file.open(*options.events_file, std::ios::binary);
    if (!file) {
      err << "shelley-monitor: cannot open events file '"
          << *options.events_file << "'\n";
      return 2;
    }
    events = &file;
  }

  if (options.emit_binary) return emit_binary(options, *events, err);

  monitor::StreamChecker::Options checker_options;
  checker_options.shards = options.shards;
  checker_options.max_violations = options.max_violations;
  monitor::StreamChecker checker(engine.compiled_table(*spec),
                                 checker_options);
  {
    std::unordered_map<std::string, SourceLoc> locations;
    for (const core::Operation& op : spec->operations) {
      locations.emplace(op.name, op.loc);
    }
    checker.set_source_locations(std::move(locations));
  }

  const auto started = std::chrono::steady_clock::now();
  bool clean_input = true;
  if (options.binary) {
    try {
      clean_input = pump(*events, [&](const std::string& buffer, bool) {
        return monitor::ingest_binary_stream(checker, buffer);
      });
    } catch (const support::BinaryFormatError& error) {
      err << "shelley-monitor: malformed binary stream: " << error.what()
          << "\n";
      return 2;
    }
    if (!clean_input) {
      err << "shelley-monitor: event stream ends mid-frame\n";
      return 2;
    }
  } else {
    pump(*events, [&](const std::string& buffer, bool final) {
      std::size_t used = checker.ingest_ndjson(buffer);
      if (final && used < buffer.size()) {
        // Flush an unterminated last line.
        std::string tail(buffer, used);
        tail.push_back('\n');
        checker.ingest_ndjson(tail);
        used = buffer.size();
      }
      return used;
    });
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;

  if (!options.quiet) {
    for (const monitor::Violation& violation : checker.violations()) {
      print_violation(violation, out);
    }
  }
  const monitor::StreamStats& stats = checker.stats();
  out << "events " << stats.events << ", ok " << stats.ok << ", violations "
      << stats.violations << ", malformed " << stats.malformed << ", devices "
      << stats.devices << " (completed " << checker.completed_devices()
      << ", violated " << checker.violated_devices() << ", incomplete "
      << checker.incomplete_devices() << ")\n";
  if (stats.violations_dropped != 0) {
    out << "(" << stats.violations_dropped
        << " additional violation reports dropped)\n";
  }
  if (options.stats) {
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
            .count();
    const double rate =
        seconds > 0 ? static_cast<double>(stats.events) / seconds : 0.0;
    err << "monitor-stats: " << stats.events << " events in "
        << static_cast<std::uint64_t>(seconds * 1e6) << " us ("
        << static_cast<std::uint64_t>(rate) << " events/s, " << options.shards
        << " shard" << (options.shards == 1 ? "" : "s") << ")\n";
  }
  if (options.cache_stats && cache) {
    const core::CacheStats disk = cache->stats();
    err << "cache-stats: hits " << disk.hits << ", misses " << disk.misses
        << ", invalidations " << disk.invalidations << ", stores "
        << disk.stores << "\n";
  }
  return stats.violations != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv, std::cerr);
  if (!options) {
    print_usage(std::cerr);
    return 2;
  }
  if (options->help) {
    print_usage(std::cout);
    return 0;
  }
  try {
    return run(*options, std::cin, std::cout, std::cerr);
  } catch (const std::exception& error) {
    std::cerr << "shelley-monitor: internal error: " << error.what() << "\n";
  } catch (...) {
    std::cerr << "shelley-monitor: internal error\n";
  }
  return 2;
}
