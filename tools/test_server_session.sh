#!/bin/sh
# Process-level exercise of the multi-session socket server: one
# `shelleyd --socket` process serves four concurrent `shelleyd --connect`
# clients, and each client's reply bytes must be identical to a dedicated
# single-session stdio daemon fed the same request sequence.  A final
# client stops the server with {"cmd":"shutdown","scope":"server"}.
#
# Usage: test_server_session.sh <shelleyd-binary> <workdir>
set -eu

SHELLEYD=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

cat > "$DIR/valve.py" <<'EOF'
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
EOF

cat > "$DIR/valve2.py" <<'EOF'
@sys
class Valve2:
    @op_initial_final
    def ping(self):
        return []
EOF

# Four distinct sessions: overlapping files, serial and parallel verifies,
# all ending in a plain per-session shutdown.  No stats/metrics (their
# replies are timing-dependent by design).
cat > "$DIR/req_1.txt" <<EOF
{"cmd":"version"}
{"cmd":"load","files":["$DIR/valve.py"]}
{"cmd":"verify","jobs":1}
{"cmd":"shutdown"}
EOF
cat > "$DIR/req_2.txt" <<EOF
{"cmd":"load","files":["$DIR/valve.py","$DIR/valve2.py"]}
{"cmd":"verify","jobs":2}
{"cmd":"report","jobs":1}
{"cmd":"shutdown"}
EOF
cat > "$DIR/req_3.txt" <<EOF
{"cmd":"load","files":["$DIR/valve2.py"]}
{"cmd":"verify","jobs":1}
{"cmd":"verify","jobs":1}
{"cmd":"shutdown"}
EOF
cat > "$DIR/req_4.txt" <<EOF
{"cmd":"version"}
{"cmd":"load","files":["$DIR/valve.py"]}
{"cmd":"report","jobs":2}
{"cmd":"verify","jobs":1}
{"cmd":"shutdown"}
EOF

# References: each sequence against its own dedicated stdio daemon.
for i in 1 2 3 4; do
  "$SHELLEYD" < "$DIR/req_$i.txt" > "$DIR/expected_$i.txt"
done

SOCK=$DIR/shelleyd.sock
"$SHELLEYD" --socket "$SOCK" 2> "$DIR/server_stderr.txt" &
SERVER_PID=$!

tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: server socket never appeared" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

# All four clients at once against the one server.
for i in 1 2 3 4; do
  "$SHELLEYD" --connect "$SOCK" < "$DIR/req_$i.txt" > "$DIR/actual_$i.txt" &
  eval "CLIENT_$i=\$!"
done
status=0
for i in 1 2 3 4; do
  eval "wait \$CLIENT_$i" || status=1
done

for i in 1 2 3 4; do
  if ! cmp -s "$DIR/expected_$i.txt" "$DIR/actual_$i.txt"; then
    echo "FAIL: client $i replies differ from the dedicated daemon" >&2
    diff "$DIR/expected_$i.txt" "$DIR/actual_$i.txt" >&2 || true
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
fi

# scope:"server" stops the whole process, not just this session.
printf '{"cmd":"shutdown","scope":"server"}\n' | \
  "$SHELLEYD" --connect "$SOCK" > /dev/null
wait "$SERVER_PID"

echo "server session OK: 4 clients byte-identical"
