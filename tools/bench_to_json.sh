#!/usr/bin/env sh
# Runs the automata-kernel micro-benchmarks (minimize / inclusion /
# equivalence, bench_scaling) and writes the results as google-benchmark
# JSON to BENCH_automata.json at the repository root, augmented with the
# per-stage pipeline statistics of a full `shelleyc --stats --json` run
# (per-class automata sizes plus the global stage counters/distributions)
# under a top-level "pipeline_stats" key.
#
#   tools/bench_to_json.sh [build-dir]
#
# The build directory defaults to ./build and must already contain the
# bench_scaling binary (cmake --build build --target bench_scaling).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$root/build"}
bench="$build_dir/bench/bench_scaling"

if [ ! -x "$bench" ]; then
    echo "bench_to_json.sh: $bench not found; build it first:" >&2
    echo "  cmake --build $build_dir --target bench_scaling" >&2
    exit 1
fi

# --benchmark_out keeps the JSON clean: the binary prints a human-readable
# artifact banner on stdout first.
# min_time well above the default: the 50-state points finish in tens of
# microseconds and need the longer window for stable medians.
"$bench" \
    --benchmark_filter='Minimize|Inclusion|Equivalence' \
    --benchmark_min_time=0.3s \
    --benchmark_out="$root/BENCH_automata.json" \
    --benchmark_out_format=json

# Merge per-stage pipeline statistics into the benchmark document.  The
# stats come from verifying the paper's valve spec with the instrumented
# pipeline; shelleyc emits the whole report (including the "stats" object)
# as one line of JSON, so a trailing-brace splice keeps this POSIX-pure.
shelleyc="$build_dir/tools/shelleyc"
if [ -x "$shelleyc" ]; then
    spec=$(mktemp "${TMPDIR:-/tmp}/bench_valve.XXXXXX.py")
    trap 'rm -f "$spec"' EXIT
    cat > "$spec" <<'EOF'
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
EOF
    stats=$("$shelleyc" --stats --json "$spec")
    # Drop the benchmark document's final "}" (and trailing blank lines),
    # then splice the report in as one more top-level key.
    out="$root/BENCH_automata.json"
    tmp="$out.tmp"
    awk 'NR > 1 { print prev }
         { prev = $0 }
         END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
    printf ',"pipeline_stats":%s}\n' "$stats" >> "$tmp"
    mv "$tmp" "$out"
else
    echo "bench_to_json.sh: $shelleyc not found; skipping pipeline_stats" >&2
fi

echo "wrote $root/BENCH_automata.json"
