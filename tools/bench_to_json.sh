#!/usr/bin/env sh
# Runs the automata-kernel micro-benchmarks (minimize / inclusion /
# equivalence, bench_scaling) and writes the results as google-benchmark
# JSON to BENCH_automata.json at the repository root, augmented with the
# per-stage pipeline statistics of a full `shelleyc --stats --json` run
# (per-class automata sizes plus the global stage counters/distributions)
# under a top-level "pipeline_stats" key.
#
#   tools/bench_to_json.sh [build-dir]
#
# The build directory defaults to ./build and must already contain the
# bench_scaling binary (cmake --build build --target bench_scaling).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$root/build"}
bench="$build_dir/bench/bench_scaling"

if [ ! -x "$bench" ]; then
    echo "bench_to_json.sh: $bench not found; build it first:" >&2
    echo "  cmake --build $build_dir --target bench_scaling" >&2
    exit 1
fi

# --benchmark_out keeps the JSON clean: the binary prints a human-readable
# artifact banner on stdout first.
# min_time well above the default: the 50-state points finish in tens of
# microseconds and need the longer window for stable medians.
"$bench" \
    --benchmark_filter='Minimize|Inclusion|Equivalence' \
    --benchmark_min_time=0.3s \
    --benchmark_out="$root/BENCH_automata.json" \
    --benchmark_out_format=json

# Merge per-stage pipeline statistics into the benchmark document.  The
# stats come from verifying the paper's valve spec with the instrumented
# pipeline; shelleyc emits the whole report (including the "stats" object)
# as one line of JSON, so a trailing-brace splice keeps this POSIX-pure.
shelleyc="$build_dir/tools/shelleyc"
if [ -x "$shelleyc" ]; then
    spec=$(mktemp "${TMPDIR:-/tmp}/bench_valve.XXXXXX.py")
    trap 'rm -f "$spec"' EXIT
    cat > "$spec" <<'EOF'
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
EOF
    stats=$("$shelleyc" --stats --json "$spec")
    # Drop the benchmark document's final "}" (and trailing blank lines),
    # then splice the report in as one more top-level key.
    out="$root/BENCH_automata.json"
    tmp="$out.tmp"
    awk 'NR > 1 { print prev }
         { prev = $0 }
         END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
    printf ',"pipeline_stats":%s}\n' "$stats" >> "$tmp"
    mv "$tmp" "$out"
else
    echo "bench_to_json.sh: $shelleyc not found; skipping pipeline_stats" >&2
fi

# Incremental verification: time the ring-200 class cold (cache miss + full
# pipeline + store) and warm (pure replay) through bench_incremental, check
# via the CLI that a warm `shelleyc --cache` run reproduces the cold run's
# --json report, diagnostics, and SMV model byte for byte, and splice the
# numbers in as "incremental_verify".
bench_inc="$build_dir/bench/bench_incremental"
if [ -x "$bench_inc" ] && [ -x "$shelleyc" ]; then
    work=$(mktemp -d "${TMPDIR:-/tmp}/bench_inc.XXXXXX")
    inc_json="$work/incremental.json"
    "$bench_inc" \
        --benchmark_min_time=0.3s \
        --benchmark_out="$inc_json" \
        --benchmark_out_format=json > /dev/null

    # google-benchmark reports real_time already in ms (Unit(kMillisecond)).
    bench_ms() {
        awk -F'[:,]' -v name="$1" '
            index($0, "\"" name "\"") { found = 1 }
            found && /"real_time"/ {
                gsub(/[ "]/, "", $2); print $2; exit
            }' "$inc_json"
    }
    cold_ms=$(bench_ms BM_VerifyRing200_Cold)
    warm_ms=$(bench_ms BM_VerifyRing200_Warm)
    speedup=$(awk -v c="$cold_ms" -v w="$warm_ms" \
        'BEGIN { printf "%.2f", c / w }')

    # The same ring-200 class the bench verifies (bench_common.hpp's
    # synthetic_class(200, 8)), regenerated here for the CLI check.
    ring="$work/ring200.py"
    awk 'BEGIN {
        ops = 200; exits = 8;
        print "@sys"; print "class Ring:";
        for (i = 0; i < ops; i++) {
            print (i == 0 ? "    @op_initial_final" : "    @op_final");
            printf "    def op%d(self):\n", i;
            print "        if x:";
            for (e = 0; e + 1 < exits; e++) {
                printf "            return [\"op%d\"]\n", (i + 1 + e) % ops;
                if (e + 2 < exits) print "        elif y:";
            }
            print "        else:";
            printf "            return [\"op%d\"]\n", (i + 1) % ops;
        }
    }' > "$ring"

    cache="$work/cache"
    run_cli() {
        "$shelleyc" --cache "$cache" --json "$ring" \
            > "$work/$1.json" 2> "$work/$1.err"
        "$shelleyc" --cache "$cache" --smv Ring "$ring" \
            > "$work/$1.smv" 2>> "$work/$1.err"
    }
    t0=$(date +%s%N); run_cli cold; t1=$(date +%s%N); run_cli warm
    t2=$(date +%s%N)
    cli_cold_ms=$(( (t1 - t0) / 1000000 ))
    cli_warm_ms=$(( (t2 - t1) / 1000000 ))
    byte_identical=true
    for kind in json err smv; do
        if ! cmp -s "$work/cold.$kind" "$work/warm.$kind"; then
            echo "bench_to_json.sh: warm $kind output diverged from cold" >&2
            byte_identical=false
        fi
    done

    awk 'NR > 1 { print prev }
         { prev = $0 }
         END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
    printf ',"incremental_verify":{"ring_ops":200,"ring_exits":8,%s}}\n' \
        "\"cold_ms\":$cold_ms,\"warm_ms\":$warm_ms,\"speedup\":$speedup,\
\"cli_cold_ms\":$cli_cold_ms,\"cli_warm_ms\":$cli_warm_ms,\
\"byte_identical\":$byte_identical" >> "$tmp"
    mv "$tmp" "$out"
    rm -rf "$work"
    echo "incremental_verify: cold ${cold_ms}ms warm ${warm_ms}ms" \
        "(speedup ${speedup}x, byte-identical: $byte_identical)"
else
    echo "bench_to_json.sh: bench_incremental not built; skipping" >&2
fi

# Demand-driven engine: time the ring-200 verify cold (a fresh
# workspace per request, what every shelleyc invocation pays) against warm
# (one persistent engine answering from its memo, what a shelleyd session
# pays), run a real shelleyd session over the same class as a smoke check,
# and splice the numbers in as "daemon_verify".  bench_daemon's artifact
# section already exits nonzero if the warm bytes diverge from cold.
bench_daemon="$build_dir/bench/bench_daemon"
shelleyd="$build_dir/tools/shelleyd"
if [ -x "$bench_daemon" ]; then
    work=$(mktemp -d "${TMPDIR:-/tmp}/bench_daemon.XXXXXX")
    daemon_json="$work/daemon.json"
    "$bench_daemon" \
        --benchmark_min_time=0.3s \
        --benchmark_out="$daemon_json" \
        --benchmark_out_format=json > /dev/null

    bench_daemon_ms() {
        awk -F'[:,]' -v name="$1" '
            index($0, "\"" name "\"") { found = 1 }
            found && /"real_time"/ {
                gsub(/[ "]/, "", $2); print $2; exit
            }' "$daemon_json"
    }
    cold_ms=$(bench_daemon_ms BM_DaemonRing200_ColdCli)
    warm_ms=$(bench_daemon_ms BM_DaemonRing200_Warm)
    speedup=$(awk -v c="$cold_ms" -v w="$warm_ms" \
        'BEGIN { printf "%.2f", c / w }')

    # A real daemon session over the cli_valve spec: load, verify twice
    # (the second answer comes from the memo), shutdown.  session_ok means
    # the process exited 0 and both verifies answered.
    session_ok=false
    if [ -x "$shelleyd" ]; then
        spec="$work/valve.py"
        cat > "$spec" <<'EOF'
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
EOF
        printf '{"cmd":"load","files":["%s"]}\n{"cmd":"verify","jobs":1}\n{"cmd":"verify","jobs":1}\n{"cmd":"shutdown"}\n' \
            "$spec" > "$work/requests.txt"
        if "$shelleyd" < "$work/requests.txt" > "$work/responses.txt" &&
            [ "$(grep -c 'Valve: ok' "$work/responses.txt")" = "2" ]; then
            session_ok=true
        fi
    fi

    out="$root/BENCH_automata.json"
    tmp="$out.tmp"
    awk 'NR > 1 { print prev }
         { prev = $0 }
         END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
    printf ',"daemon_verify":{"ring_ops":200,"ring_exits":8,%s}}\n' \
        "\"cold_ms\":$cold_ms,\"warm_ms\":$warm_ms,\"speedup\":$speedup,\
\"session_ok\":$session_ok" >> "$tmp"
    mv "$tmp" "$out"
    rm -rf "$work"
    echo "daemon_verify: cold ${cold_ms}ms warm ${warm_ms}ms" \
        "(speedup ${speedup}x, session_ok: $session_ok)"
else
    echo "bench_to_json.sh: bench_daemon not built; skipping" >&2
fi

# Multi-session socket server: bench_server replays 8 clients x 32
# interleaved sessions (hundreds of connections, thousands of requests)
# against one in-process server over real Unix sockets and emits one JSON
# object -- throughput plus client-side latency quantiles -- on stdout.
# Spliced in as "server_sessions"; the p50_us/p99_us/wall_ms walls are
# gated by tools/check_bench_regression.sh.
bench_server="$build_dir/bench/bench_server"
if [ -x "$bench_server" ]; then
    if server_json=$("$bench_server" 2>/dev/null | tail -n 1) &&
        [ -n "$server_json" ]; then
        out="$root/BENCH_automata.json"
        tmp="$out.tmp"
        awk 'NR > 1 { print prev }
             { prev = $0 }
             END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
        printf ',"server_sessions":%s}\n' "$server_json" >> "$tmp"
        mv "$tmp" "$out"
        echo "server_sessions: $server_json"
    else
        echo "bench_to_json.sh: bench_server run failed; skipping" >&2
    fi
else
    echo "bench_to_json.sh: bench_server not built; skipping" >&2
fi

# Dual LTLf engines: the tableau-vs-DFA-oracle families (shallow
# counterexample / deep proof, bench_ltlf) spliced in verbatim as
# "ltlf_engines".  The google-benchmark name/cpu_time lines inside are
# picked up by tools/check_bench_regression.sh's extractor, so every
# family is gated against the committed baseline automatically.
bench_ltlf="$build_dir/bench/bench_ltlf"
if [ -x "$bench_ltlf" ]; then
    work=$(mktemp -d "${TMPDIR:-/tmp}/bench_ltlf.XXXXXX")
    ltlf_json="$work/ltlf.json"
    "$bench_ltlf" \
        --benchmark_min_time=0.3s \
        --benchmark_out="$ltlf_json" \
        --benchmark_out_format=json > /dev/null

    out="$root/BENCH_automata.json"
    tmp="$out.tmp"
    awk 'NR > 1 { print prev }
         { prev = $0 }
         END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
    printf ',"ltlf_engines":' >> "$tmp"
    cat "$ltlf_json" >> "$tmp"
    printf '}\n' >> "$tmp"
    mv "$tmp" "$out"
    rm -rf "$work"
    echo "ltlf_engines: spliced $(grep -c '"name":' "$out") benchmark entries total"
else
    echo "bench_to_json.sh: bench_ltlf not built; skipping" >&2
fi

# Streaming monitor: bench_monitor sweeps ~4M pre-encoded SMEV events of a
# valid ring-200 random walk through monitor::StreamChecker (single shard,
# multi-shard, and a violation-heavy control) and emits one JSON object --
# ns/event, events/sec, per-batch latency quantiles -- on stdout.  Spliced
# in as "monitor_stream"; the ns_per_event and p99_batch_us walls are
# gated by tools/check_bench_regression.sh.
bench_monitor="$build_dir/bench/bench_monitor"
if [ -x "$bench_monitor" ]; then
    if monitor_json=$("$bench_monitor" 2>/dev/null | tail -n 1) &&
        [ -n "$monitor_json" ]; then
        out="$root/BENCH_automata.json"
        tmp="$out.tmp"
        awk 'NR > 1 { print prev }
             { prev = $0 }
             END { sub(/}[[:space:]]*$/, "", prev); print prev }' "$out" > "$tmp"
        printf ',"monitor_stream":%s}\n' "$monitor_json" >> "$tmp"
        mv "$tmp" "$out"
        echo "monitor_stream: $monitor_json"
    else
        echo "bench_to_json.sh: bench_monitor run failed; skipping" >&2
    fi
else
    echo "bench_to_json.sh: bench_monitor not built; skipping" >&2
fi

echo "wrote $root/BENCH_automata.json"
