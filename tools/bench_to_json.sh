#!/usr/bin/env sh
# Runs the automata-kernel micro-benchmarks (minimize / inclusion /
# equivalence, bench_scaling) and writes the results as google-benchmark
# JSON to BENCH_automata.json at the repository root.
#
#   tools/bench_to_json.sh [build-dir]
#
# The build directory defaults to ./build and must already contain the
# bench_scaling binary (cmake --build build --target bench_scaling).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$root/build"}
bench="$build_dir/bench/bench_scaling"

if [ ! -x "$bench" ]; then
    echo "bench_to_json.sh: $bench not found; build it first:" >&2
    echo "  cmake --build $build_dir --target bench_scaling" >&2
    exit 1
fi

# --benchmark_out keeps the JSON clean: the binary prints a human-readable
# artifact banner on stdout first.
# min_time well above the default: the 50-state points finish in tens of
# microseconds and need the longer window for stable medians.
"$bench" \
    --benchmark_filter='Minimize|Inclusion|Equivalence' \
    --benchmark_min_time=0.3s \
    --benchmark_out="$root/BENCH_automata.json" \
    --benchmark_out_format=json

echo "wrote $root/BENCH_automata.json"
