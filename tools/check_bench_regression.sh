#!/bin/sh
# Guards the committed benchmark snapshot against silent regressions:
# compares every lower-is-better metric of BENCH_automata.json against
# BENCH_automata.baseline.json and fails when any grew by more than 25%
# (override with a third argument, e.g. 1.10 for 10%).
#
#   tools/check_bench_regression.sh [current.json] [baseline.json] [ratio]
#
# Compared metrics: every google-benchmark cpu_time (keyed by benchmark
# name), the cold_ms/warm_ms walls of the spliced incremental_verify /
# daemon_verify keys, the p50_us/p99_us/wall_ms walls of the spliced
# server_sessions key, and the ns_per_event/p99_batch_us walls of each
# monitor_stream configuration.  Ignored on purpose: higher-is-better fields
# (speedup), the noisy per-class elapsed_ms inside pipeline_stats, and the
# ablation families (BM_Ablation_*, BM_*_EagerProduct) -- those measure the
# deliberately-unoptimized contrast algorithms, not shipped code paths, so
# their drift is measurement noise, not a regression.  Pure POSIX sh + awk;
# both inputs are committed files, so the check is deterministic.
set -eu

current="${1:-BENCH_automata.json}"
baseline="${2:-BENCH_automata.baseline.json}"
ratio="${3:-1.25}"

for file in "$current" "$baseline"; do
  if [ ! -f "$file" ]; then
    echo "check_bench_regression: missing $file" >&2
    exit 2
  fi
done

# Emits "metric value" lines: bench/<name> <cpu_time> for each benchmark,
# and <key>/cold_ms|warm_ms for the spliced summary objects.
extract() {
  awk '
    function emit_walls(prefix, blob) {
      if (match(blob, /"cold_ms":[0-9.eE+-]+/)) {
        print prefix "/cold_ms " substr(blob, RSTART + 10, RLENGTH - 10)
      }
      if (match(blob, /"warm_ms":[0-9.eE+-]+/)) {
        print prefix "/warm_ms " substr(blob, RSTART + 10, RLENGTH - 10)
      }
    }
    # server_sessions walls: latency quantiles and the total wall; the
    # higher-is-better throughput_rps is skipped like speedup.
    function emit_latencies(prefix, blob) {
      if (match(blob, /"p50_us":[0-9.eE+-]+/)) {
        print prefix "/p50_us " substr(blob, RSTART + 9, RLENGTH - 9)
      }
      if (match(blob, /"p99_us":[0-9.eE+-]+/)) {
        print prefix "/p99_us " substr(blob, RSTART + 9, RLENGTH - 9)
      }
      if (match(blob, /"wall_ms":[0-9.eE+-]+/)) {
        print prefix "/wall_ms " substr(blob, RSTART + 10, RLENGTH - 10)
      }
    }
    # monitor_stream configurations: the per-event cost and the tail batch
    # latency; the higher-is-better events_per_sec is skipped like speedup.
    function emit_monitor(prefix, blob) {
      if (match(blob, /"ns_per_event":[0-9.eE+-]+/)) {
        print prefix "/ns_per_event " substr(blob, RSTART + 15, RLENGTH - 15)
      }
      if (match(blob, /"p99_batch_us":[0-9.eE+-]+/)) {
        print prefix "/p99_batch_us " substr(blob, RSTART + 15, RLENGTH - 15)
      }
    }
    /^[[:space:]]*"name":/ {
      name = $0
      sub(/^[[:space:]]*"name":[[:space:]]*"/, "", name)
      sub(/".*$/, "", name)
    }
    /^[[:space:]]*"cpu_time":/ {
      value = $0
      sub(/^[[:space:]]*"cpu_time":[[:space:]]*/, "", value)
      sub(/[,[:space:]].*$/, "", value)
      if (name != "" && name !~ /^BM_Ablation_/ && name !~ /EagerProduct/) {
        print "bench/" name " " value
      }
      name = ""
    }
    {
      if (match($0, /"incremental_verify":\{[^}]*\}/)) {
        emit_walls("incremental_verify", substr($0, RSTART, RLENGTH))
      }
      if (match($0, /"daemon_verify":\{[^}]*\}/)) {
        emit_walls("daemon_verify", substr($0, RSTART, RLENGTH))
      }
      if (match($0, /"server_sessions":\{[^}]*\}/)) {
        emit_latencies("server_sessions", substr($0, RSTART, RLENGTH))
      }
      if (match($0, /"monitor_stream":/)) {
        rest = substr($0, RSTART)
        if (match(rest, /"single":\{[^}]*\}/)) {
          emit_monitor("monitor_stream/single", substr(rest, RSTART, RLENGTH))
        }
        if (match(rest, /"sharded":\{[^}]*\}/)) {
          emit_monitor("monitor_stream/sharded", substr(rest, RSTART, RLENGTH))
        }
        if (match(rest, /"hostile":\{[^}]*\}/)) {
          emit_monitor("monitor_stream/hostile", substr(rest, RSTART, RLENGTH))
        }
      }
    }
  ' "$1"
}

tmp_current=$(mktemp)
tmp_baseline=$(mktemp)
trap 'rm -f "$tmp_current" "$tmp_baseline"' EXIT

extract "$current" | sort > "$tmp_current"
extract "$baseline" | sort > "$tmp_baseline"

join "$tmp_current" "$tmp_baseline" | awk -v limit="$ratio" '
  {
    compared++
    current = $2 + 0
    base = $3 + 0
    if (base > 0 && current > base * limit) {
      failures++
      printf "REGRESSION %s: %.4g vs baseline %.4g (%.0f%% > %.0f%% allowed)\n", \
          $1, current, base, 100 * (current / base - 1), 100 * (limit - 1)
    }
  }
  END {
    if (compared == 0) {
      print "check_bench_regression: no comparable metrics found" > "/dev/stderr"
      exit 2
    }
    printf "check_bench_regression: %d metrics compared, %d regressions\n", \
        compared, failures
    exit failures > 0 ? 1 : 0
  }
'
