#!/usr/bin/env sh
# Coverage gate for the incremental-verification subsystem.
#
#   check_coverage.sh <coverage_build_dir> <source_dir>
#
# Runs the test binaries that exercise the cache/hash stack inside a build
# configured with -DSHELLEY_COVERAGE=ON (the "coverage" preset), then asks
# gcov for the line coverage of each gated source file and fails if any of
# them is below the floor.  Only gcov is required -- it ships with gcc -- so
# the gate runs anywhere the toolchain does (lcov/llvm-cov optional
# elsewhere).
#
# Wired as the ctest entry `coverage_cache_hash` (label: coverage), so
#   cmake --preset coverage && cmake --build --preset coverage
#   ctest --preset coverage
# is the whole CI recipe.
set -eu

BUILD_DIR=${1:?usage: check_coverage.sh <coverage_build_dir> <source_dir>}
SOURCE_DIR=${2:?usage: check_coverage.sh <coverage_build_dir> <source_dir>}
# gcov runs from a scratch dir, so both roots must be absolute.
BUILD_DIR=$(CDPATH= cd -- "$BUILD_DIR" && pwd)
SOURCE_DIR=$(CDPATH= cd -- "$SOURCE_DIR" && pwd)
FLOOR=90

# The suites that define the subsystem's coverage. Re-running them resets
# nothing (gcda accumulates), which is fine: more coverage never fails.
for test_bin in support_hash_test fsm_serialize_test core_cache_test \
    core_cache_differential_test; do
  if [ ! -x "$BUILD_DIR/tests/$test_bin" ]; then
    echo "check_coverage: missing $BUILD_DIR/tests/$test_bin" >&2
    echo "check_coverage: build the 'coverage' preset first" >&2
    exit 2
  fi
  "$BUILD_DIR/tests/$test_bin" >/dev/null
done

# file -> its .gcda inside the object dir (CMake names it <src>.cpp.gcda,
# so gcov must be pointed at the counter file itself, not at the source).
check_file() {
  rel_source=$1
  object_dir=$2
  gcda_file="$BUILD_DIR/$object_dir/$(basename "$rel_source").gcda"
  if [ ! -f "$gcda_file" ]; then
    echo "check_coverage: no $gcda_file (not a coverage build?)" >&2
    exit 2
  fi
  # gcov prints, per file: "File '...'" then "Lines executed:NN.NN% of M".
  percent=$(cd "$WORK_DIR" && gcov -n "$gcda_file" 2>/dev/null |
    awk -v want="$rel_source" '
      /^File / { hit = index($0, want) > 0 }
      hit && /^Lines executed:/ {
        split($0, parts, ":"); split(parts[2], value, "%");
        print value[1]; exit
      }')
  if [ -z "$percent" ]; then
    echo "check_coverage: gcov reported nothing for $rel_source" >&2
    exit 2
  fi
  echo "coverage $rel_source: ${percent}% (floor ${FLOOR}%)"
  if ! awk -v p="$percent" -v f="$FLOOR" 'BEGIN { exit !(p >= f) }'; then
    echo "check_coverage: $rel_source below the ${FLOOR}% floor" >&2
    FAILED=1
  fi
}

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT
FAILED=0

check_file src/support/hash.cpp src/support/CMakeFiles/shelley_support.dir
check_file src/shelley/cache.cpp src/shelley/CMakeFiles/shelley_core.dir
check_file src/shelley/fingerprint.cpp src/shelley/CMakeFiles/shelley_core.dir

if [ "$FAILED" -ne 0 ]; then
  echo "check_coverage: FAILED" >&2
  exit 1
fi
echo "check_coverage: OK"
